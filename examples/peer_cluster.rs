//! The peer-servers architecture (paper §3.1, Fig. 1): three peers, each
//! owning a partition of the database, each running its own application.
//! Local data is served with zero messages; remote data flows through
//! the same callback-consistency protocol; a transaction spanning all
//! three partitions commits with two-phase commit.
//!
//! Run with:
//! ```sh
//! cargo run -p pscc-bench --example peer_cluster
//! ```

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::OwnerMap;
use pscc_sim::testkit::{version_of, Cluster};

fn main() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small() // 450 pages
    };
    // Partition the 450-page database three ways.
    let owners = OwnerMap::Ranges(vec![
        (0, 150, SiteId(0)),
        (150, 300, SiteId(1)),
        (300, 450, SiteId(2)),
    ]);
    let mut c = Cluster::new(3, cfg, owners, 11);
    let app = AppId(0);

    // Objects live on the volume of their owning peer.
    let on_peer =
        |peer: u32, page: u32| Oid::new(PageId::new(FileId::new(VolId(peer), 0), page), 0);

    // 1. Purely local work at peer 1 — no messages at all.
    let t = c.begin(SiteId(1), app);
    c.read(SiteId(1), app, t, on_peer(1, 200)).unwrap();
    c.write(SiteId(1), app, t, on_peer(1, 200), None).unwrap();
    c.commit(SiteId(1), app, t).unwrap();
    assert_eq!(c.total_stats().msgs_sent, 0);
    println!("peer 1 updated its own partition: 0 messages");

    // 2. Peer 0 reads peer 1's data: it acts as a client of peer 1,
    //    caching the page.
    let t = c.begin(SiteId(0), app);
    let v = c.read(SiteId(0), app, t, on_peer(1, 200)).unwrap();
    println!(
        "peer 0 read peer 1's object (version {}), {} messages so far",
        version_of(&v),
        c.total_stats().msgs_sent
    );
    c.commit(SiteId(0), app, t).unwrap();

    // 3. A distributed transaction updating all three partitions: the
    //    home peer coordinates two-phase commit with the other two.
    let t = c.begin(SiteId(2), app);
    for (peer, page) in [(0u32, 10u32), (1, 210), (2, 410)] {
        c.read(SiteId(2), app, t, on_peer(peer, page)).unwrap();
        c.write(SiteId(2), app, t, on_peer(peer, page), None)
            .unwrap();
    }
    c.commit(SiteId(2), app, t).unwrap();
    println!("distributed transaction committed across all three peers (2PC)");

    // Every partition durably holds its piece.
    for (peer, page) in [(0u32, 10u32), (1, 210), (2, 410)] {
        let bytes = c.sites[peer as usize]
            .volume()
            .read_object(on_peer(peer, page))
            .unwrap();
        assert_eq!(version_of(bytes), 1, "peer {peer} missing the update");
    }

    // 4. Cross-peer invalidation: peer 0 still caches peer 1's page from
    //    step 2; peer 1 updates it; the callback invalidates peer 0's
    //    copy and its next read sees the new version.
    let t = c.begin(SiteId(1), app);
    c.read(SiteId(1), app, t, on_peer(1, 200)).unwrap();
    c.write(SiteId(1), app, t, on_peer(1, 200), None).unwrap();
    c.commit(SiteId(1), app, t).unwrap();

    let t = c.begin(SiteId(0), app);
    let v = c.read(SiteId(0), app, t, on_peer(1, 200)).unwrap();
    c.commit(SiteId(0), app, t).unwrap();
    assert_eq!(version_of(&v), 2);
    println!("peer 0 observed peer 1's new version after callback invalidation");

    println!("\nfinal counters: {}", c.total_stats());
}
