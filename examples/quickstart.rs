//! Quickstart: a one-server, two-client system running the PS-AA
//! protocol — begin a transaction, read and update objects through the
//! consistency-maintained client cache, commit, and observe another
//! client seeing the result.
//!
//! Run with:
//! ```sh
//! cargo run -p pscc-bench --example quickstart
//! ```

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::OwnerMap;
use pscc_sim::testkit::{version_of, Cluster};

fn main() {
    // Site 0 owns the database; sites 1 and 2 are clients.
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    let mut cluster = Cluster::new(3, cfg, OwnerMap::Single(SiteId(0)), 42);
    let (alice, bob) = (SiteId(1), SiteId(2));
    let app = AppId(0);

    // An object = (volume, file, page, slot).
    let account = Oid::new(PageId::new(FileId::new(VolId(0), 0), 10), 3);

    // Alice reads and updates the object.
    let t1 = cluster.begin(alice, app);
    let before = cluster.read(alice, app, t1, account).expect("read");
    println!("alice reads version {}", version_of(&before));
    cluster.write(alice, app, t1, account, None).expect("write");
    cluster.commit(alice, app, t1).expect("commit");
    println!("alice committed an update");

    // Bob sees the committed version — his cache was kept consistent by
    // the callback protocol.
    let t2 = cluster.begin(bob, app);
    let after = cluster.read(bob, app, t2, account).expect("read");
    println!("bob reads version {}", version_of(&after));
    assert_eq!(version_of(&after), version_of(&before) + 1);
    cluster.commit(bob, app, t2).expect("commit");

    // A second read by Bob is a pure cache hit: zero messages.
    let msgs = cluster.total_stats().msgs_sent;
    let t3 = cluster.begin(bob, app);
    cluster.read(bob, app, t3, account).expect("read");
    cluster.commit(bob, app, t3).expect("commit");
    assert_eq!(cluster.total_stats().msgs_sent, msgs);
    println!("bob's re-read hit his cache: no server interaction");

    println!("\nsystem counters: {}", cluster.total_stats());
}
