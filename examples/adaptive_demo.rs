//! A side-by-side demonstration of the paper's central mechanism: the
//! same workload under PS, PS-OA, and PS-AA, with the message counts and
//! concurrency behaviour the paper's §5 analyzes.
//!
//! Two clients repeatedly update *different* objects of the same pages —
//! textbook false sharing. Watch how each protocol handles it:
//!
//! * **PS** serializes the two clients on page locks;
//! * **PS-OA** interleaves them but pays a write-permission message per
//!   object update;
//! * **PS-AA** interleaves them *and* elides messages once a page's
//!   contention dissipates (adaptive page locks, deescalation and
//!   re-escalation).
//!
//! Run with:
//! ```sh
//! cargo run -p pscc-bench --example adaptive_demo
//! ```

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::OwnerMap;
use pscc_sim::testkit::Cluster;

fn obj(page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), page), slot)
}

fn run(protocol: Protocol) {
    let cfg = SystemConfig {
        protocol,
        ..SystemConfig::small()
    };
    let mut c = Cluster::new(3, cfg, OwnerMap::Single(SiteId(0)), 3);
    let app = AppId(0);
    let (a, b) = (SiteId(1), SiteId(2));

    // Phase 1 — shared pages, disjoint objects (false sharing).
    for round in 0..4 {
        for (site, base_slot) in [(a, 0u16), (b, 10u16)] {
            let t = c.begin(site, app);
            for page in 0..3u32 {
                let o = obj(40 + page, base_slot + (round % 5) as u16);
                // Retry on deadlock/timeout aborts, as the paper's
                // applications do.
                if c.read(site, app, t, o).is_err() {
                    break;
                }
                if c.write(site, app, t, o, None).is_err() {
                    break;
                }
            }
            let _ = c.commit(site, app, t);
        }
    }
    let shared = c.total_stats();

    // Phase 2 — each client retreats to a private page (contention
    // dissipates; PS-AA re-escalates).
    for round in 0..4 {
        for (site, page) in [(a, 50u32), (b, 60u32)] {
            let t = c.begin(site, app);
            for slot in 0..4u16 {
                let o = obj(page, (slot + round) % 10);
                let _ = c.read(site, app, t, o);
                let _ = c.write(site, app, t, o, None);
            }
            let _ = c.commit(site, app, t);
        }
    }
    let total = c.total_stats();

    println!("--- {protocol} ---");
    println!(
        "  commits {:3}   aborts {:2}   messages {:4}   write-requests {:3}",
        total.commits, total.aborts, total.msgs_sent, total.write_requests
    );
    println!(
        "  callbacks {:3} (whole-page {:2}, object-only {:2}, blocked {:2})",
        total.callbacks_sent,
        total.callbacks_purged_page,
        total.callbacks_object_only,
        total.callbacks_blocked
    );
    println!(
        "  adaptive grants {:2}   server-free writes {:3}   deescalations {:2}",
        total.adaptive_grants, total.adaptive_hits, total.deescalations
    );
    let phase2_msgs = total.msgs_sent - shared.msgs_sent;
    println!("  messages in the private phase alone: {phase2_msgs}");
    println!();
}

fn main() {
    println!("False sharing then private working sets, under each protocol:\n");
    for p in [Protocol::Ps, Protocol::PsOa, Protocol::PsAa] {
        run(p);
    }
    println!("Expected shape (paper §5): PS-OA and PS-AA avoid PS's false-sharing");
    println!("conflicts; PS-AA additionally erases write-permission messages in the");
    println!("private phase via adaptive page locks.");
}
