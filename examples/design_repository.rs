//! A CAD-style design repository — the class of application the paper's
//! introduction motivates (CAD/CAM, CASE). Several engineers check parts
//! of a shared assembly in and out of their workstation caches; the
//! PS-AA protocol keeps every cache transactionally consistent while the
//! engineers' private working sets stay server-free via adaptive page
//! locks.
//!
//! Run with:
//! ```sh
//! cargo run -p pscc-bench --example design_repository
//! ```

use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::OwnerMap;
use pscc_sim::testkit::{version_of, Cluster};

/// A "part" is one object; an "assembly" is a page of 10 parts that tend
/// to be edited together (physical clustering, as a real OODBMS would
/// lay them out).
fn part(assembly: u32, part_no: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(0), 0), assembly), part_no)
}

fn main() {
    let cfg = SystemConfig {
        protocol: Protocol::PsAa,
        ..SystemConfig::small()
    };
    // One repository server, three engineering workstations.
    let mut c = Cluster::new(4, cfg, OwnerMap::Single(SiteId(0)), 7);
    let engineers = [SiteId(1), SiteId(2), SiteId(3)];
    let app = AppId(0);

    // Each engineer privately edits their own assembly: after the first
    // write the server grants an adaptive page lock and every further
    // edit is local (paper §4.1.2).
    for (i, &ws) in engineers.iter().enumerate() {
        let assembly = 20 + i as u32;
        let t = c.begin(ws, app);
        for p in 0..8u16 {
            c.read(ws, app, t, part(assembly, p)).expect("read part");
            c.write(ws, app, t, part(assembly, p), None)
                .expect("edit part");
        }
        c.commit(ws, app, t).expect("check in");
        println!("engineer {} checked in assembly {assembly}", i + 1);
    }
    let s = c.total_stats();
    println!(
        "private edits: {} adaptive page-lock grants saved {} write round-trips",
        s.adaptive_grants, s.adaptive_hits
    );
    assert!(
        s.adaptive_hits > 0,
        "adaptive locking should have kicked in"
    );

    // Now two engineers collaborate on the *same* assembly, editing
    // different parts: the server deescalates to object-level sharing so
    // both proceed, and each sees the other's committed edits.
    let shared = 30u32;
    let t1 = c.begin(engineers[0], app);
    c.read(engineers[0], app, t1, part(shared, 0)).unwrap();
    c.write(engineers[0], app, t1, part(shared, 0), None)
        .unwrap();

    let t2 = c.begin(engineers[1], app);
    c.read(engineers[1], app, t2, part(shared, 5)).unwrap();
    c.write(engineers[1], app, t2, part(shared, 5), None)
        .unwrap();

    c.commit(engineers[0], app, t1).unwrap();
    c.commit(engineers[1], app, t2).unwrap();
    println!(
        "collaborative editing on assembly {shared}: {} deescalations",
        c.total_stats().deescalations
    );

    // Both committed edits are durable at the repository.
    let server = &c.sites[0];
    assert_eq!(
        version_of(server.volume().read_object(part(shared, 0)).unwrap()),
        1
    );
    assert_eq!(
        version_of(server.volume().read_object(part(shared, 5)).unwrap()),
        1
    );

    // A reviewer scans the whole shared assembly with an explicit SH
    // page lock (hierarchical locking, §4.3): one lock instead of ten.
    let reviewer = engineers[2];
    let t3 = c.begin(reviewer, app);
    c.read(reviewer, app, t3, part(shared, 0)).unwrap(); // cache the page
    c.run_op(
        reviewer,
        app,
        t3,
        pscc_core::AppOp::Lock {
            item: pscc_common::LockableId::Page(part(shared, 0).page),
            mode: pscc_common::LockMode::Sh,
        },
    )
    .expect("page lock");
    for p in 0..10u16 {
        let bytes = c.read(reviewer, app, t3, part(shared, p)).expect("review");
        let v = version_of(&bytes);
        if v > 0 {
            println!("  reviewer sees part {p} at version {v}");
        }
    }
    c.commit(reviewer, app, t3).unwrap();
    println!("review complete; final counters: {}", c.total_stats());
}
