//! Workspace-level integration tests: the full stack — storage, WAL,
//! lock manager, engine, transport semantics, and simulation — exercised
//! together through the public APIs only.

use pscc_common::{
    AppId, FileId, LockMode, LockableId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId,
};
use pscc_core::{AppOp, OwnerMap};
use pscc_sim::experiment::{quick_spec, run_point, Figure};
use pscc_sim::testkit::{version_of, Cluster};

fn cfg(p: Protocol) -> SystemConfig {
    SystemConfig {
        protocol: p,
        ..SystemConfig::small()
    }
}

fn obj(vol: u32, page: u32, slot: u16) -> Oid {
    Oid::new(PageId::new(FileId::new(VolId(vol), 0), page), slot)
}

#[test]
fn full_stack_transfer_between_accounts() {
    // The classic bank transfer: money moves, totals are conserved, and
    // a concurrent reader never sees a half-done transfer.
    let mut c = Cluster::new(3, cfg(Protocol::PsAa), OwnerMap::Single(SiteId(0)), 1);
    let app = AppId(0);
    let (alice, bob) = (SiteId(1), SiteId(2));
    let (acc1, acc2) = (obj(0, 5, 0), obj(0, 6, 0));
    let size = SystemConfig::small().object_size() as usize;

    // Initialize balances: 100 and 50 (stored in the first 8 bytes).
    let t = c.begin(alice, app);
    let bal = |v: u64| {
        let mut b = vec![0u8; size];
        b[0..8].copy_from_slice(&v.to_le_bytes());
        b
    };
    c.read(alice, app, t, acc1).unwrap();
    c.write(alice, app, t, acc1, Some(bal(100))).unwrap();
    c.read(alice, app, t, acc2).unwrap();
    c.write(alice, app, t, acc2, Some(bal(50))).unwrap();
    c.commit(alice, app, t).unwrap();

    // Transfer 30 from acc1 to acc2.
    let t = c.begin(alice, app);
    let b1 = c.read(alice, app, t, acc1).unwrap();
    let b2 = c.read(alice, app, t, acc2).unwrap();
    let v1 = version_of(&b1);
    let v2 = version_of(&b2);
    c.write(alice, app, t, acc1, Some(bal(v1 - 30))).unwrap();
    c.write(alice, app, t, acc2, Some(bal(v2 + 30))).unwrap();
    c.commit(alice, app, t).unwrap();

    // Bob audits: totals conserved.
    let t = c.begin(bob, app);
    let b1 = c.read(bob, app, t, acc1).unwrap();
    let b2 = c.read(bob, app, t, acc2).unwrap();
    assert_eq!(version_of(&b1) + version_of(&b2), 150);
    assert_eq!(version_of(&b1), 70);
    c.commit(bob, app, t).unwrap();
}

#[test]
fn all_protocols_agree_on_final_state() {
    // The same deterministic schedule under PS, PS-OA, and PS-AA must
    // produce identical durable data.
    let mut finals = Vec::new();
    for p in [Protocol::Ps, Protocol::PsOa, Protocol::PsAa] {
        let mut c = Cluster::new(3, cfg(p), OwnerMap::Single(SiteId(0)), 2);
        let app = AppId(0);
        for i in 0..6u32 {
            let site = SiteId(1 + i % 2);
            let t = c.begin(site, app);
            let o = obj(0, 8 + (i % 2), 3);
            c.read(site, app, t, o).unwrap();
            c.write(site, app, t, o, None).unwrap();
            c.commit(site, app, t).unwrap();
        }
        let a = version_of(c.sites[0].volume().read_object(obj(0, 8, 3)).unwrap());
        let b = version_of(c.sites[0].volume().read_object(obj(0, 9, 3)).unwrap());
        finals.push((a, b));
    }
    assert_eq!(finals[0], finals[1]);
    assert_eq!(finals[1], finals[2]);
    assert_eq!(finals[0], (3, 3));
}

#[test]
fn hierarchical_file_lock_spans_partitions() {
    // An explicit EX file lock in a peer-servers system must reach every
    // owner of the file's pages.
    let owners = OwnerMap::Ranges(vec![(0, 225, SiteId(0)), (225, 450, SiteId(1))]);
    let mut c = Cluster::new(3, cfg(Protocol::PsAa), owners, 3);
    let app = AppId(0);
    let scanner = SiteId(2);

    // Cache pages from both partitions at the scanner.
    let t0 = c.begin(scanner, app);
    c.read(scanner, app, t0, obj(0, 10, 0)).unwrap();
    c.read(scanner, app, t0, obj(1, 300, 0)).unwrap();
    c.commit(scanner, app, t0).unwrap();

    // Writer takes EX on the whole (conceptual) file at owner 0; our
    // explicit lock fans out to every owner.
    let writer = SiteId(0);
    let t = c.begin(writer, app);
    c.run_op(
        writer,
        app,
        t,
        AppOp::Lock {
            item: LockableId::File(FileId::new(VolId(0), 0)),
            mode: LockMode::Ex,
        },
    )
    .unwrap();
    // The scanner's cached pages of that file (in partition 0) are gone:
    // its next read of partition-0 data must block until the writer ends.
    c.submit(scanner, app, None, AppOp::Begin);
    c.pump();
    let replies = c.take_replies();
    let t2 = replies
        .iter()
        .find_map(|(_, r)| match r {
            pscc_core::AppReply::Started { txn, .. } => Some(*txn),
            _ => None,
        })
        .expect("begin");
    c.submit(scanner, app, Some(t2), AppOp::Read(obj(0, 10, 0)));
    c.pump();
    assert!(
        c.find_reply(scanner, t2).is_none(),
        "file EX must block readers"
    );
    c.commit(writer, app, t).unwrap();
    c.pump();
    assert!(c.find_reply(scanner, t2).is_some());
    let _ = c.commit(scanner, app, t2);
}

#[test]
fn quick_simulation_smoke_for_every_figure() {
    for fig in [Figure::Fig6, Figure::Fig10, Figure::Fig12, Figure::Fig14] {
        let p = run_point(&quick_spec(fig, 0.1));
        assert!(p.report.commits > 0, "{fig} committed nothing");
    }
}

#[test]
fn volumes_survive_byte_level_roundtrip() {
    // Storage + WAL: a committed state serializes page-by-page and
    // reloads identically (what a restart would read from disk).
    let mut c = Cluster::new(2, cfg(Protocol::PsAa), OwnerMap::Single(SiteId(0)), 4);
    let app = AppId(0);
    let t = c.begin(SiteId(1), app);
    let o = obj(0, 12, 7);
    c.read(SiteId(1), app, t, o).unwrap();
    c.write(SiteId(1), app, t, o, None).unwrap();
    c.commit(SiteId(1), app, t).unwrap();

    let vol = c.sites[0].volume();
    let page = vol.page(o.page).unwrap();
    let reloaded = pscc_storage::SlottedPage::from_bytes(page.as_bytes().to_vec());
    assert_eq!(reloaded.get(o.slot), vol.read_object(o));
    assert_eq!(version_of(reloaded.get(o.slot).unwrap()), 1);
}

#[test]
fn protocol_messages_survive_wire_roundtrip() {
    // Every protocol message must survive the byte-level frame codec a
    // TCP deployment would use.
    use bytes::BytesMut;
    use pscc_core::{CbTarget, Message, ReqId};
    use pscc_net::codec::{decode_frame, encode_frame};
    use pscc_storage::{AvailMask, PageSnapshot, SlottedPage};

    let page = PageId::new(FileId::new(VolId(0), 0), 7);
    let mut image = SlottedPage::new(1024);
    for i in 0..5u8 {
        image.insert(&[i; 40]).unwrap();
    }
    let txn = pscc_common::TxnId::new(SiteId(2), 9);
    let msgs = vec![
        Message::ReadObj {
            req: ReqId(1),
            txn,
            oid: Oid::new(page, 3),
        },
        Message::ReadReply {
            req: ReqId(1),
            snapshot: PageSnapshot {
                page,
                image,
                avail: AvailMask::all_available(5),
                ship_seq: 3,
            },
        },
        Message::WriteGranted {
            req: ReqId(2),
            adaptive: true,
        },
        Message::Callback {
            cb: pscc_core::CbId(4),
            txn,
            target: CbTarget::Object(Oid::new(page, 3)),
        },
        Message::Purge {
            client: SiteId(1),
            page,
            ship_seq: 3,
            replicate: vec![(txn, LockableId::Object(Oid::new(page, 1)), LockMode::Sh)],
            log_records: vec![pscc_wal::LogRecord::update(
                txn,
                Oid::new(page, 1),
                vec![0; 8],
                vec![1; 8],
            )],
        },
        Message::Decide { txn, commit: true },
    ];
    let mut buf = BytesMut::new();
    for m in &msgs {
        encode_frame(m, &mut buf).unwrap();
    }
    for m in &msgs {
        let got: Message = decode_frame(&mut buf).unwrap().expect("frame");
        assert_eq!(&got, m);
    }
}
