//! Offline shim for the subset of `serde` this workspace uses. Instead of
//! upstream's generic `Serializer`/`Deserializer` model, both traits here
//! target JSON text directly — the only data format the workspace touches
//! (`serde_json` frames in `pscc-net`). The `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the local `serde_derive` shim)
//! generate impls of these traits following serde's conventions:
//! externally tagged enums, transparent newtype structs, tuples and
//! tuple variants as arrays, `Option` as `null`/value. Maps serialize as
//! arrays of `[key, value]` pairs so non-string keys round-trip.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// JSON-serializable value.
pub trait Serialize {
    /// Appends this value's JSON encoding to `out`.
    fn serialize_json(&self, out: &mut String);
}

/// JSON-deserializable value.
pub trait Deserialize: Sized {
    /// Parses one value off the front of `p`.
    ///
    /// # Errors
    ///
    /// [`de::Error`] on malformed or mistyped input.
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error>;
}

pub mod de {
    use std::fmt;

    /// Marker for owned deserialization (mirrors serde's bound).
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}

    /// A deserialization failure, with byte position where known.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        #[must_use]
        pub fn custom(msg: impl Into<String>) -> Self {
            Error { msg: msg.into() }
        }

        #[must_use]
        pub fn missing_field(name: &str) -> Self {
            Error {
                msg: format!("missing field `{name}`"),
            }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// A single-pass JSON pull parser over a byte slice.
    pub struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        #[must_use]
        pub fn new(bytes: &'a [u8]) -> Self {
            Parser { bytes, pos: 0 }
        }

        fn err(&self, what: &str) -> Error {
            Error::custom(format!("{what} at byte {}", self.pos))
        }

        pub fn skip_ws(&mut self) {
            while let Some(b) = self.bytes.get(self.pos) {
                if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        /// Whether only whitespace remains.
        #[must_use]
        pub fn at_end(&mut self) -> bool {
            self.skip_ws();
            self.pos >= self.bytes.len()
        }

        /// Peeks the next non-whitespace byte without consuming it.
        #[must_use]
        pub fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        /// Consumes `c` if it is next (after whitespace).
        pub fn try_consume(&mut self, c: u8) -> bool {
            if self.peek() == Some(c) {
                self.pos += 1;
                true
            } else {
                false
            }
        }

        /// Consumes `c` or fails.
        ///
        /// # Errors
        ///
        /// When the next byte is not `c`.
        pub fn expect(&mut self, c: u8) -> Result<(), Error> {
            if self.try_consume(c) {
                Ok(())
            } else {
                Err(self.err(&format!("expected `{}`", c as char)))
            }
        }

        fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
            self.skip_ws();
            if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
                self.pos += kw.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected `{kw}`")))
            }
        }

        /// Parses `true`/`false`.
        ///
        /// # Errors
        ///
        /// On anything else.
        pub fn parse_bool(&mut self) -> Result<bool, Error> {
            match self.peek() {
                Some(b't') => self.expect_keyword("true").map(|()| true),
                Some(b'f') => self.expect_keyword("false").map(|()| false),
                _ => Err(self.err("expected boolean")),
            }
        }

        /// Parses `null`.
        ///
        /// # Errors
        ///
        /// On anything else.
        pub fn parse_null(&mut self) -> Result<(), Error> {
            self.expect_keyword("null")
        }

        fn number_slice(&mut self) -> Result<&'a str, Error> {
            self.skip_ws();
            let start = self.pos;
            while let Some(b) = self.bytes.get(self.pos) {
                if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                    self.pos += 1;
                } else {
                    break;
                }
            }
            if start == self.pos {
                return Err(self.err("expected number"));
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| self.err("non-utf8 number"))
        }

        /// Parses an unsigned integer exactly (no float round-trip).
        ///
        /// # Errors
        ///
        /// On malformed or out-of-range input.
        pub fn parse_u64(&mut self) -> Result<u64, Error> {
            let s = self.number_slice()?;
            s.parse::<u64>()
                .map_err(|_| Error::custom(format!("invalid u64 `{s}`")))
        }

        /// Parses a signed integer exactly.
        ///
        /// # Errors
        ///
        /// On malformed or out-of-range input.
        pub fn parse_i64(&mut self) -> Result<i64, Error> {
            let s = self.number_slice()?;
            s.parse::<i64>()
                .map_err(|_| Error::custom(format!("invalid i64 `{s}`")))
        }

        /// Parses a float.
        ///
        /// # Errors
        ///
        /// On malformed input.
        pub fn parse_f64(&mut self) -> Result<f64, Error> {
            let s = self.number_slice()?;
            s.parse::<f64>()
                .map_err(|_| Error::custom(format!("invalid f64 `{s}`")))
        }

        /// Parses a JSON string.
        ///
        /// # Errors
        ///
        /// On malformed input or bad escapes.
        pub fn parse_string(&mut self) -> Result<String, Error> {
            self.skip_ws();
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let Some(&b) = self.bytes.get(self.pos) else {
                    return Err(self.err("unterminated string"));
                };
                self.pos += 1;
                match b {
                    b'"' => return Ok(out),
                    b'\\' => {
                        let Some(&e) = self.bytes.get(self.pos) else {
                            return Err(self.err("unterminated escape"));
                        };
                        self.pos += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                // Surrogate pairs are not produced by this
                                // shim's serializer; reject rather than
                                // mis-decode.
                                let c = char::from_u32(cp)
                                    .ok_or_else(|| self.err("unpaired surrogate"))?;
                                out.push(c);
                            }
                            _ => return Err(self.err("unknown escape")),
                        }
                    }
                    _ => {
                        // Collect the full UTF-8 sequence starting here.
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.err("truncated utf8"))?;
                        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }

        /// Skips one complete JSON value of any type.
        ///
        /// # Errors
        ///
        /// On malformed input.
        pub fn skip_value(&mut self) -> Result<(), Error> {
            match self.peek() {
                Some(b'"') => {
                    self.parse_string()?;
                    Ok(())
                }
                Some(b't') | Some(b'f') => {
                    self.parse_bool()?;
                    Ok(())
                }
                Some(b'n') => self.parse_null(),
                Some(b'[') => {
                    self.expect(b'[')?;
                    if self.try_consume(b']') {
                        return Ok(());
                    }
                    loop {
                        self.skip_value()?;
                        if !self.try_consume(b',') {
                            return self.expect(b']');
                        }
                    }
                }
                Some(b'{') => {
                    self.expect(b'{')?;
                    if self.try_consume(b'}') {
                        return Ok(());
                    }
                    loop {
                        self.parse_string()?;
                        self.expect(b':')?;
                        self.skip_value()?;
                        if !self.try_consume(b',') {
                            return self.expect(b'}');
                        }
                    }
                }
                Some(_) => {
                    self.number_slice()?;
                    Ok(())
                }
                None => Err(self.err("unexpected end of input")),
            }
        }
    }

    fn utf8_width(first: u8) -> usize {
        match first {
            0x00..=0x7F => 1,
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    }
}

/// Escapes and appends `s` as a JSON string literal.
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_uint {
    ($($t:ty => $parse:ident),*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                let v = p.$parse()?;
                <$t>::try_from(v).map_err(|_| de::Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_uint!(u8 => parse_u64, u16 => parse_u64, u32 => parse_u64, u64 => parse_u64,
           usize => parse_u64, i8 => parse_i64, i16 => parse_i64, i32 => parse_i64,
           i64 => parse_i64, isize => parse_i64);

impl Serialize for f64 {
    fn serialize_json(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self:?}"));
        } else {
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.peek() == Some(b'n') {
            p.parse_null()?;
            return Ok(f64::NAN);
        }
        p.parse_f64()
    }
}

impl Serialize for f32 {
    fn serialize_json(&self, out: &mut String) {
        f64::from(*self).serialize_json(out);
    }
}

impl Deserialize for f32 {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        f64::deserialize_json(p).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_bool()
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Deserialize for String {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_string()
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        write_json_string(&self.to_string(), out);
    }
}

impl Deserialize for char {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let s = p.parse_string()?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        T::deserialize_json(p).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.serialize_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        if p.peek() == Some(b'n') {
            p.parse_null()?;
            Ok(None)
        } else {
            T::deserialize_json(p).map(Some)
        }
    }
}

fn serialize_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, v) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        v.serialize_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        serialize_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        let mut out = Vec::new();
        p.expect(b'[')?;
        if p.try_consume(b']') {
            return Ok(out);
        }
        loop {
            out.push(T::deserialize_json(p)?);
            if !p.try_consume(b',') {
                p.expect(b']')?;
                return Ok(out);
            }
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
                p.expect(b'[')?;
                let mut first = true;
                let v = ($(
                    {
                        if !first { p.expect(b',')?; }
                        first = false;
                        $t::deserialize_json(p)?
                    },
                )+);
                let _ = first;
                p.expect(b']')?;
                Ok(v)
            }
        }
    )+};
}
impl_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

fn serialize_map<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    // Non-string keys cannot be JSON object keys; encode maps as arrays
    // of [key, value] pairs (both codec ends are this shim).
    out.push('[');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        k.serialize_json(out);
        out.push(',');
        v.serialize_json(out);
        out.push(']');
    }
    out.push(']');
}

fn deserialize_pairs<K: Deserialize, V: Deserialize>(
    p: &mut de::Parser<'_>,
) -> Result<Vec<(K, V)>, de::Error> {
    let mut out = Vec::new();
    p.expect(b'[')?;
    if p.try_consume(b']') {
        return Ok(out);
    }
    loop {
        p.expect(b'[')?;
        let k = K::deserialize_json(p)?;
        p.expect(b',')?;
        let v = V::deserialize_json(p)?;
        p.expect(b']')?;
        out.push((k, v));
        if !p.try_consume(b',') {
            p.expect(b']')?;
            return Ok(out);
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out);
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        Ok(deserialize_pairs::<K, V>(p)?.into_iter().collect())
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        serialize_map(self.iter(), out);
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        Ok(deserialize_pairs::<K, V>(p)?.into_iter().collect())
    }
}

impl Serialize for () {
    fn serialize_json(&self, out: &mut String) {
        out.push_str("null");
    }
}

impl Deserialize for () {
    fn deserialize_json(p: &mut de::Parser<'_>) -> Result<Self, de::Error> {
        p.parse_null()
    }
}
