//! Offline shim for the subset of `crossbeam::channel` this workspace
//! uses: unbounded MPMC channels whose `Sender` *and* `Receiver` are
//! both `Clone`, with `send`/`recv`/`recv_timeout`/`try_recv` and the
//! matching error types. Built on `Mutex` + `Condvar`; throughput is
//! adequate for the in-process transports and test harnesses here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever clone
    /// receives first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            st.receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver is gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] returning the message when disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or all senders disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            self.inner
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Send on a channel with no receivers; carries the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn mpmc_roundtrip_and_clone_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn threads_drain_everything() {
        let (tx, rx) = unbounded::<u64>();
        let n = 1000u64;
        let h = std::thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..n {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
    }
}
