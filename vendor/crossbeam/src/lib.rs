//! Offline shim for the subset of `crossbeam::channel` this workspace
//! uses: unbounded *and bounded* MPMC channels whose `Sender` and
//! `Receiver` are both `Clone`, with `send`/`try_send`/`send_timeout`/
//! `recv`/`recv_timeout`/`try_recv` and the matching error types. Built
//! on `Mutex` + `Condvar`; throughput is adequate for the in-process
//! transports and test harnesses here.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        /// `None` = unbounded; `Some(cap)` = senders block at `cap`.
        capacity: Option<usize>,
        /// Signals receivers waiting for a message.
        ready: Condvar,
        /// Signals senders waiting for space (bounded channels only).
        space: Condvar,
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            ready: Condvar::new(),
            space: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded MPMC channel: sends block (or fail, for the
    /// `try_`/`_timeout` variants) while `cap` messages are queued.
    /// Unlike real crossbeam, `cap == 0` is not a rendezvous channel —
    /// it is rejected, since the shim has no sender/receiver handoff.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity (rendezvous) channels unsupported");
        channel(Some(cap))
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever clone
    /// receives first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            st.receivers -= 1;
            if st.receivers == 0 {
                // Senders blocked on a full bounded channel must wake up
                // and observe the disconnect.
                self.inner.space.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        fn at_capacity(&self, st: &State<T>) -> bool {
            self.inner.capacity.is_some_and(|c| st.queue.len() >= c)
        }

        /// Enqueues `msg`, blocking while a bounded channel is full;
        /// fails only when every receiver is gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] returning the message when disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                if !self.at_capacity(&st) {
                    st.queue.push_back(msg);
                    drop(st);
                    self.inner.ready.notify_one();
                    return Ok(());
                }
                st = self.inner.space.wait(st).expect("channel poisoned");
            }
        }

        /// Non-blocking send.
        ///
        /// # Errors
        ///
        /// [`TrySendError::Full`] when a bounded channel is at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone;
        /// both return the message.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if self.at_capacity(&st) {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Blocks up to `timeout` for space on a full bounded channel.
        ///
        /// # Errors
        ///
        /// [`SendTimeoutError::Timeout`] on deadline,
        /// [`SendTimeoutError::Disconnected`] when every receiver is
        /// gone; both return the message.
        pub fn send_timeout(&self, msg: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(msg));
                }
                if !self.at_capacity(&st) {
                    st.queue.push_back(msg);
                    drop(st);
                    self.inner.ready.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(msg));
                }
                let (guard, _res) = self
                    .inner
                    .space
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            self.inner
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message or all senders disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when empty and disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] when all senders are gone.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.inner.space.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .ready
                    .wait_timeout(st, deadline - now)
                    .expect("channel poisoned");
                st = guard;
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] or [`TryRecvError::Disconnected`].
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            if let Some(v) = st.queue.pop_front() {
                self.inner.space.notify_one();
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages right now.
        pub fn len(&self) -> usize {
            self.inner
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Send on a channel with no receivers; carries the message back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }

    /// A non-blocking send that could not complete; carries the message.
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// A timed send that could not complete; carries the message.
    pub enum SendTimeoutError<T> {
        /// The channel stayed full past the deadline.
        Timeout(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
                SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("timed out waiting for channel space"),
                SendTimeoutError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("channel empty"),
                TryRecvError::Disconnected => f.write_str("channel disconnected"),
            }
        }
    }
}

#[cfg(test)]
// The shim's own tests exercise the unbounded constructor it exports.
#[allow(clippy::disallowed_methods)]
mod tests {
    use super::channel::{
        bounded, unbounded, RecvTimeoutError, SendTimeoutError, TryRecvError, TrySendError,
    };
    use std::time::Duration;

    #[test]
    fn mpmc_roundtrip_and_clone_receiver() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx2.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn bounded_try_send_full_then_timeout_then_space() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert!(matches!(
            tx.send_timeout(3, Duration::from_millis(5)),
            Err(SendTimeoutError::Timeout(3))
        ));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn bounded_blocking_send_waits_for_space() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        h.join().unwrap();
    }

    #[test]
    fn bounded_send_fails_when_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        drop(rx);
        assert!(tx.send(2).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn threads_drain_everything() {
        let (tx, rx) = unbounded::<u64>();
        let n = 1000u64;
        let h = std::thread::spawn(move || {
            for i in 0..n {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..n {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, n * (n - 1) / 2);
    }
}
