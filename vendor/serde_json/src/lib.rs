//! Offline shim for the `serde_json` entry points this workspace uses,
//! backed by the local serde shim's direct-to-JSON traits.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// A (de)serialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` to a JSON string.
///
/// # Errors
///
/// Infallible in this shim; `Result` kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
///
/// # Errors
///
/// Infallible in this shim; `Result` kept for API compatibility.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// On malformed or mistyped input, or trailing non-whitespace.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let mut p = serde::de::Parser::new(bytes);
    let v = T::deserialize_json(&mut p).map_err(|e| Error { msg: e.to_string() })?;
    if !p.at_end() {
        return Err(Error {
            msg: "trailing bytes after JSON value".to_string(),
        });
    }
    Ok(v)
}

/// Deserializes a value from a JSON string.
///
/// # Errors
///
/// On malformed or mistyped input.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Newtype(u32);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pairish {
        id: Newtype,
        tags: Vec<String>,
        blob: Vec<u8>,
        opt: Option<u64>,
        pair: (u8, i32),
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Unit,
        One(u64),
        Two(u8, u8),
        Named { a: String, b: Option<bool> },
    }

    #[test]
    fn struct_roundtrip() {
        let v = Pairish {
            id: Newtype(9),
            tags: vec!["x\"y".into(), "new\nline".into()],
            blob: vec![0, 255, 128],
            opt: None,
            pair: (3, -4),
        };
        let s = super::to_string(&v).unwrap();
        let back: Pairish = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn enum_roundtrip_all_shapes() {
        for v in [
            Kind::Unit,
            Kind::One(u64::MAX),
            Kind::Two(1, 2),
            Kind::Named {
                a: "héllo".into(),
                b: Some(false),
            },
            Kind::Named {
                a: String::new(),
                b: None,
            },
        ] {
            let s = super::to_string(&v).unwrap();
            let back: Kind = super::from_str(&s).unwrap();
            assert_eq!(back, v, "failed on {s}");
        }
    }

    #[test]
    fn map_with_struct_keys() {
        use std::collections::BTreeMap;

        #[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
        struct Key {
            a: u32,
            b: u16,
        }

        let mut m = BTreeMap::new();
        m.insert(Key { a: 1, b: 2 }, vec![1u8, 2, 3]);
        m.insert(Key { a: 9, b: 0 }, vec![]);
        let s = super::to_string(&m).unwrap();
        let back: BTreeMap<Key, Vec<u8>> = super::from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Small {
            a: u32,
        }
        let got: Small = super::from_str(r#"{"zzz": [1, {"x": "y"}], "a": 7, "w": null}"#).unwrap();
        assert_eq!(got, Small { a: 7 });
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(super::from_str::<u32>("12 34").is_err());
        assert!(super::from_str::<u32>("-1").is_err());
    }
}
