//! Offline shim for the subset of `bytes` this workspace uses: a growable
//! [`BytesMut`] with big-endian put helpers, front consumption via
//! [`Buf::advance`] / [`BytesMut::split_to`], and an immutable [`Bytes`].
//! Front consumption is O(n) (a `Vec` drain) — fine for the frame sizes
//! the codec handles in tests and tools.

use std::ops::{Deref, DerefMut};

/// Read-side operations.
pub trait Buf {
    /// Discards the first `n` bytes.
    fn advance(&mut self, n: usize);

    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
}

/// Write-side operations.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32);

    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// A growable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    #[must_use]
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Splits off and returns the first `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    #[must_use]
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.buf.len(), "split_to out of bounds");
        let rest = self.buf.split_off(n);
        let head = std::mem::replace(&mut self.buf, rest);
        BytesMut { buf: head }
    }

    /// Freezes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.buf.len(), "advance out of bounds");
        self.buf.drain(..n);
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { buf: src.to_vec() }
    }
}

/// An immutable byte buffer.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Bytes { buf }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_advance_split_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u32(0xDEAD_BEEF);
        b.put_u8(7);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 8);
        assert_eq!(&b[0..4], &[0xDE, 0xAD, 0xBE, 0xEF]);
        b.advance(4);
        let head = b.split_to(1).freeze();
        assert_eq!(&head[..], &[7]);
        assert_eq!(&b[..], &[1, 2, 3]);
    }
}
