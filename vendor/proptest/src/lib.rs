//! Offline shim for the subset of `proptest` this workspace uses: the
//! `proptest!` macro, `Strategy` with `prop_map`/`boxed`, ranges, tuples,
//! `Just`, `any`, `prop_oneof!`, `collection::vec`, `prop_assert!`/
//! `prop_assert_eq!`, and `ProptestConfig::with_cases`. Cases are
//! generated from a deterministic per-case RNG; failures report the
//! failing case without shrinking (rerunning is deterministic, which
//! serves the same debugging purpose here).

use std::ops::Range;
use std::rc::Rc;

/// Deterministic per-case RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// Whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for a full integer/bool domain.
pub struct FullDomain<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullDomain<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                <$t>::try_from(rng.next_u64() & u64::from(<$t>::MAX)).expect("masked")
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;

            fn arbitrary() -> Self::Strategy {
                FullDomain { _marker: std::marker::PhantomData }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32);

impl Strategy for FullDomain<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u64 {
    type Strategy = FullDomain<u64>;

    fn arbitrary() -> Self::Strategy {
        FullDomain {
            _marker: std::marker::PhantomData,
        }
    }
}

impl Strategy for FullDomain<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullDomain<bool>;

    fn arbitrary() -> Self::Strategy {
        FullDomain {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count envelope for collection strategies.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vector strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use super::{Strategy, TestRng};
    use std::fmt;

    /// Per-test configuration (`ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    impl Config {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// A rejected or failed test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
    }

    impl TestCaseError {
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => f.write_str(m),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a strategy/closure pair over `config.cases` cases.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        #[must_use]
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Runs `test` over generated inputs.
        ///
        /// # Errors
        ///
        /// The first failing case's message, with its case number and a
        /// debug dump of the input.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), String>
        where
            S: Strategy,
            S::Value: fmt::Debug,
            F: FnMut(S::Value) -> TestCaseResult,
        {
            for case in 0..self.config.cases {
                let mut rng = TestRng::new(0xC0FF_EE00 ^ u64::from(case));
                let value = strategy.generate(&mut rng);
                let dump = format!("{value:?}");
                if let Err(e) = test(value) {
                    return Err(format!(
                        "case {case}/{total} failed: {e}\n  input: {dump}",
                        total = self.config.cases
                    ));
                }
            }
            Ok(())
        }
    }
}

/// Defines property tests. Mirrors proptest's surface grammar:
/// an optional `#![proptest_config(...)]` followed by `#[test] fn`
/// items whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let result = runner.run(&($($strat,)+), |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(e) = result {
                panic!("proptest `{}`: {}", stringify!($name), e);
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts inside a property body, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (`{:?}` != `{:?}`)",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{Arbitrary, BoxedStrategy, Just, Strategy, Union};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Smoke: generated values respect bounds; tuple args work.
        #[test]
        fn bounds_hold(x in 3u32..17, v in collection::vec(0u8..4, 1..9), b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|e| *e < 4));
            let _ = b;
        }

        #[test]
        fn oneof_and_map(y in prop_oneof![
            (0u8..3).prop_map(|v| v as u16),
            Just(99u16),
            (10u8..12, 0u8..2).prop_map(|(a, b)| u16::from(a + b)),
        ]) {
            prop_assert!(y < 3 || y == 99 || (10..13).contains(&y));
        }
    }

    #[test]
    fn failure_reports_input() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::Config::with_cases(10));
        let err = runner
            .run(&(0u32..5,), |(x,)| {
                prop_assert!(x < 3, "too big: {x}");
                Ok(())
            })
            .unwrap_err();
        assert!(err.contains("too big"), "{err}");
    }
}
