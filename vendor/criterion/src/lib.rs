//! Offline shim for the subset of `criterion` this workspace's benches
//! use. It actually runs and times the benchmark closures (a calibration
//! pass then a fixed measurement pass) and prints mean ns/iteration, but
//! does none of upstream's statistics, plotting, or baseline storage.

use std::time::{Duration, Instant};

/// How per-iteration inputs are batched (only the variants used here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measures one benchmark's closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: u64, f: &mut F) {
    // Calibration: find an iteration count that takes a perceptible but
    // bounded amount of time.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 100_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {name:<48} {ns:>14.1} ns/iter ({total_iters} iters)");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: u64,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.effective_samples(), &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    fn effective_samples(&self) -> u64 {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let samples = self
            .sample_size
            .unwrap_or_else(|| self.criterion.effective_samples());
        run_one(&full, samples, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke(c: &mut Criterion) {
        c.bench_function("smoke/iter", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, smoke);

    #[test]
    fn driver_runs() {
        benches();
    }
}
