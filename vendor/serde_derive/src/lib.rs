//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! With no registry access there is no `syn`/`quote`, so this macro
//! parses the item declaration directly from the raw token stream and
//! emits the impl as source text. It supports exactly the shapes this
//! workspace derives on: non-generic structs (named, tuple, unit) and
//! non-generic enums (unit, tuple, and struct variants), with no
//! `#[serde(...)]` attributes. Anything else panics at compile time with
//! a clear message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim: generated Deserialize impl failed to parse")
}

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`)
/// starting at `i`; returns the next index.
fn skip_attrs_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(t) if is_punct(t, '#') => {
                // `#` then the bracket group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = skip_attrs_vis(&toks, 0);
    let kw = ident_of(&toks[i]).expect("serde shim: expected `struct` or `enum`");
    i += 1;
    let name = ident_of(&toks[i]).expect("serde shim: expected item name");
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("serde shim: generic type `{name}` is not supported");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("serde shim: expected enum body for `{name}`");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde shim: cannot derive for `{other}` items"),
    }
}

/// Parses `name: Type, ...` field lists, returning the names. Type
/// tokens are consumed with `<`/`>` depth tracking so commas inside
/// generic arguments don't split fields.
fn parse_named_fields(ts: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde shim: expected field name");
        i += 1;
        assert!(
            toks.get(i).is_some_and(|t| is_punct(t, ':')),
            "serde shim: expected `:` after field `{name}`"
        );
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                t if is_punct(t, '<') => depth += 1,
                t if is_punct(t, '>') => depth -= 1,
                t if is_punct(t, ',') && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(name);
    }
    names
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_tokens_since_comma = false;
    for t in &toks {
        match t {
            t if is_punct(t, '<') => depth += 1,
            t if is_punct(t, '>') => depth -= 1,
            t if is_punct(t, ',') && depth == 0 => {
                saw_tokens_since_comma = false;
                count += 1;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i]).expect("serde shim: expected variant name");
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        if toks.get(i).is_some_and(|t| is_punct(t, '=')) {
            panic!("serde shim: explicit discriminants are not supported (variant `{name}`)");
        }
        if toks.get(i).is_some_and(|t| is_punct(t, ',')) {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn ser_field(expr: &str) -> String {
    format!("::serde::Serialize::serialize_json({expr}, out);\n")
}

fn push_lit(out: &mut String, lit: &str) {
    let _ = writeln!(out, "out.push_str({lit:?});");
}

/// Emits the statements serializing `fields` (already-bound local names
/// for enums, `&self.x` accessors for structs) as the variant/struct
/// payload.
fn gen_ser_fields(body: &mut String, fields: &Fields, access: &dyn Fn(usize, &str) -> String) {
    match fields {
        Fields::Unit => push_lit(body, "null"),
        Fields::Tuple(1) => body.push_str(&ser_field(&access(0, ""))),
        Fields::Tuple(n) => {
            push_lit(body, "[");
            for k in 0..*n {
                if k > 0 {
                    push_lit(body, ",");
                }
                body.push_str(&ser_field(&access(k, "")));
            }
            push_lit(body, "]");
        }
        Fields::Named(names) => {
            push_lit(body, "{");
            for (k, f) in names.iter().enumerate() {
                let sep = if k > 0 { "," } else { "" };
                push_lit(body, &format!("{sep}\"{f}\":"));
                body.push_str(&ser_field(&access(k, f)));
            }
            push_lit(body, "}");
        }
    }
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    let name = match item {
        Item::Struct { name, fields } => {
            gen_ser_fields(&mut body, fields, &|k, f| {
                if f.is_empty() {
                    format!("&self.{k}")
                } else {
                    format!("&self.{f}")
                }
            });
            name
        }
        Item::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = writeln!(body, "{name}::{vn} => {{");
                        push_lit(&mut body, &format!("\"{vn}\""));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let _ = writeln!(body, "{name}::{vn}({}) => {{", binds.join(", "));
                        push_lit(&mut body, &format!("{{\"{vn}\":"));
                        gen_ser_fields(&mut body, &v.fields, &|k, _| format!("f{k}"));
                        push_lit(&mut body, "}");
                    }
                    Fields::Named(fs) => {
                        let _ = writeln!(body, "{name}::{vn} {{ {} }} => {{", fs.join(", "));
                        push_lit(&mut body, &format!("{{\"{vn}\":"));
                        gen_ser_fields(&mut body, &v.fields, &|_, f| f.to_string());
                        push_lit(&mut body, "}");
                    }
                }
                body.push_str("}\n");
            }
            body.push_str("}\n");
            name
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize_json(&self, out: &mut ::std::string::String) {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

/// Emits an expression parsing `fields` into constructor `ctor` (e.g.
/// `Foo` or `Foo::Bar`).
fn gen_de_fields(ctor: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{{ p.parse_null()?; {ctor} }}\n"),
        Fields::Tuple(1) => format!("{ctor}(::serde::Deserialize::deserialize_json(p)?)\n"),
        Fields::Tuple(n) => {
            let mut s = String::from("{\np.expect(b'[')?;\n");
            let mut binds = Vec::new();
            for k in 0..*n {
                if k > 0 {
                    s.push_str("p.expect(b',')?;\n");
                }
                let _ = writeln!(s, "let f{k} = ::serde::Deserialize::deserialize_json(p)?;");
                binds.push(format!("f{k}"));
            }
            let _ = writeln!(s, "p.expect(b']')?;\n{ctor}({})\n}}", binds.join(", "));
            s
        }
        Fields::Named(names) => {
            let mut s = String::from("{\np.expect(b'{')?;\n");
            for f in names {
                let _ = writeln!(s, "let mut f_{f} = ::core::option::Option::None;");
            }
            s.push_str(
                "loop {\n\
                 if p.try_consume(b'}') { break; }\n\
                 let key = p.parse_string()?;\n\
                 p.expect(b':')?;\n\
                 match key.as_str() {\n",
            );
            for f in names {
                let _ = writeln!(
                    s,
                    "\"{f}\" => {{ f_{f} = ::core::option::Option::Some(\
                     ::serde::Deserialize::deserialize_json(p)?); }}"
                );
            }
            s.push_str(
                "_ => { p.skip_value()?; }\n\
                 }\n\
                 if !p.try_consume(b',') { p.expect(b'}')?; break; }\n\
                 }\n",
            );
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!("{f}: f_{f}.ok_or_else(|| ::serde::de::Error::missing_field(\"{f}\"))?")
                })
                .collect();
            let _ = writeln!(s, "{ctor} {{ {} }}\n}}", inits.join(", "));
            s
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, fields } => {
            let expr = gen_de_fields(name, fields);
            (name, format!("::core::result::Result::Ok({expr})\n"))
        }
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .collect();
            let data: Vec<&Variant> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .collect();
            let mut body = String::from("if p.peek() == ::core::option::Option::Some(b'\"') {\n");
            body.push_str("let tag = p.parse_string()?;\n");
            if unit.is_empty() {
                let _ = writeln!(
                    body,
                    "return ::core::result::Result::Err(::serde::de::Error::custom(\
                     format!(\"unknown variant `{{tag}}` of {name}\")));"
                );
            } else {
                body.push_str("return match tag.as_str() {\n");
                for v in &unit {
                    let _ = writeln!(
                        body,
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    );
                }
                let _ = writeln!(
                    body,
                    "_ => ::core::result::Result::Err(::serde::de::Error::custom(\
                     format!(\"unknown variant `{{tag}}` of {name}\"))),\n}};"
                );
            }
            body.push_str("}\n");
            if data.is_empty() {
                let _ = writeln!(
                    body,
                    "::core::result::Result::Err(::serde::de::Error::custom(\
                     \"expected string variant tag for {name}\"))"
                );
            } else {
                body.push_str("p.expect(b'{')?;\nlet tag = p.parse_string()?;\np.expect(b':')?;\n");
                body.push_str("let value = match tag.as_str() {\n");
                for v in &data {
                    let expr = gen_de_fields(&format!("{name}::{}", v.name), &v.fields);
                    let _ = writeln!(body, "\"{vn}\" => {expr},", vn = v.name);
                }
                let _ = writeln!(
                    body,
                    "_ => return ::core::result::Result::Err(::serde::de::Error::custom(\
                     format!(\"unknown variant `{{tag}}` of {name}\"))),\n}};"
                );
                body.push_str("p.expect(b'}')?;\n::core::result::Result::Ok(value)\n");
            }
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all, clippy::pedantic)]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_json(p: &mut ::serde::de::Parser<'_>) \
         -> ::core::result::Result<Self, ::serde::de::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}
