//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `Rng::{gen_range, gen_bool}` over integer/float ranges, `SeedableRng`,
//! and a deterministic `rngs::StdRng` (SplitMix64). Not cryptographic and
//! not stream-compatible with upstream `rand`; seeded runs are
//! deterministic within this shim only, which is all the tests require.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Range types a value can be uniformly sampled from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_signed_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        (Range {
            start: self.start as f64,
            end: self.end as f64,
        })
        .sample_single(rng) as f32
    }
}

/// User-facing RNG extension methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                state: state ^ 0x5851_F42D_4C95_7F2D,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_bounds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(3u32..17);
            assert_eq!(x, b.gen_range(3u32..17));
            assert!((3..17).contains(&x));
            let y = a.gen_range(0usize..=4);
            assert!(y <= 4);
            assert_eq!(y, b.gen_range(0usize..=4));
            let f = a.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let _ = b.gen_range(0.25f64..0.75);
            assert_eq!(a.gen_bool(0.5), b.gen_bool(0.5));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
