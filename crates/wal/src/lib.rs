//! # pscc-wal
//!
//! The logging substrate for the paper's **redo-at-server** update
//! propagation scheme (paper §3.3):
//!
//! * a client generates a [`LogRecord`] whenever it updates a cached
//!   object, storing it in its local [`LogCache`];
//! * log records are shipped to the owning server at commit (or earlier,
//!   when a dirty page is evicted from the client cache);
//! * the server's [`ServerLog`] assigns LSNs, and [`apply_redo`] installs
//!   the updates into the server's copy of the data — re-reading pages
//!   from disk when they are not resident (the cost the simulation
//!   charges);
//! * on abort, the server undoes already-shipped updates with
//!   [`apply_undo`], and the client simply discards its log cache and
//!   purges the updated objects (paper §3.3).
//!
//! Two-phase commit is represented by control records
//! ([`LogPayload::Prepare`], [`LogPayload::Commit`], [`LogPayload::Abort`])
//! whose forcing the engine charges as log-disk writes. Media recovery
//! (full ARIES restart) is out of the measured scope — see DESIGN.md.
//!
//! # Examples
//!
//! ```
//! use pscc_wal::{LogCache, LogRecord};
//! use pscc_common::{Oid, PageId, FileId, VolId, TxnId, SiteId};
//!
//! let txn = TxnId::new(SiteId(1), 1);
//! let oid = Oid::new(PageId::new(FileId::new(VolId(0), 0), 3), 2);
//! let mut cache = LogCache::new();
//! cache.append(LogRecord::update(txn, oid, vec![0; 4], vec![1; 4]));
//! assert_eq!(cache.drain_txn(txn).len(), 1);
//! assert!(cache.drain_txn(txn).is_empty());
//! ```

use pscc_common::{Oid, PageId, PsccError, TxnId};
use pscc_storage::Volume;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A log sequence number assigned by a server's log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// What a log record describes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogPayload {
    /// An object overwrite, with before- and after-images (the
    /// before-image enables server-side undo of shipped-but-uncommitted
    /// updates).
    Update {
        /// The updated object.
        oid: Oid,
        /// Its bytes before the update.
        before: Vec<u8>,
        /// Its bytes after the update.
        after: Vec<u8>,
    },
    /// Object creation.
    Create {
        /// The new object's id.
        oid: Oid,
        /// Its initial bytes.
        body: Vec<u8>,
    },
    /// Object deletion.
    Delete {
        /// The deleted object.
        oid: Oid,
        /// Its bytes before deletion (for undo).
        before: Vec<u8>,
    },
    /// 2PC: participant is prepared.
    Prepare,
    /// Transaction commit.
    Commit,
    /// Transaction abort.
    Abort,
}

impl LogPayload {
    /// The page a data payload touches (`None` for control records).
    pub fn page(&self) -> Option<PageId> {
        match self {
            LogPayload::Update { oid, .. }
            | LogPayload::Create { oid, .. }
            | LogPayload::Delete { oid, .. } => Some(oid.page),
            _ => None,
        }
    }
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// The transaction that generated it.
    pub txn: TxnId,
    /// What it describes.
    pub payload: LogPayload,
}

impl LogRecord {
    /// Builds an update record.
    pub fn update(txn: TxnId, oid: Oid, before: Vec<u8>, after: Vec<u8>) -> Self {
        LogRecord {
            txn,
            payload: LogPayload::Update { oid, before, after },
        }
    }

    /// Approximate wire size in bytes (network cost model).
    pub fn wire_size(&self) -> usize {
        24 + match &self.payload {
            LogPayload::Update { before, after, .. } => before.len() + after.len(),
            LogPayload::Create { body, .. } => body.len(),
            LogPayload::Delete { before, .. } => before.len(),
            _ => 0,
        }
    }
}

/// A client-side log cache: records accumulate per transaction and are
/// shipped at commit, or earlier for a page being evicted while dirty.
#[derive(Debug, Clone, Default)]
pub struct LogCache {
    records: Vec<LogRecord>,
}

impl LogCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&mut self, rec: LogRecord) {
        self.records.push(rec);
    }

    /// Removes and returns all records of `txn`, in append order
    /// (commit-time shipping).
    pub fn drain_txn(&mut self, txn: TxnId) -> Vec<LogRecord> {
        let (take, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.records)
            .into_iter()
            .partition(|r| r.txn == txn);
        self.records = keep;
        take
    }

    /// Removes and returns all records touching `page` (early shipping on
    /// dirty-page eviction, paper §3.3).
    pub fn drain_page(&mut self, page: PageId) -> Vec<LogRecord> {
        let (take, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.records)
            .into_iter()
            .partition(|r| r.payload.page() == Some(page));
        self.records = keep;
        take
    }

    /// Discards all records of `txn` (client-side abort, paper §3.3:
    /// "when a transaction aborts, it deletes its log records from the
    /// log cache").
    pub fn discard_txn(&mut self, txn: TxnId) {
        self.records.retain(|r| r.txn != txn);
    }

    /// Records currently cached (diagnostics).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Pages with cached records for `txn` (used at commit to know what
    /// to mark clean).
    pub fn pages_of(&self, txn: TxnId) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .records
            .iter()
            .filter(|r| r.txn == txn)
            .filter_map(|r| r.payload.page())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// The server-side log: assigns LSNs, tracks durability, and remembers
/// applied-but-uncommitted records per transaction so they can be undone
/// on abort.
#[derive(Debug, Default)]
pub struct ServerLog {
    next_lsn: u64,
    durable_lsn: u64,
    /// Applied data records of in-flight transactions, append order.
    in_flight: HashMap<TxnId, Vec<LogRecord>>,
}

impl ServerLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, returning its LSN. Data records are remembered
    /// for possible undo until [`ServerLog::end_txn`].
    pub fn append(&mut self, rec: LogRecord) -> Lsn {
        self.next_lsn += 1;
        let lsn = Lsn(self.next_lsn);
        match rec.payload {
            LogPayload::Update { .. } | LogPayload::Create { .. } | LogPayload::Delete { .. } => {
                self.in_flight.entry(rec.txn).or_default().push(rec);
            }
            _ => {}
        }
        lsn
    }

    /// Forces the log to disk; returns `true` if anything needed writing
    /// (i.e. the engine should charge one log-disk I/O).
    pub fn force(&mut self) -> bool {
        if self.durable_lsn < self.next_lsn {
            self.durable_lsn = self.next_lsn;
            true
        } else {
            false
        }
    }

    /// The applied-but-unfinished records of `txn` (undo candidates).
    pub fn in_flight_of(&self, txn: TxnId) -> &[LogRecord] {
        self.in_flight.get(&txn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Forgets `txn`'s in-flight records (commit), or returns them in
    /// reverse order for undo (abort).
    pub fn end_txn(&mut self, txn: TxnId, abort: bool) -> Vec<LogRecord> {
        let mut recs = self.in_flight.remove(&txn).unwrap_or_default();
        if abort {
            recs.reverse();
            recs
        } else {
            Vec::new()
        }
    }

    /// Highest assigned LSN.
    pub fn current_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }
}

/// Applies one record's redo (after-image) to the volume — the server
/// "redoes the operations indicated by the log records in order to
/// install the updates" (paper §3.3).
///
/// # Errors
///
/// Propagates storage errors (missing page/object, page full).
pub fn apply_redo(vol: &mut Volume, rec: &LogRecord) -> Result<(), PsccError> {
    match &rec.payload {
        LogPayload::Update { oid, after, .. } => vol.write_object(*oid, after),
        LogPayload::Create { oid, body } => {
            // Creation targeted a specific slot at the client; recreate at
            // the same slot if free, otherwise the home page decides.
            match vol.read_object(*oid) {
                Some(_) => vol.write_object(*oid, body),
                None => {
                    let got = vol.create_object(oid.page, body)?;
                    debug_assert_eq!(got.slot, oid.slot, "slot allocation diverged");
                    Ok(())
                }
            }
        }
        LogPayload::Delete { oid, .. } => vol.delete_object(*oid),
        _ => Ok(()),
    }
}

/// Applies one record's undo (before-image) to the volume — used when a
/// transaction aborts after some of its updates were already shipped
/// (paper §3.3: "any updates of the aborting transaction that have
/// already been shipped to the server are undone by the server").
///
/// # Errors
///
/// Propagates storage errors.
pub fn apply_undo(vol: &mut Volume, rec: &LogRecord) -> Result<(), PsccError> {
    match &rec.payload {
        LogPayload::Update { oid, before, .. } => vol.write_object(*oid, before),
        LogPayload::Create { oid, .. } => vol.delete_object(*oid),
        LogPayload::Delete { oid, before } => match vol.read_object(*oid) {
            Some(_) => vol.write_object(*oid, before),
            None => {
                let got = vol.create_object(oid.page, before)?;
                debug_assert_eq!(got.slot, oid.slot, "slot allocation diverged");
                Ok(())
            }
        },
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{SiteId, SystemConfig, VolId};

    fn setup() -> (Volume, Oid, TxnId) {
        let cfg = SystemConfig::small();
        let mut vol = Volume::create_database(VolId(0), &cfg);
        let file = vol.files()[0];
        let page = vol.file_pages(file).next().unwrap();
        let oid = Oid::new(page, 0);
        let body = vec![7u8; cfg.object_size() as usize];
        vol.write_object(oid, &body).unwrap();
        (vol, oid, TxnId::new(SiteId(1), 1))
    }

    #[test]
    fn redo_installs_after_image() {
        let (mut vol, oid, txn) = setup();
        let before = vol.read_object(oid).unwrap().to_vec();
        let after = vec![9u8; before.len()];
        let rec = LogRecord::update(txn, oid, before.clone(), after.clone());
        apply_redo(&mut vol, &rec).unwrap();
        assert_eq!(vol.read_object(oid), Some(&after[..]));
        apply_undo(&mut vol, &rec).unwrap();
        assert_eq!(vol.read_object(oid), Some(&before[..]));
    }

    #[test]
    fn create_and_delete_redo_undo() {
        let mut vol = Volume::new(VolId(0), 1024);
        let f = vol.create_file();
        let p = vol.allocate_page(f);
        let txn = TxnId::new(SiteId(1), 1);
        let oid = Oid::new(p, 0);

        let create = LogRecord {
            txn,
            payload: LogPayload::Create {
                oid,
                body: b"new".to_vec(),
            },
        };
        apply_redo(&mut vol, &create).unwrap();
        assert_eq!(vol.read_object(oid), Some(&b"new"[..]));
        apply_undo(&mut vol, &create).unwrap();
        assert_eq!(vol.read_object(oid), None);

        apply_redo(&mut vol, &create).unwrap();
        let del = LogRecord {
            txn,
            payload: LogPayload::Delete {
                oid,
                before: b"new".to_vec(),
            },
        };
        apply_redo(&mut vol, &del).unwrap();
        assert_eq!(vol.read_object(oid), None);
        apply_undo(&mut vol, &del).unwrap();
        assert_eq!(vol.read_object(oid), Some(&b"new"[..]));
    }

    #[test]
    fn log_cache_drains_by_txn_and_page() {
        let (_, oid, t1) = setup();
        let t2 = TxnId::new(SiteId(1), 2);
        let mut cache = LogCache::new();
        cache.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        cache.append(LogRecord::update(t2, oid, vec![3], vec![4]));
        let other = Oid::new(PageId::new(oid.page.file, oid.page.page + 1), 0);
        cache.append(LogRecord::update(t1, other, vec![5], vec![6]));

        assert_eq!(cache.pages_of(t1), {
            let mut v = vec![oid.page, other.page];
            v.sort();
            v
        });
        let by_page = cache.drain_page(oid.page);
        assert_eq!(by_page.len(), 2);
        let rest = cache.drain_txn(t1);
        assert_eq!(rest.len(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn discard_on_abort() {
        let (_, oid, t1) = setup();
        let mut cache = LogCache::new();
        cache.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        cache.discard_txn(t1);
        assert!(cache.is_empty());
    }

    #[test]
    fn server_log_tracks_in_flight_and_undo_order() {
        let (_, oid, t1) = setup();
        let mut log = ServerLog::new();
        let l1 = log.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        let l2 = log.append(LogRecord::update(t1, oid, vec![2], vec![3]));
        assert!(l1 < l2);
        assert_eq!(log.in_flight_of(t1).len(), 2);
        let undo = log.end_txn(t1, true);
        // Reverse order: newest first.
        assert!(
            matches!(&undo[0].payload, LogPayload::Update { before, .. } if before == &vec![2])
        );
        assert!(log.in_flight_of(t1).is_empty());
    }

    #[test]
    fn force_is_idempotent_until_new_records() {
        let (_, oid, t1) = setup();
        let mut log = ServerLog::new();
        log.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        assert!(log.force());
        assert!(!log.force());
        log.append(LogRecord {
            txn: t1,
            payload: LogPayload::Commit,
        });
        assert!(log.force());
    }

    #[test]
    fn control_records_are_not_in_flight() {
        let t1 = TxnId::new(SiteId(1), 1);
        let mut log = ServerLog::new();
        log.append(LogRecord {
            txn: t1,
            payload: LogPayload::Prepare,
        });
        assert!(log.in_flight_of(t1).is_empty());
    }

    #[test]
    fn wire_size_scales_with_images() {
        let (_, oid, t1) = setup();
        let small = LogRecord::update(t1, oid, vec![0; 4], vec![0; 4]);
        let big = LogRecord::update(t1, oid, vec![0; 400], vec![0; 400]);
        assert!(big.wire_size() > small.wire_size());
    }
}
