//! # pscc-wal
//!
//! The logging substrate for the paper's **redo-at-server** update
//! propagation scheme (paper §3.3):
//!
//! * a client generates a [`LogRecord`] whenever it updates a cached
//!   object, storing it in its local [`LogCache`];
//! * log records are shipped to the owning server at commit (or earlier,
//!   when a dirty page is evicted from the client cache);
//! * the server's [`ServerLog`] assigns LSNs, and [`apply_redo`] installs
//!   the updates into the server's copy of the data — re-reading pages
//!   from disk when they are not resident (the cost the simulation
//!   charges);
//! * on abort, the server undoes already-shipped updates with
//!   [`apply_undo`], and the client simply discards its log cache and
//!   purges the updated objects (paper §3.3).
//!
//! Two-phase commit is represented by control records
//! ([`LogPayload::Prepare`], [`LogPayload::Commit`], [`LogPayload::Abort`])
//! whose forcing the engine charges as log-disk writes.
//!
//! # Restart recovery
//!
//! The server log is *replayable*: [`ServerLog::force`] serializes every
//! newly durable record into a checksummed byte image, and
//! [`ServerLog::checkpoint`] takes a fuzzy checkpoint — a base volume
//! snapshot, the active-transaction table (with prepared flags), the
//! dirty page table, and the cumulative commit outcomes — then truncates
//! the image. [`ServerLog::crash_image`] yields the [`DurableState`]
//! that survives a crash; `pscc-recovery` runs ARIES-style
//! analysis → redo → undo over it ([`decode_log`] tolerates a torn tail,
//! [`redo_upto`] skips records already reflected in a page's LSN), and
//! [`ServerLog::after_recovery`] rebuilds the log with the surviving
//! in-doubt transactions. See DESIGN.md §6.
//!
//! # Examples
//!
//! ```
//! use pscc_wal::{LogCache, LogRecord};
//! use pscc_common::{Oid, PageId, FileId, VolId, TxnId, SiteId};
//!
//! let txn = TxnId::new(SiteId(1), 1);
//! let oid = Oid::new(PageId::new(FileId::new(VolId(0), 0), 3), 2);
//! let mut cache = LogCache::new();
//! cache.append(LogRecord::update(txn, oid, vec![0; 4], vec![1; 4]));
//! assert_eq!(cache.drain_txn(txn).len(), 1);
//! assert!(cache.drain_txn(txn).is_empty());
//! ```

use pscc_common::{Oid, PageId, PsccError, SiteId, TxnId};
use pscc_storage::{SlottedPage, Volume};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A log sequence number assigned by a server's log.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// What a log record describes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogPayload {
    /// An object overwrite, with before- and after-images (the
    /// before-image enables server-side undo of shipped-but-uncommitted
    /// updates).
    Update {
        /// The updated object.
        oid: Oid,
        /// Its bytes before the update.
        before: Vec<u8>,
        /// Its bytes after the update.
        after: Vec<u8>,
    },
    /// Object creation.
    Create {
        /// The new object's id.
        oid: Oid,
        /// Its initial bytes.
        body: Vec<u8>,
    },
    /// Object deletion.
    Delete {
        /// The deleted object.
        oid: Oid,
        /// Its bytes before deletion (for undo).
        before: Vec<u8>,
    },
    /// 2PC: participant is prepared.
    Prepare,
    /// Transaction commit.
    Commit,
    /// Transaction abort.
    Abort,
    /// Ownership migration, source side: pages `[lo, hi)` are frozen and
    /// about to ship to `to`. A `MigrateBegin` with no later
    /// `MigrateCommit`/`MigrateRollback` is an in-doubt migration that
    /// restart recovery resolves by rolling it *back* (presumed abort —
    /// the source stays authoritative).
    MigrateBegin {
        /// First page number of the moving range.
        lo: u32,
        /// One past the last page number.
        hi: u32,
        /// The destination site.
        to: SiteId,
    },
    /// Ownership migration, source side: the point of no return. Once
    /// this record is durable the range belongs to `to` at layout
    /// version `layout`, and restart recovery rolls the migration
    /// *forward* (re-activating the destination if needed).
    MigrateCommit {
        /// First page number of the moved range.
        lo: u32,
        /// One past the last page number.
        hi: u32,
        /// The new owner.
        to: SiteId,
        /// The layout version the commit publishes.
        layout: u64,
    },
    /// Ownership migration, source side: the migration was abandoned
    /// before commit (supervisor abort or crash); the source remains
    /// authoritative.
    MigrateRollback {
        /// First page number of the range.
        lo: u32,
        /// One past the last page number.
        hi: u32,
    },
    /// Ownership migration, source side: cleanup finished (the
    /// destination acknowledged activation). Purely an optimization —
    /// recovery treats a missing `MigrateEnd` after a `MigrateCommit`
    /// as "re-offer activation to the destination".
    MigrateEnd {
        /// First page number of the range.
        lo: u32,
        /// One past the last page number.
        hi: u32,
    },
    /// Ownership migration, destination side: one transferred page
    /// image. Logged (and forced, with [`LogPayload::MigrateInEnd`])
    /// before the destination acknowledges the transfer, so a crashed
    /// destination can re-stage the images from its own log.
    MigrateIn {
        /// The migrating source.
        from: SiteId,
        /// The transferred page.
        page: PageId,
        /// Its full image at transfer time.
        image: SlottedPage,
    },
    /// Ownership migration, destination side: the transfer of `[lo, hi)`
    /// from `from` is complete (`n` pages) at prospective layout
    /// `layout`. An `InEnd` with no later [`LogPayload::MigrateLand`]
    /// is an in-doubt inbound migration: the restarted destination asks
    /// the source whether the commit record made it.
    MigrateInEnd {
        /// The migrating source.
        from: SiteId,
        /// First page number of the range.
        lo: u32,
        /// One past the last page number.
        hi: u32,
        /// The layout version the migration will publish.
        layout: u64,
        /// Number of transferred pages.
        n: u32,
    },
    /// Ownership migration, destination side: the range is activated
    /// here at layout `layout` — this site is now the one authoritative
    /// owner.
    MigrateLand {
        /// The migrating source.
        from: SiteId,
        /// First page number of the range.
        lo: u32,
        /// One past the last page number.
        hi: u32,
        /// The published layout version.
        layout: u64,
    },
}

impl LogPayload {
    /// The page a data payload touches (`None` for control records).
    pub fn page(&self) -> Option<PageId> {
        match self {
            LogPayload::Update { oid, .. }
            | LogPayload::Create { oid, .. }
            | LogPayload::Delete { oid, .. } => Some(oid.page),
            _ => None,
        }
    }
}

/// One log record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// The transaction that generated it.
    pub txn: TxnId,
    /// What it describes.
    pub payload: LogPayload,
}

impl LogRecord {
    /// Builds an update record.
    pub fn update(txn: TxnId, oid: Oid, before: Vec<u8>, after: Vec<u8>) -> Self {
        LogRecord {
            txn,
            payload: LogPayload::Update { oid, before, after },
        }
    }

    /// Approximate wire size in bytes (network cost model).
    pub fn wire_size(&self) -> usize {
        24 + match &self.payload {
            LogPayload::Update { before, after, .. } => before.len() + after.len(),
            LogPayload::Create { body, .. } => body.len(),
            LogPayload::Delete { before, .. } => before.len(),
            LogPayload::MigrateIn { image, .. } => image.as_bytes().len(),
            _ => 0,
        }
    }
}

/// A client-side log cache: records accumulate per transaction and are
/// shipped at commit, or earlier for a page being evicted while dirty.
#[derive(Debug, Clone, Default)]
pub struct LogCache {
    records: Vec<LogRecord>,
}

impl LogCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&mut self, rec: LogRecord) {
        self.records.push(rec);
    }

    /// Removes and returns all records of `txn`, in append order
    /// (commit-time shipping).
    pub fn drain_txn(&mut self, txn: TxnId) -> Vec<LogRecord> {
        let (take, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.records)
            .into_iter()
            .partition(|r| r.txn == txn);
        self.records = keep;
        take
    }

    /// Removes and returns all records touching `page` (early shipping on
    /// dirty-page eviction, paper §3.3).
    pub fn drain_page(&mut self, page: PageId) -> Vec<LogRecord> {
        let (take, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut self.records)
            .into_iter()
            .partition(|r| r.payload.page() == Some(page));
        self.records = keep;
        take
    }

    /// Discards all records of `txn` (client-side abort, paper §3.3:
    /// "when a transaction aborts, it deletes its log records from the
    /// log cache").
    pub fn discard_txn(&mut self, txn: TxnId) {
        self.records.retain(|r| r.txn != txn);
    }

    /// Records currently cached (diagnostics).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Pages with cached records for `txn` (used at commit to know what
    /// to mark clean).
    pub fn pages_of(&self, txn: TxnId) -> Vec<PageId> {
        let mut v: Vec<PageId> = self
            .records
            .iter()
            .filter(|r| r.txn == txn)
            .filter_map(|r| r.payload.page())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

/// One active-transaction-table entry in a fuzzy checkpoint: the
/// transaction's applied data records (undo information that would
/// otherwise be lost to log truncation) and whether it had prepared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttEntry {
    /// Applied data records, append order.
    pub records: Vec<LogRecord>,
    /// Whether a `Prepare` control record preceded the checkpoint.
    pub prepared: bool,
}

/// The serialized ownership layout carried in checkpoints: a layout
/// version plus `(lo, hi, owner)` page-number ranges. Structurally the
/// same image `pscc-core`'s ownership directory produces.
pub type LayoutImage = (u64, Vec<(u32, u32, SiteId)>);

/// A fuzzy checkpoint: everything restart analysis needs besides the
/// post-checkpoint log tail.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Volume snapshot as of the checkpoint (page LSNs included, so
    /// redo can skip records the base already reflects).
    pub base: Volume,
    /// All records with LSN ≤ this are reflected in `base` or `att`.
    pub base_lsn: Lsn,
    /// Active-transaction table: in-flight transactions at checkpoint.
    pub att: HashMap<TxnId, AttEntry>,
    /// Dirty page table: pages touched since the previous checkpoint
    /// with their recovery LSNs (first dirtying record).
    pub dpt: Vec<(PageId, Lsn)>,
    /// Cumulative commit outcomes (presumed abort makes this the only
    /// side the coordinator must be able to re-learn).
    pub committed: HashSet<TxnId>,
    /// The ownership layout as of the checkpoint, if migrations ever
    /// changed it here (`None` on layouts still at boot version). The
    /// restarted engine adopts it, then rolls forward any later
    /// `MigrateCommit`/`MigrateLand` records from the log tail.
    pub layout: Option<LayoutImage>,
}

/// What survives a server crash: the last checkpoint (if any) plus the
/// forced byte image of the log tail. Records appended but never forced
/// are lost, exactly as on a real machine.
#[derive(Debug, Clone, Default)]
pub struct DurableState {
    /// The last fuzzy checkpoint taken, if any.
    pub checkpoint: Option<Checkpoint>,
    /// Encoded log records since that checkpoint (see [`decode_log`]).
    pub log: Vec<u8>,
}

/// The server-side log: assigns LSNs, tracks durability, and remembers
/// applied-but-uncommitted records per transaction so they can be undone
/// on abort. Forced records are additionally serialized into a durable
/// byte image so an owner crash is survivable (see [`DurableState`]).
#[derive(Debug, Default)]
pub struct ServerLog {
    next_lsn: u64,
    durable_lsn: u64,
    /// Applied data records of in-flight transactions, append order.
    in_flight: HashMap<TxnId, Vec<LogRecord>>,
    /// In-flight transactions that have logged a `Prepare`.
    prepared: HashSet<TxnId>,
    /// Transactions that have logged a `Commit` (cumulative).
    committed: HashSet<TxnId>,
    /// Records since the last checkpoint, append order (the volatile
    /// log tail; the prefix up to `durable_lsn` is also in `durable`).
    tail: Vec<(Lsn, LogRecord)>,
    /// Encoded image of the forced tail prefix.
    durable: Vec<u8>,
    /// The last fuzzy checkpoint.
    checkpoint: Option<Checkpoint>,
    /// The current ownership layout, stamped into future checkpoints
    /// (`None` until a migration first changes it).
    layout: Option<LayoutImage>,
}

impl ServerLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log after restart recovery: LSN allocation resumes
    /// past everything in the durable image, the in-doubt transactions'
    /// records are re-registered in flight (with their prepared flag),
    /// and the recovered commit outcomes are retained for
    /// outcome queries. The caller should take a fresh checkpoint
    /// immediately so the new durable image is self-contained.
    pub fn after_recovery(
        max_lsn: Lsn,
        in_doubt: HashMap<TxnId, Vec<LogRecord>>,
        committed: HashSet<TxnId>,
    ) -> Self {
        ServerLog {
            next_lsn: max_lsn.0,
            durable_lsn: max_lsn.0,
            prepared: in_doubt.keys().copied().collect(),
            in_flight: in_doubt,
            committed,
            tail: Vec::new(),
            durable: Vec::new(),
            checkpoint: None,
            layout: None,
        }
    }

    /// Sets the ownership layout stamped into future checkpoints. The
    /// engine calls this whenever a migration changes its directory (and
    /// once after restart, with the rolled-forward layout).
    pub fn set_layout(&mut self, layout: LayoutImage) {
        self.layout = Some(layout);
    }

    /// Appends a record, returning its LSN. Data records are remembered
    /// for possible undo until [`ServerLog::end_txn`].
    pub fn append(&mut self, rec: LogRecord) -> Lsn {
        self.next_lsn += 1;
        let lsn = Lsn(self.next_lsn);
        match rec.payload {
            LogPayload::Update { .. } | LogPayload::Create { .. } | LogPayload::Delete { .. } => {
                self.in_flight.entry(rec.txn).or_default().push(rec.clone());
            }
            LogPayload::Prepare => {
                self.prepared.insert(rec.txn);
            }
            LogPayload::Commit => {
                self.committed.insert(rec.txn);
            }
            // Migration records carry a sentinel transaction and no undo
            // state; they matter only to the restart analysis pass.
            LogPayload::Abort
            | LogPayload::MigrateBegin { .. }
            | LogPayload::MigrateCommit { .. }
            | LogPayload::MigrateRollback { .. }
            | LogPayload::MigrateEnd { .. }
            | LogPayload::MigrateIn { .. }
            | LogPayload::MigrateInEnd { .. }
            | LogPayload::MigrateLand { .. } => {}
        }
        self.tail.push((lsn, rec));
        lsn
    }

    /// Forces the log to disk; returns `true` if anything needed writing
    /// (i.e. the engine should charge one log-disk I/O). Newly durable
    /// records are serialized into the crash-surviving byte image.
    pub fn force(&mut self) -> bool {
        if self.durable_lsn < self.next_lsn {
            for (lsn, rec) in &self.tail {
                if lsn.0 > self.durable_lsn {
                    encode_frame(&mut self.durable, *lsn, rec);
                }
            }
            self.durable_lsn = self.next_lsn;
            true
        } else {
            false
        }
    }

    /// Takes a fuzzy checkpoint against `base` (the caller's current
    /// volume image, cloned) and truncates the log tail. Forces first;
    /// returns `true` if that force needed a log-disk write (the caller
    /// charges the I/O).
    pub fn checkpoint(&mut self, base: Volume) -> bool {
        let wrote = self.force();
        let mut dpt: HashMap<PageId, Lsn> = HashMap::new();
        for (lsn, rec) in &self.tail {
            if let Some(page) = rec.payload.page() {
                dpt.entry(page).or_insert(*lsn);
            }
        }
        let mut dpt: Vec<(PageId, Lsn)> = dpt.into_iter().collect();
        dpt.sort();
        let att = self
            .in_flight
            .iter()
            .map(|(t, recs)| {
                (
                    *t,
                    AttEntry {
                        records: recs.clone(),
                        prepared: self.prepared.contains(t),
                    },
                )
            })
            .collect();
        self.checkpoint = Some(Checkpoint {
            base,
            base_lsn: Lsn(self.durable_lsn),
            att,
            dpt,
            committed: self.committed.clone(),
            layout: self.layout.clone(),
        });
        self.tail.clear();
        self.durable.clear();
        wrote
    }

    /// The state that would survive a crash right now: the last
    /// checkpoint plus the *forced* portion of the log tail. Unforced
    /// records are lost, as they would be on a real machine.
    pub fn crash_image(&self) -> DurableState {
        DurableState {
            checkpoint: self.checkpoint.clone(),
            log: self.durable.clone(),
        }
    }

    /// The applied-but-unfinished records of `txn` (undo candidates).
    pub fn in_flight_of(&self, txn: TxnId) -> &[LogRecord] {
        self.in_flight.get(&txn).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Forgets `txn`'s in-flight records (commit), or returns them in
    /// reverse order for undo (abort).
    pub fn end_txn(&mut self, txn: TxnId, abort: bool) -> Vec<LogRecord> {
        self.prepared.remove(&txn);
        let mut recs = self.in_flight.remove(&txn).unwrap_or_default();
        if abort {
            recs.reverse();
            recs
        } else {
            Vec::new()
        }
    }

    /// Highest assigned LSN.
    pub fn current_lsn(&self) -> Lsn {
        Lsn(self.next_lsn)
    }

    /// Highest LSN known durable (forced).
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable_lsn)
    }

    /// Records appended since the last checkpoint (its age in log
    /// records; the whole log if no checkpoint was ever taken).
    pub fn checkpoint_age(&self) -> u64 {
        let base = self.checkpoint.as_ref().map(|c| c.base_lsn.0).unwrap_or(0);
        self.next_lsn - base
    }

    /// Whether `txn` logged a `Commit` (here or before a recovered
    /// crash) — the coordinator-side answer to an outcome query.
    pub fn was_committed(&self, txn: TxnId) -> bool {
        self.committed.contains(&txn)
    }
}

/// Applies one record's redo (after-image) to the volume — the server
/// "redoes the operations indicated by the log records in order to
/// install the updates" (paper §3.3).
///
/// # Errors
///
/// Propagates storage errors (missing page/object, page full).
pub fn apply_redo(vol: &mut Volume, rec: &LogRecord) -> Result<(), PsccError> {
    match &rec.payload {
        LogPayload::Update { oid, after, .. } => vol.write_object(*oid, after),
        LogPayload::Create { oid, body } => {
            // Creation targeted a specific slot at the client; recreate at
            // the same slot if free, otherwise the home page decides.
            match vol.read_object(*oid) {
                Some(_) => vol.write_object(*oid, body),
                None => {
                    let got = vol.create_object(oid.page, body)?;
                    debug_assert_eq!(got.slot, oid.slot, "slot allocation diverged");
                    Ok(())
                }
            }
        }
        LogPayload::Delete { oid, .. } => vol.delete_object(*oid),
        _ => Ok(()),
    }
}

/// Applies one record's undo (before-image) to the volume — used when a
/// transaction aborts after some of its updates were already shipped
/// (paper §3.3: "any updates of the aborting transaction that have
/// already been shipped to the server are undone by the server").
///
/// # Errors
///
/// Propagates storage errors.
pub fn apply_undo(vol: &mut Volume, rec: &LogRecord) -> Result<(), PsccError> {
    match &rec.payload {
        LogPayload::Update { oid, before, .. } => vol.write_object(*oid, before),
        LogPayload::Create { oid, .. } => vol.delete_object(*oid),
        LogPayload::Delete { oid, before } => match vol.read_object(*oid) {
            Some(_) => vol.write_object(*oid, before),
            None => {
                let got = vol.create_object(oid.page, before)?;
                debug_assert_eq!(got.slot, oid.slot, "slot allocation diverged");
                Ok(())
            }
        },
        _ => Ok(()),
    }
}

/// FNV-1a over `bytes`, folded to 32 bits (per-frame checksum).
fn fnv32(bytes: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Appends one `[len | checksum | payload]` frame to `buf`.
fn encode_frame(buf: &mut Vec<u8>, lsn: Lsn, rec: &LogRecord) {
    let payload = serde_json::to_vec(&(lsn, rec)).expect("log record serializes");
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&fnv32(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

/// Decodes a durable log image back into `(lsn, record)` pairs.
///
/// A crash can tear the tail of the image mid-frame; analysis must not
/// panic on it. Decoding stops at the first incomplete or
/// checksum-corrupt frame and reports it through the second return
/// value — the intact prefix is the recoverable log.
pub fn decode_log(bytes: &[u8]) -> (Vec<(Lsn, LogRecord)>, bool) {
    let mut out = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if at + 8 > bytes.len() {
            return (out, true); // torn inside a frame header
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let start = at + 8;
        let Some(end) = start.checked_add(len).filter(|e| *e <= bytes.len()) else {
            return (out, true); // torn inside the payload
        };
        let payload = &bytes[start..end];
        if fnv32(payload) != sum {
            return (out, true); // corrupt frame
        }
        match serde_json::from_slice::<(Lsn, LogRecord)>(payload) {
            Ok(pair) => out.push(pair),
            Err(_) => return (out, true),
        }
        at = end;
    }
    (out, false)
}

/// Stamps `page`'s header LSN after a redo application, never moving it
/// backwards (the monotone page LSN is what makes restart redo
/// idempotent).
pub fn stamp_page_lsn(vol: &mut Volume, page: PageId, lsn: Lsn) {
    if let Some(p) = vol.page_mut(page) {
        if p.lsn() < lsn.0 {
            p.set_lsn(lsn.0);
        }
    }
}

/// Restart redo of one record: skipped (returning `Ok(false)`) when the
/// target page's LSN shows the update already applied, else applied via
/// [`apply_redo`] and stamped.
///
/// # Errors
///
/// Propagates storage errors from [`apply_redo`].
pub fn redo_upto(vol: &mut Volume, rec: &LogRecord, lsn: Lsn) -> Result<bool, PsccError> {
    if let Some(page) = rec.payload.page() {
        if let Some(p) = vol.page(page) {
            if p.lsn() >= lsn.0 {
                return Ok(false);
            }
        }
        apply_redo(vol, rec)?;
        stamp_page_lsn(vol, page, lsn);
        Ok(true)
    } else {
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{SiteId, SystemConfig, VolId};

    fn setup() -> (Volume, Oid, TxnId) {
        let cfg = SystemConfig::small();
        let mut vol = Volume::create_database(VolId(0), &cfg);
        let file = vol.files()[0];
        let page = vol.file_pages(file).next().unwrap();
        let oid = Oid::new(page, 0);
        let body = vec![7u8; cfg.object_size() as usize];
        vol.write_object(oid, &body).unwrap();
        (vol, oid, TxnId::new(SiteId(1), 1))
    }

    #[test]
    fn redo_installs_after_image() {
        let (mut vol, oid, txn) = setup();
        let before = vol.read_object(oid).unwrap().to_vec();
        let after = vec![9u8; before.len()];
        let rec = LogRecord::update(txn, oid, before.clone(), after.clone());
        apply_redo(&mut vol, &rec).unwrap();
        assert_eq!(vol.read_object(oid), Some(&after[..]));
        apply_undo(&mut vol, &rec).unwrap();
        assert_eq!(vol.read_object(oid), Some(&before[..]));
    }

    #[test]
    fn create_and_delete_redo_undo() {
        let mut vol = Volume::new(VolId(0), 1024);
        let f = vol.create_file();
        let p = vol.allocate_page(f);
        let txn = TxnId::new(SiteId(1), 1);
        let oid = Oid::new(p, 0);

        let create = LogRecord {
            txn,
            payload: LogPayload::Create {
                oid,
                body: b"new".to_vec(),
            },
        };
        apply_redo(&mut vol, &create).unwrap();
        assert_eq!(vol.read_object(oid), Some(&b"new"[..]));
        apply_undo(&mut vol, &create).unwrap();
        assert_eq!(vol.read_object(oid), None);

        apply_redo(&mut vol, &create).unwrap();
        let del = LogRecord {
            txn,
            payload: LogPayload::Delete {
                oid,
                before: b"new".to_vec(),
            },
        };
        apply_redo(&mut vol, &del).unwrap();
        assert_eq!(vol.read_object(oid), None);
        apply_undo(&mut vol, &del).unwrap();
        assert_eq!(vol.read_object(oid), Some(&b"new"[..]));
    }

    #[test]
    fn log_cache_drains_by_txn_and_page() {
        let (_, oid, t1) = setup();
        let t2 = TxnId::new(SiteId(1), 2);
        let mut cache = LogCache::new();
        cache.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        cache.append(LogRecord::update(t2, oid, vec![3], vec![4]));
        let other = Oid::new(PageId::new(oid.page.file, oid.page.page + 1), 0);
        cache.append(LogRecord::update(t1, other, vec![5], vec![6]));

        assert_eq!(cache.pages_of(t1), {
            let mut v = vec![oid.page, other.page];
            v.sort();
            v
        });
        let by_page = cache.drain_page(oid.page);
        assert_eq!(by_page.len(), 2);
        let rest = cache.drain_txn(t1);
        assert_eq!(rest.len(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn discard_on_abort() {
        let (_, oid, t1) = setup();
        let mut cache = LogCache::new();
        cache.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        cache.discard_txn(t1);
        assert!(cache.is_empty());
    }

    #[test]
    fn server_log_tracks_in_flight_and_undo_order() {
        let (_, oid, t1) = setup();
        let mut log = ServerLog::new();
        let l1 = log.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        let l2 = log.append(LogRecord::update(t1, oid, vec![2], vec![3]));
        assert!(l1 < l2);
        assert_eq!(log.in_flight_of(t1).len(), 2);
        let undo = log.end_txn(t1, true);
        // Reverse order: newest first.
        assert!(
            matches!(&undo[0].payload, LogPayload::Update { before, .. } if before == &vec![2])
        );
        assert!(log.in_flight_of(t1).is_empty());
    }

    #[test]
    fn force_is_idempotent_until_new_records() {
        let (_, oid, t1) = setup();
        let mut log = ServerLog::new();
        log.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        assert!(log.force());
        assert!(!log.force());
        log.append(LogRecord {
            txn: t1,
            payload: LogPayload::Commit,
        });
        assert!(log.force());
    }

    #[test]
    fn control_records_are_not_in_flight() {
        let t1 = TxnId::new(SiteId(1), 1);
        let mut log = ServerLog::new();
        log.append(LogRecord {
            txn: t1,
            payload: LogPayload::Prepare,
        });
        assert!(log.in_flight_of(t1).is_empty());
    }

    #[test]
    fn wire_size_scales_with_images() {
        let (_, oid, t1) = setup();
        let small = LogRecord::update(t1, oid, vec![0; 4], vec![0; 4]);
        let big = LogRecord::update(t1, oid, vec![0; 400], vec![0; 400]);
        assert!(big.wire_size() > small.wire_size());
    }

    #[test]
    fn durable_image_roundtrips_and_omits_unforced_tail() {
        let (_, oid, t1) = setup();
        let mut log = ServerLog::new();
        log.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        log.append(LogRecord {
            txn: t1,
            payload: LogPayload::Commit,
        });
        assert!(log.force());
        // Appended after the force: lost at a crash.
        log.append(LogRecord::update(t1, oid, vec![2], vec![3]));

        let image = log.crash_image();
        let (recs, torn) = decode_log(&image.log);
        assert!(!torn);
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0, Lsn(1));
        assert!(matches!(recs[1].1.payload, LogPayload::Commit));
    }

    #[test]
    fn torn_tail_truncates_instead_of_panicking() {
        let (_, oid, t1) = setup();
        let mut log = ServerLog::new();
        log.append(LogRecord::update(t1, oid, vec![1; 8], vec![2; 8]));
        log.append(LogRecord::update(t1, oid, vec![2; 8], vec![3; 8]));
        log.force();
        let full = log.crash_image().log;

        // Tear the image mid-way through the second frame.
        for cut in [full.len() - 1, full.len() - 9, 4] {
            let (recs, torn) = decode_log(&full[..cut]);
            assert!(torn, "cut at {cut} should report a torn tail");
            assert!(recs.len() <= 1);
        }
        // Flip a payload byte: checksum catches it, prefix survives.
        let mut corrupt = full.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        let (recs, torn) = decode_log(&corrupt);
        assert!(torn);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn checkpoint_snapshots_att_and_truncates() {
        let (vol, oid, t1) = setup();
        let t2 = TxnId::new(SiteId(2), 1);
        let mut log = ServerLog::new();
        log.append(LogRecord::update(t1, oid, vec![1], vec![2]));
        log.append(LogRecord {
            txn: t1,
            payload: LogPayload::Prepare,
        });
        log.append(LogRecord::update(t2, oid, vec![2], vec![3]));
        log.append(LogRecord {
            txn: t2,
            payload: LogPayload::Commit,
        });
        log.end_txn(t2, false);
        assert!(log.checkpoint(vol.clone()));

        let image = log.crash_image();
        let ckpt = image.checkpoint.expect("checkpoint taken");
        assert_eq!(ckpt.base_lsn, Lsn(4));
        assert_eq!(ckpt.att.len(), 1);
        assert!(ckpt.att[&t1].prepared);
        assert!(ckpt.committed.contains(&t2));
        assert_eq!(ckpt.dpt.len(), 1);
        assert_eq!(ckpt.dpt[0], (oid.page, Lsn(1)));
        // Tail truncated: nothing new to decode, nothing to force.
        assert!(decode_log(&image.log).0.is_empty());
        assert!(!log.force());
        assert_eq!(log.checkpoint_age(), 0);
    }

    #[test]
    fn migration_records_survive_the_durable_image() {
        let (vol, oid, _) = setup();
        let sentinel = TxnId::new(SiteId(3), u64::MAX);
        let mut log = ServerLog::new();
        log.append(LogRecord {
            txn: sentinel,
            payload: LogPayload::MigrateBegin {
                lo: 0,
                hi: 8,
                to: SiteId(2),
            },
        });
        let image = vol.page(oid.page).unwrap().clone();
        log.append(LogRecord {
            txn: sentinel,
            payload: LogPayload::MigrateIn {
                from: SiteId(1),
                page: oid.page,
                image: image.clone(),
            },
        });
        log.append(LogRecord {
            txn: sentinel,
            payload: LogPayload::MigrateCommit {
                lo: 0,
                hi: 8,
                to: SiteId(2),
                layout: 2,
            },
        });
        // Migration records are control records: never in flight, page-less.
        assert!(log.in_flight_of(sentinel).is_empty());
        assert!(log.force());

        let (recs, torn) = decode_log(&log.crash_image().log);
        assert!(!torn);
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|(_, r)| r.payload.page().is_none()));
        match &recs[1].1.payload {
            LogPayload::MigrateIn { image: got, .. } => assert_eq!(got, &image),
            other => panic!("unexpected {other:?}"),
        }
        assert!(recs[1].1.wire_size() > recs[0].1.wire_size());
    }

    #[test]
    fn checkpoint_carries_the_layout_image() {
        let (vol, _, _) = setup();
        let mut log = ServerLog::new();
        log.checkpoint(vol.clone());
        assert_eq!(
            log.crash_image().checkpoint.unwrap().layout,
            None,
            "boot layout is implicit"
        );
        let layout: LayoutImage = (3, vec![(0, 10, SiteId(2)), (10, 20, SiteId(1))]);
        log.set_layout(layout.clone());
        log.checkpoint(vol.clone());
        assert_eq!(log.crash_image().checkpoint.unwrap().layout, Some(layout));
    }

    #[test]
    fn redo_upto_skips_already_stamped_pages() {
        let (mut vol, oid, t1) = setup();
        let before = vol.read_object(oid).unwrap().to_vec();
        let after = vec![9u8; before.len()];
        let rec = LogRecord::update(t1, oid, before.clone(), after.clone());
        assert!(redo_upto(&mut vol, &rec, Lsn(5)).unwrap());
        assert_eq!(vol.page(oid.page).unwrap().lsn(), 5);

        // Same or older LSN: already applied, skipped.
        let older = LogRecord::update(t1, oid, before.clone(), vec![1u8; before.len()]);
        assert!(!redo_upto(&mut vol, &older, Lsn(5)).unwrap());
        assert!(!redo_upto(&mut vol, &older, Lsn(3)).unwrap());
        assert_eq!(vol.read_object(oid), Some(&after[..]));

        // Newer LSN: applies and advances the stamp.
        assert!(redo_upto(&mut vol, &older, Lsn(6)).unwrap());
        assert_eq!(vol.page(oid.page).unwrap().lsn(), 6);
    }

    #[test]
    fn after_recovery_resumes_lsns_and_outcomes() {
        let (_, oid, t1) = setup();
        let t2 = TxnId::new(SiteId(2), 7);
        let mut in_doubt = HashMap::new();
        in_doubt.insert(t1, vec![LogRecord::update(t1, oid, vec![1], vec![2])]);
        let mut log = ServerLog::after_recovery(Lsn(42), in_doubt, HashSet::from([t2]));
        assert_eq!(log.current_lsn(), Lsn(42));
        assert_eq!(log.durable_lsn(), Lsn(42));
        assert!(log.was_committed(t2));
        assert!(!log.was_committed(t1));
        assert_eq!(log.in_flight_of(t1).len(), 1);
        assert_eq!(
            log.append(LogRecord::update(t1, oid, vec![2], vec![3])),
            Lsn(43)
        );
    }
}
