//! Virtual time for the discrete-event harness and the timeout machinery.
//!
//! Time is a monotone `u64` count of **microseconds** since the start of a
//! run. Microsecond resolution comfortably covers the paper's cost scale
//! (per-object processing 2 ms, messages in the hundreds of µs, disk I/O
//! in the ms range) while leaving 580 000 years of headroom.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant of virtual time (µs since run start).
///
/// # Examples
///
/// ```
/// # use pscc_common::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Time(u64);

impl Time {
    /// The start of a run.
    pub const ZERO: Time = Time(0);

    /// Builds an instant from a raw microsecond count.
    pub fn from_micros(us: u64) -> Self {
        Time(us)
    }

    /// Microseconds since run start.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since run start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, d: Duration) -> Time {
        Time(self.0 + d.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, other: Time) -> Duration {
        self.since(other)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to µs. Negative
    /// inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        Duration((s.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// The span in microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Scales the span by a non-negative factor, rounding to µs.
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration::from_secs_f64(self.as_secs_f64() * k)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, d: Duration) -> Duration {
        Duration(self.0 + d.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, d: Duration) {
        self.0 += d.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let t = Time::from_micros(500) + Duration::from_millis(1);
        assert_eq!(t.as_micros(), 1_500);
        assert_eq!(t - Time::from_micros(500), Duration::from_millis(1));
        assert_eq!(
            Time::from_micros(3).since(Time::from_micros(9)),
            Duration::ZERO
        );
    }

    #[test]
    fn conversions() {
        assert_eq!(Duration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_secs_f64(0.0015).as_micros(), 1_500);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_millis(3).mul_f64(1.5).as_micros(), 4_500);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Duration::from_micros(7)), "7µs");
        assert_eq!(format!("{}", Duration::from_micros(2500)), "2.500ms");
        assert_eq!(format!("{}", Duration::from_secs(3)), "3.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Duration = [1u64, 2, 3].iter().map(|&m| Duration::from_millis(m)).sum();
        assert_eq!(total, Duration::from_millis(6));
    }
}
