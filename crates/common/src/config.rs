//! System-wide configuration: protocol selection and the platform
//! constants of the paper's Table 1.

use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which cache-consistency protocol the system runs (paper §5: SHORE's
/// system-wide locking granularity plus the adaptive-locking switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Protocol {
    /// Basic page server: page-level locking and page-level callbacks.
    Ps,
    /// Object-level locking with adaptive callbacks, adaptive *locking*
    /// disabled (paper's PS-OA).
    PsOa,
    /// Fully adaptive: object-level locking with adaptive callbacks *and*
    /// adaptive page locks (paper's PS-AA — the contribution).
    #[default]
    PsAa,
}

impl Protocol {
    /// Whether concurrency control operates at object granularity.
    pub fn object_level(self) -> bool {
        !matches!(self, Protocol::Ps)
    }

    /// Whether adaptive page locks are granted on write requests.
    pub fn adaptive_locking(self) -> bool {
        matches!(self, Protocol::PsAa)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Protocol::Ps => "PS",
            Protocol::PsOa => "PS-OA",
            Protocol::PsAa => "PS-AA",
        };
        f.write_str(s)
    }
}

/// Per-file consistency dial for read-only edge sites. `Strict` files
/// never touch the edge tier and keep the paper's serializable behavior
/// byte-for-byte; the other tiers trade bounded staleness for lock-free
/// local reads (in the spirit of cache serializability for read-only
/// edge transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ConsistencyTier {
    /// Serializable reads through the owner, exactly as today.
    #[default]
    Strict,
    /// Edge copies are served without locks for up to `ttl` after the
    /// fetch request was sent; past that the edge refetches through the
    /// owner. The staleness of any answered read is bounded by `ttl`.
    BoundedStale { ttl: Duration },
    /// Edge copies are kept fresh by the owner's invalidation stream
    /// (piggybacked on the callback lane). While the watch lease is
    /// live, staleness is bounded by the invalidation propagation delay;
    /// when the watch is severed (partition, owner crash, lease expiry)
    /// the copy degrades to `BoundedStale { ttl: fallback_ttl }`
    /// semantics measured from its validation time.
    WatchBased { fallback_ttl: Duration },
}

impl ConsistencyTier {
    /// The hard staleness bound an edge read under this tier may carry,
    /// or `None` for `Strict` (which never serves from the edge).
    pub fn bound(self) -> Option<Duration> {
        match self {
            ConsistencyTier::Strict => None,
            ConsistencyTier::BoundedStale { ttl } => Some(ttl),
            ConsistencyTier::WatchBased { fallback_ttl } => Some(fallback_ttl),
        }
    }

    /// Whether reads of this tier may be answered from an edge copy.
    pub fn edge_cacheable(self) -> bool {
        !matches!(self, ConsistencyTier::Strict)
    }

    /// Whether this tier subscribes to the owner's invalidation stream.
    pub fn watch_based(self) -> bool {
        matches!(self, ConsistencyTier::WatchBased { .. })
    }
}

impl fmt::Display for ConsistencyTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsistencyTier::Strict => f.write_str("strict"),
            ConsistencyTier::BoundedStale { ttl } => write!(f, "bounded_stale({ttl})"),
            ConsistencyTier::WatchBased { fallback_ttl } => write!(f, "watch({fallback_ttl})"),
        }
    }
}

/// Assigns a [`ConsistencyTier`] to one file (by file number, uniform
/// across volumes — the workloads address file 0 of each owner's
/// volume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EdgeTierSpec {
    /// File number the tier applies to. Must be `< edge_files`.
    pub file: u32,
    /// The consistency dial for that file.
    pub tier: ConsistencyTier,
}

/// Platform configuration, defaulting to the paper's Table 1.
///
/// | Quantity | Paper value |
/// |---|---|
/// | NumApplications | 10 |
/// | ClientBufSize | 25% of DB |
/// | ServerBufSize | 50% of DB |
/// | PeerServerBufSize | 25% of DB |
/// | PageSize | 4096 bytes |
/// | DatabaseSize | 11 250 pages (45 MB) |
/// | ObjectsPerPage | 20 |
///
/// # Examples
///
/// ```
/// # use pscc_common::SystemConfig;
/// let cfg = SystemConfig::paper();
/// assert_eq!(cfg.database_pages, 11_250);
/// assert_eq!(cfg.client_buf_pages(), 2_812);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of concurrent application programs.
    pub num_applications: u32,
    /// Size of the database in pages.
    pub database_pages: u32,
    /// Client cache size as a fraction of the database.
    pub client_buf_frac: f64,
    /// Server cache size as a fraction of the database.
    pub server_buf_frac: f64,
    /// Peer-server cache size as a fraction of the database (used when
    /// every node plays both roles).
    pub peer_buf_frac: f64,
    /// Page size in bytes.
    pub page_size: u32,
    /// Objects per page.
    pub objects_per_page: u16,
    /// Which consistency protocol to run.
    pub protocol: Protocol,
    /// Initial lock-wait timeout, before enough waits have been observed
    /// to adapt (paper §5.5 adapts it to 1.5 × (mean + stddev)).
    pub initial_lock_timeout: Duration,
    /// Multiplier applied to the adaptive timeout estimate (paper: 1.5).
    pub timeout_multiplier: f64,
    /// Lower clamp on the adaptive lock-wait timeout. Chaos tests tighten
    /// this far below the default so orphan detection fires quickly.
    pub lock_timeout_floor: Duration,
    /// Upper clamp on the adaptive lock-wait timeout.
    pub lock_timeout_ceiling: Duration,
    /// Whether servers arm per-client lease timers and declare a client
    /// dead when its lease expires without a heartbeat. Off by default so
    /// failure-free workloads are byte-for-byte unchanged.
    pub leases_enabled: bool,
    /// How often a client sends a heartbeat to each server it talks to.
    pub heartbeat_interval: Duration,
    /// How long a server waits past the last heartbeat before declaring
    /// the client crashed. Must comfortably exceed `heartbeat_interval`.
    pub lease_duration: Duration,
    /// Bound on how long an owner waits for a callback response before
    /// treating the unresponsive client as crashed (only when leases are
    /// enabled; complements the lease timer for clients that heartbeat
    /// but wedge mid-callback).
    pub callback_response_timeout: Duration,
    /// First retry delay for a failed TCP connect/write; doubles each
    /// attempt up to `net_backoff_max`.
    pub net_backoff_base: Duration,
    /// Ceiling on the exponential reconnect backoff.
    pub net_backoff_max: Duration,
    /// Connect/write attempts before the transport gives up on a send.
    pub net_max_retries: u32,
    /// Capacity of each bounded transport mailbox (per lane). Sized so
    /// failure-free workloads never block on it; overload tests shrink
    /// it to exercise backpressure.
    pub mailbox_capacity: u32,
    /// Per-owner request credits a client starts with. A credit is
    /// consumed by each data/lock request on the wire and returned by
    /// its reply; at zero the client queues locally instead of sending.
    pub fetch_credits: u32,
    /// Cap on concurrently admitted remote data requests at a server.
    /// Beyond it, new requests are answered with `Busy { retry_after }`
    /// and retried by the client with exponential backoff.
    pub admission_cap: u32,
    /// The `retry_after` hint a shed request carries back to the client
    /// (base of its exponential, jittered backoff).
    pub busy_retry_hint: Duration,
    /// Arm the callback-response bound even when leases are disabled, so
    /// one stalled client cannot wedge a callback fan-out for everyone
    /// else (the slow-peer bypass). Off by default: failure-free runs
    /// stay byte-for-byte unchanged.
    pub slow_peer_bypass: bool,
    /// Number of files the edge tier map may address (file numbers
    /// `0..edge_files`). The seed workloads use a single file per
    /// volume, so the default is 1.
    pub edge_files: u32,
    /// Per-file consistency tiers for edge sites. Files not listed are
    /// `Strict`. Empty by default: no edge machinery arms and every
    /// read takes the serializable path, byte-for-byte unchanged.
    pub edge_tiers: Vec<EdgeTierSpec>,
}

/// A knob combination [`SystemConfig::validate`] rejects: each variant is a
/// configuration that would not crash at construction time but would wedge,
/// deadlock, or silently misbehave at runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `admission_cap == 0`: every remote data request would be shed with
    /// `Busy` forever and no transaction could ever fetch remote data.
    ZeroAdmissionCap,
    /// `fetch_credits == 0`: clients could never put a data request on the
    /// wire — all work queues locally and the cluster is silently idle.
    ZeroFetchCredits,
    /// `mailbox_capacity` below the consistency-lane minimum. The lossless
    /// lane must absorb at least a small burst of callbacks/commit/2PC
    /// traffic per peer or the transport blocks senders into a cycle.
    MailboxBelowConsistencyMinimum { capacity: u32, minimum: u32 },
    /// `lock_timeout_floor > lock_timeout_ceiling`: the adaptive clamp is
    /// empty and the timeout oscillates between contradictory bounds.
    TimeoutFloorAboveCeiling { floor: Duration, ceiling: Duration },
    /// `leases_enabled` with `lease_duration <= heartbeat_interval`: every
    /// lease would expire before its renewing heartbeat can arrive, so the
    /// cluster declares healthy peers dead in a loop.
    LeaseWithinHeartbeat {
        lease: Duration,
        heartbeat: Duration,
    },
    /// `net_backoff_base > net_backoff_max`: the exponential reconnect
    /// schedule is inverted and the clamp produces a zero-width range.
    BackoffBaseAboveMax { base: Duration, max: Duration },
    /// `busy_retry_hint == 0`: shed requests would retry immediately,
    /// turning admission control into a hot spin loop instead of backoff.
    ZeroBusyRetryHint,
    /// `timeout_multiplier` is not a positive finite number, so the
    /// adaptive lock-timeout estimate collapses to zero or NaN.
    NonPositiveTimeoutMultiplier { value: f64 },
    /// A structural size knob (`num_applications`, `database_pages`,
    /// `objects_per_page`, or `page_size`) is zero / too small to hold a
    /// single object.
    DegenerateSize { what: &'static str },
    /// A buffer fraction is outside `[0, 1]` or not finite.
    BufFracOutOfRange { what: &'static str, value: f64 },
    /// An edge tier carries a zero TTL: every copy would be stale the
    /// instant it arrives and the edge degenerates to fetch-through on
    /// every read while still paying the subscription machinery.
    ZeroTierTtl { file: u32 },
    /// An edge tier's TTL exceeds [`MAX_TIER_TTL`]: a bound that long is
    /// almost certainly a unit mistake, and a watch severed under it
    /// would serve hour-old data while claiming to be "bounded".
    TierTtlAboveMax { file: u32, ttl: Duration },
    /// A `WatchBased` tier with a zero `fallback_ttl`: the moment a
    /// partition or owner crash severs the watch, the edge would have no
    /// bound to degrade to and could never answer another read.
    WatchWithoutFallback { file: u32 },
    /// A tier names a file number outside `0..edge_files` — it would
    /// silently never match any page and the operator's intent is lost.
    TierOnUnknownFile { file: u32, edge_files: u32 },
    /// Two tier entries name the same file; which one wins would depend
    /// on map-insertion order.
    DuplicateTierFile { file: u32 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroAdmissionCap => {
                write!(f, "admission_cap must be > 0 (0 sheds every data request forever)")
            }
            ConfigError::ZeroFetchCredits => {
                write!(f, "fetch_credits must be > 0 (0 queues every request locally forever)")
            }
            ConfigError::MailboxBelowConsistencyMinimum { capacity, minimum } => write!(
                f,
                "mailbox_capacity {capacity} is below the consistency-lane minimum {minimum}"
            ),
            ConfigError::TimeoutFloorAboveCeiling { floor, ceiling } => write!(
                f,
                "lock_timeout_floor ({floor:?}) exceeds lock_timeout_ceiling ({ceiling:?})"
            ),
            ConfigError::LeaseWithinHeartbeat { lease, heartbeat } => write!(
                f,
                "lease_duration ({lease:?}) must exceed heartbeat_interval ({heartbeat:?}) when leases are enabled"
            ),
            ConfigError::BackoffBaseAboveMax { base, max } => write!(
                f,
                "net_backoff_base ({base:?}) exceeds net_backoff_max ({max:?})"
            ),
            ConfigError::ZeroBusyRetryHint => {
                write!(f, "busy_retry_hint must be > 0 (0 spins on Busy instead of backing off)")
            }
            ConfigError::NonPositiveTimeoutMultiplier { value } => {
                write!(f, "timeout_multiplier must be positive and finite, got {value}")
            }
            ConfigError::DegenerateSize { what } => {
                write!(f, "{what} is zero or too small to be usable")
            }
            ConfigError::BufFracOutOfRange { what, value } => {
                write!(f, "{what} must lie in [0, 1], got {value}")
            }
            ConfigError::ZeroTierTtl { file } => {
                write!(f, "edge tier for file {file} has a zero TTL (every copy would be instantly stale)")
            }
            ConfigError::TierTtlAboveMax { file, ttl } => write!(
                f,
                "edge tier for file {file} has TTL {ttl} above the {MAX_TIER_TTL} maximum (likely a unit mistake)"
            ),
            ConfigError::WatchWithoutFallback { file } => write!(
                f,
                "watch-based tier for file {file} needs a nonzero fallback_ttl to degrade to when the watch is severed"
            ),
            ConfigError::TierOnUnknownFile { file, edge_files } => write!(
                f,
                "edge tier names unknown file {file} (edge_files = {edge_files})"
            ),
            ConfigError::DuplicateTierFile { file } => {
                write!(f, "file {file} appears in more than one edge tier entry")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Smallest mailbox the consistency lane tolerates: room for a burst of
/// callback + commit + liveness control frames from one peer without
/// blocking the sender (see `ConfigError::MailboxBelowConsistencyMinimum`).
pub const MIN_MAILBOX_CAPACITY: u32 = 4;

/// Largest staleness bound an edge tier may declare (one hour of
/// virtual time). Bounds past this are treated as configuration
/// mistakes by [`SystemConfig::validate`], not tuning choices.
pub const MAX_TIER_TTL: Duration = Duration::from_secs(3_600);

impl SystemConfig {
    /// The configuration of the paper's Table 1.
    pub fn paper() -> Self {
        Self {
            num_applications: 10,
            database_pages: 11_250,
            client_buf_frac: 0.25,
            server_buf_frac: 0.50,
            peer_buf_frac: 0.25,
            page_size: 4_096,
            objects_per_page: 20,
            protocol: Protocol::PsAa,
            initial_lock_timeout: Duration::from_millis(2_000),
            timeout_multiplier: 1.5,
            lock_timeout_floor: Duration::from_millis(50),
            lock_timeout_ceiling: Duration::from_secs(30),
            leases_enabled: false,
            heartbeat_interval: Duration::from_millis(500),
            lease_duration: Duration::from_millis(2_000),
            callback_response_timeout: Duration::from_secs(10),
            net_backoff_base: Duration::from_millis(10),
            net_backoff_max: Duration::from_millis(1_000),
            net_max_retries: 5,
            mailbox_capacity: 4_096,
            fetch_credits: 64,
            admission_cap: 256,
            busy_retry_hint: Duration::from_millis(10),
            slow_peer_bypass: false,
            edge_files: 1,
            edge_tiers: Vec::new(),
        }
    }

    /// A scaled-down configuration for fast tests: same shape, ~1/25 the
    /// data.
    pub fn small() -> Self {
        Self {
            num_applications: 4,
            database_pages: 450,
            page_size: 1_024,
            objects_per_page: 10,
            ..Self::paper()
        }
    }

    /// Client cache capacity in pages.
    pub fn client_buf_pages(&self) -> u32 {
        (self.database_pages as f64 * self.client_buf_frac) as u32
    }

    /// Server cache capacity in pages.
    pub fn server_buf_pages(&self) -> u32 {
        (self.database_pages as f64 * self.server_buf_frac) as u32
    }

    /// Peer-server cache capacity in pages.
    pub fn peer_buf_pages(&self) -> u32 {
        (self.database_pages as f64 * self.peer_buf_frac) as u32
    }

    /// Object payload size in bytes such that `objects_per_page` objects
    /// plus slot overhead fit on one page.
    pub fn object_size(&self) -> u32 {
        // Reserve ~64 bytes of header and 8 bytes of slot per object.
        let usable = self.page_size.saturating_sub(64) / self.objects_per_page as u32;
        usable.saturating_sub(8).max(8)
    }

    /// Reject knob combinations that would not fail at construction but
    /// would wedge or misbehave at runtime (latent deadlocks, hot spins,
    /// empty clamp ranges). Entry points — the testkit `Cluster`, the
    /// threaded harness, the simulation builder, and the `repro` binary —
    /// call this before instantiating any site.
    ///
    /// # Examples
    ///
    /// ```
    /// # use pscc_common::SystemConfig;
    /// assert!(SystemConfig::paper().validate().is_ok());
    /// let mut bad = SystemConfig::small();
    /// bad.admission_cap = 0;
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.admission_cap == 0 {
            return Err(ConfigError::ZeroAdmissionCap);
        }
        if self.fetch_credits == 0 {
            return Err(ConfigError::ZeroFetchCredits);
        }
        if self.mailbox_capacity < MIN_MAILBOX_CAPACITY {
            return Err(ConfigError::MailboxBelowConsistencyMinimum {
                capacity: self.mailbox_capacity,
                minimum: MIN_MAILBOX_CAPACITY,
            });
        }
        if self.lock_timeout_floor > self.lock_timeout_ceiling {
            return Err(ConfigError::TimeoutFloorAboveCeiling {
                floor: self.lock_timeout_floor,
                ceiling: self.lock_timeout_ceiling,
            });
        }
        if self.leases_enabled && self.lease_duration <= self.heartbeat_interval {
            return Err(ConfigError::LeaseWithinHeartbeat {
                lease: self.lease_duration,
                heartbeat: self.heartbeat_interval,
            });
        }
        if self.net_backoff_base > self.net_backoff_max {
            return Err(ConfigError::BackoffBaseAboveMax {
                base: self.net_backoff_base,
                max: self.net_backoff_max,
            });
        }
        if self.busy_retry_hint == Duration::ZERO {
            return Err(ConfigError::ZeroBusyRetryHint);
        }
        if !self.timeout_multiplier.is_finite() || self.timeout_multiplier <= 0.0 {
            return Err(ConfigError::NonPositiveTimeoutMultiplier {
                value: self.timeout_multiplier,
            });
        }
        if self.num_applications == 0 {
            return Err(ConfigError::DegenerateSize {
                what: "num_applications",
            });
        }
        if self.database_pages == 0 {
            return Err(ConfigError::DegenerateSize {
                what: "database_pages",
            });
        }
        if self.objects_per_page == 0 {
            return Err(ConfigError::DegenerateSize {
                what: "objects_per_page",
            });
        }
        // One object plus its slot plus the page header must fit.
        if self.page_size < 64 + 8 + 8 {
            return Err(ConfigError::DegenerateSize { what: "page_size" });
        }
        for (what, value) in [
            ("client_buf_frac", self.client_buf_frac),
            ("server_buf_frac", self.server_buf_frac),
            ("peer_buf_frac", self.peer_buf_frac),
        ] {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                return Err(ConfigError::BufFracOutOfRange { what, value });
            }
        }
        let mut tiered_files = std::collections::HashSet::new();
        for spec in &self.edge_tiers {
            if spec.file >= self.edge_files {
                return Err(ConfigError::TierOnUnknownFile {
                    file: spec.file,
                    edge_files: self.edge_files,
                });
            }
            if !tiered_files.insert(spec.file) {
                return Err(ConfigError::DuplicateTierFile { file: spec.file });
            }
            match spec.tier {
                ConsistencyTier::Strict => {}
                ConsistencyTier::BoundedStale { ttl } => {
                    if ttl == Duration::ZERO {
                        return Err(ConfigError::ZeroTierTtl { file: spec.file });
                    }
                    if ttl > MAX_TIER_TTL {
                        return Err(ConfigError::TierTtlAboveMax {
                            file: spec.file,
                            ttl,
                        });
                    }
                }
                ConsistencyTier::WatchBased { fallback_ttl } => {
                    if fallback_ttl == Duration::ZERO {
                        return Err(ConfigError::WatchWithoutFallback { file: spec.file });
                    }
                    if fallback_ttl > MAX_TIER_TTL {
                        return Err(ConfigError::TierTtlAboveMax {
                            file: spec.file,
                            ttl: fallback_ttl,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The consistency tier of `file`, defaulting to `Strict` for files
    /// with no explicit entry.
    pub fn tier_of(&self, file: u32) -> ConsistencyTier {
        self.edge_tiers
            .iter()
            .find(|s| s.file == file)
            .map(|s| s.tier)
            .unwrap_or(ConsistencyTier::Strict)
    }

    /// A deterministic fingerprint of the tier map, used by the control
    /// plane to observe whether a site has converged on the desired
    /// tiers without shipping the whole map in every probe.
    pub fn tiers_fingerprint(&self) -> u64 {
        tiers_fingerprint(self.edge_tiers.iter().copied())
    }
}

/// FNV-1a over a canonically sorted `(file, tier)` list. `Strict`
/// entries are skipped so "no entry" and "explicit Strict" fingerprint
/// identically (they behave identically).
pub fn tiers_fingerprint<I: IntoIterator<Item = EdgeTierSpec>>(tiers: I) -> u64 {
    let mut entries: Vec<(u32, u64, u64)> = tiers
        .into_iter()
        .filter(|s| s.tier.edge_cacheable())
        .map(|s| {
            let (kind, ttl) = match s.tier {
                ConsistencyTier::Strict => unreachable!(),
                ConsistencyTier::BoundedStale { ttl } => (1u64, ttl.as_micros()),
                ConsistencyTier::WatchBased { fallback_ttl } => (2u64, fallback_ttl.as_micros()),
            };
            (s.file, kind, ttl)
        })
        .collect();
    entries.sort_unstable();
    entries.dedup();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (file, kind, ttl) in entries {
        for word in [file as u64, kind, ttl] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    h
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_values() {
        let c = SystemConfig::paper();
        assert_eq!(c.num_applications, 10);
        assert_eq!(c.page_size, 4_096);
        assert_eq!(c.objects_per_page, 20);
        assert_eq!(c.server_buf_pages(), 5_625);
        assert_eq!(c.peer_buf_pages(), 2_812);
        // 45 MB database.
        assert_eq!(c.database_pages as u64 * c.page_size as u64, 46_080_000);
    }

    #[test]
    fn object_size_fits_on_page() {
        let c = SystemConfig::paper();
        let per_obj = c.object_size() + 8;
        assert!(per_obj * c.objects_per_page as u32 + 64 <= c.page_size);
        let s = SystemConfig::small();
        assert!((s.object_size() + 8) * s.objects_per_page as u32 + 64 <= s.page_size);
    }

    #[test]
    fn failure_knob_defaults_preserve_legacy_behavior() {
        let c = SystemConfig::paper();
        assert!(!c.leases_enabled);
        assert_eq!(c.lock_timeout_floor, Duration::from_millis(50));
        assert_eq!(c.lock_timeout_ceiling, Duration::from_secs(30));
        assert!(c.lease_duration > c.heartbeat_interval);
        assert!(c.net_backoff_base <= c.net_backoff_max);
        // small() inherits the failure knobs from paper().
        assert_eq!(SystemConfig::small().lease_duration, c.lease_duration);
    }

    #[test]
    fn overload_knob_defaults_preserve_legacy_behavior() {
        let c = SystemConfig::paper();
        // Credits/admission far above what the paper workloads generate
        // (10 applications, one outstanding request each), so the seed
        // experiments never stall, shed, or block on a mailbox.
        assert!(c.fetch_credits > c.num_applications);
        assert!(c.admission_cap > c.num_applications);
        assert!(c.mailbox_capacity >= c.admission_cap);
        assert!(!c.slow_peer_bypass);
        assert!(c.busy_retry_hint < c.initial_lock_timeout);
        // small() inherits the overload knobs from paper().
        assert_eq!(SystemConfig::small().admission_cap, c.admission_cap);
    }

    #[test]
    fn validate_accepts_shipped_configs() {
        assert_eq!(SystemConfig::paper().validate(), Ok(()));
        assert_eq!(SystemConfig::small().validate(), Ok(()));
        // The chaos thundering-herd config: tiny but legal overload knobs.
        let mut herd = SystemConfig::small();
        herd.admission_cap = 2;
        herd.fetch_credits = 1;
        assert_eq!(herd.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_latent_deadlocks() {
        let base = SystemConfig::small;

        let mut c = base();
        c.admission_cap = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroAdmissionCap));

        let mut c = base();
        c.fetch_credits = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroFetchCredits));

        let mut c = base();
        c.mailbox_capacity = MIN_MAILBOX_CAPACITY - 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::MailboxBelowConsistencyMinimum { .. })
        ));

        let mut c = base();
        c.lock_timeout_floor = Duration::from_secs(60);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TimeoutFloorAboveCeiling { .. })
        ));

        let mut c = base();
        c.leases_enabled = true;
        c.lease_duration = c.heartbeat_interval;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::LeaseWithinHeartbeat { .. })
        ));
        // Leases off: the same pair is fine because no lease timer arms.
        c.leases_enabled = false;
        assert_eq!(c.validate(), Ok(()));

        let mut c = base();
        c.net_backoff_base = Duration::from_secs(10);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BackoffBaseAboveMax { .. })
        ));

        let mut c = base();
        c.busy_retry_hint = Duration::ZERO;
        assert_eq!(c.validate(), Err(ConfigError::ZeroBusyRetryHint));

        let mut c = base();
        c.timeout_multiplier = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositiveTimeoutMultiplier { .. })
        ));

        let mut c = base();
        c.database_pages = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::DegenerateSize { .. })
        ));

        let mut c = base();
        c.server_buf_frac = 1.5;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::BufFracOutOfRange { .. })
        ));
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("server_buf_frac"));
    }

    #[test]
    fn validate_rejects_bad_edge_tiers() {
        let base = SystemConfig::small;

        let mut c = base();
        c.edge_tiers = vec![EdgeTierSpec {
            file: 0,
            tier: ConsistencyTier::BoundedStale {
                ttl: Duration::ZERO,
            },
        }];
        assert_eq!(c.validate(), Err(ConfigError::ZeroTierTtl { file: 0 }));

        let mut c = base();
        c.edge_tiers = vec![EdgeTierSpec {
            file: 0,
            tier: ConsistencyTier::BoundedStale {
                ttl: Duration::from_secs(100_000),
            },
        }];
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TierTtlAboveMax { file: 0, .. })
        ));

        let mut c = base();
        c.edge_tiers = vec![EdgeTierSpec {
            file: 0,
            tier: ConsistencyTier::WatchBased {
                fallback_ttl: Duration::ZERO,
            },
        }];
        assert_eq!(
            c.validate(),
            Err(ConfigError::WatchWithoutFallback { file: 0 })
        );

        let mut c = base();
        c.edge_tiers = vec![EdgeTierSpec {
            file: 7,
            tier: ConsistencyTier::BoundedStale {
                ttl: Duration::from_millis(100),
            },
        }];
        assert_eq!(
            c.validate(),
            Err(ConfigError::TierOnUnknownFile {
                file: 7,
                edge_files: 1
            })
        );

        let mut c = base();
        c.edge_files = 2;
        let spec = EdgeTierSpec {
            file: 1,
            tier: ConsistencyTier::WatchBased {
                fallback_ttl: Duration::from_millis(250),
            },
        };
        c.edge_tiers = vec![spec, spec];
        assert_eq!(
            c.validate(),
            Err(ConfigError::DuplicateTierFile { file: 1 })
        );

        // A well-formed tier map passes, and tier_of falls back to Strict.
        let mut c = base();
        c.edge_tiers = vec![EdgeTierSpec {
            file: 0,
            tier: ConsistencyTier::BoundedStale {
                ttl: Duration::from_millis(100),
            },
        }];
        assert_eq!(c.validate(), Ok(()));
        assert!(c.tier_of(0).edge_cacheable());
        assert_eq!(c.tier_of(3), ConsistencyTier::Strict);
    }

    #[test]
    fn tiers_fingerprint_is_order_insensitive_and_strict_transparent() {
        let bs = |file| EdgeTierSpec {
            file,
            tier: ConsistencyTier::BoundedStale {
                ttl: Duration::from_millis(50),
            },
        };
        let strict = EdgeTierSpec {
            file: 9,
            tier: ConsistencyTier::Strict,
        };
        let a = tiers_fingerprint([bs(0), bs(1)]);
        let b = tiers_fingerprint([bs(1), bs(0), strict]);
        assert_eq!(a, b);
        assert_ne!(a, tiers_fingerprint([bs(0)]));
        // Empty map and all-Strict map fingerprint identically.
        assert_eq!(tiers_fingerprint([]), tiers_fingerprint([strict]));
    }

    #[test]
    fn protocol_flags() {
        assert!(!Protocol::Ps.object_level());
        assert!(Protocol::PsOa.object_level() && !Protocol::PsOa.adaptive_locking());
        assert!(Protocol::PsAa.object_level() && Protocol::PsAa.adaptive_locking());
        assert_eq!(format!("{}", Protocol::PsOa), "PS-OA");
    }
}
