//! Identifiers for sites, applications, transactions, and the four-level
//! locking hierarchy (volume / file / page / object).
//!
//! Every identifier is a plain-old-data newtype or small struct so that it
//! can be used as a `HashMap`/`BTreeMap` key, shipped over the wire with
//! serde, and printed in traces. A [`LockableId`] is the sum of the four
//! hierarchy levels and knows its own [`parent`](LockableId::parent), which
//! is what the hierarchical lock manager walks when acquiring intention
//! locks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A disk volume. Each volume is owned and managed by exactly one peer
/// server (paper §3.1).
///
/// # Examples
///
/// ```
/// # use pscc_common::VolId;
/// let v = VolId(3);
/// assert_eq!(format!("{v}"), "vol3");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct VolId(pub u32);

impl fmt::Display for VolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

/// A file within a volume. Files group pages and are a lockable granule.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct FileId {
    /// Owning volume.
    pub vol: VolId,
    /// File number unique within the volume.
    pub file: u32,
}

impl FileId {
    /// Creates a file identifier.
    pub fn new(vol: VolId, file: u32) -> Self {
        Self { vol, file }
    }
}

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.f{}", self.vol, self.file)
    }
}

/// A page within a file. Pages are the unit of data transfer, client
/// caching, and (for the `PS` protocol) concurrency control.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PageId {
    /// Owning file (which in turn names the owning volume).
    pub file: FileId,
    /// Page number unique within the file.
    pub page: u32,
}

impl PageId {
    /// Creates a page identifier.
    pub fn new(file: FileId, page: u32) -> Self {
        Self { file, page }
    }

    /// The volume this page ultimately belongs to.
    pub fn vol(&self) -> VolId {
        self.file.vol
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.p{}", self.file, self.page)
    }
}

/// Slot number reserved for the per-page *dummy object* used by
/// hierarchical callbacks (paper §4.3.2). Real objects always use slots
/// strictly below this value.
pub const DUMMY_SLOT: u16 = u16::MAX;

/// An object identifier: a page plus a slot within the page.
///
/// The dummy object of page `p` is `Oid::dummy(p)`; it exists only as a
/// lockable/available granule, never as stored bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Oid {
    /// Page holding the object.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl Oid {
    /// Creates an object identifier.
    pub fn new(page: PageId, slot: u16) -> Self {
        Self { page, slot }
    }

    /// The reserved dummy object of `page` (paper §4.3.2).
    pub fn dummy(page: PageId) -> Self {
        Self {
            page,
            slot: DUMMY_SLOT,
        }
    }

    /// Whether this is a page's reserved dummy object.
    pub fn is_dummy(&self) -> bool {
        self.slot == DUMMY_SLOT
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_dummy() {
            write!(f, "{}.dummy", self.page)
        } else {
            write!(f, "{}.o{}", self.page, self.slot)
        }
    }
}

/// A peer-server site. In client-server configuration one site owns the
/// whole database and the others act as (multithreaded) clients; in
/// peer-servers configuration every site owns a partition.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An application program instance (the paper runs ten of them).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// A globally unique transaction identifier: the site where the
/// transaction originates plus a sequence number unique within that site
/// (paper §4, notation). The sequence number doubles as the transaction's
/// age for victim selection (lower = older).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TxnId {
    /// Home site (where the master thread runs).
    pub site: SiteId,
    /// Per-site sequence number; globally usable as an age when combined
    /// with the site id for tie-breaking.
    pub seq: u64,
}

impl TxnId {
    /// Creates a transaction id.
    pub fn new(site: SiteId, seq: u64) -> Self {
        Self { site, seq }
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}.{}", self.site.0, self.seq)
    }
}

/// The level of a granule in the locking hierarchy, coarsest first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum LockLevel {
    /// A whole disk volume.
    #[default]
    Volume,
    /// A file of pages.
    File,
    /// A single page.
    Page,
    /// A single object within a page.
    Object,
}

impl fmt::Display for LockLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockLevel::Volume => "volume",
            LockLevel::File => "file",
            LockLevel::Page => "page",
            LockLevel::Object => "object",
        };
        f.write_str(s)
    }
}

/// Any granule that can be locked: one of the four hierarchy levels.
///
/// # Examples
///
/// ```
/// # use pscc_common::{LockableId, Oid, PageId, FileId, VolId, LockLevel};
/// let oid = Oid::new(PageId::new(FileId::new(VolId(0), 1), 2), 3);
/// let id = LockableId::from(oid);
/// assert_eq!(id.level(), LockLevel::Object);
/// let ancestors: Vec<_> = id.ancestors().collect();
/// assert_eq!(ancestors.len(), 3); // page, file, volume
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LockableId {
    /// A volume granule.
    Volume(VolId),
    /// A file granule.
    File(FileId),
    /// A page granule.
    Page(PageId),
    /// An object granule.
    Object(Oid),
}

impl LockableId {
    /// The hierarchy level of this granule.
    pub fn level(&self) -> LockLevel {
        match self {
            LockableId::Volume(_) => LockLevel::Volume,
            LockableId::File(_) => LockLevel::File,
            LockableId::Page(_) => LockLevel::Page,
            LockableId::Object(_) => LockLevel::Object,
        }
    }

    /// The immediate parent granule, or `None` for a volume.
    pub fn parent(&self) -> Option<LockableId> {
        match self {
            LockableId::Volume(_) => None,
            LockableId::File(f) => Some(LockableId::Volume(f.vol)),
            LockableId::Page(p) => Some(LockableId::File(p.file)),
            LockableId::Object(o) => Some(LockableId::Page(o.page)),
        }
    }

    /// Iterator over ancestors from the immediate parent up to the volume.
    pub fn ancestors(&self) -> Ancestors {
        Ancestors {
            next: self.parent(),
        }
    }

    /// The path from the volume down to (and including) this granule —
    /// the order in which the hierarchical lock manager acquires locks.
    pub fn path_from_root(&self) -> Vec<LockableId> {
        let mut path: Vec<LockableId> = self.ancestors().collect();
        path.reverse();
        path.push(*self);
        path
    }
}

impl From<VolId> for LockableId {
    fn from(v: VolId) -> Self {
        LockableId::Volume(v)
    }
}
impl From<FileId> for LockableId {
    fn from(f: FileId) -> Self {
        LockableId::File(f)
    }
}
impl From<PageId> for LockableId {
    fn from(p: PageId) -> Self {
        LockableId::Page(p)
    }
}
impl From<Oid> for LockableId {
    fn from(o: Oid) -> Self {
        LockableId::Object(o)
    }
}

impl fmt::Display for LockableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockableId::Volume(v) => write!(f, "{v}"),
            LockableId::File(x) => write!(f, "{x}"),
            LockableId::Page(p) => write!(f, "{p}"),
            LockableId::Object(o) => write!(f, "{o}"),
        }
    }
}

/// Iterator over a granule's ancestors, produced by
/// [`LockableId::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors {
    next: Option<LockableId>,
}

impl Iterator for Ancestors {
    type Item = LockableId;

    fn next(&mut self) -> Option<LockableId> {
        let cur = self.next.take();
        if let Some(c) = cur {
            self.next = c.parent();
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oid() -> Oid {
        Oid::new(PageId::new(FileId::new(VolId(7), 3), 11), 4)
    }

    #[test]
    fn parents_walk_up_the_hierarchy() {
        let o = LockableId::from(oid());
        let p = o.parent().unwrap();
        let f = p.parent().unwrap();
        let v = f.parent().unwrap();
        assert_eq!(p.level(), LockLevel::Page);
        assert_eq!(f.level(), LockLevel::File);
        assert_eq!(v.level(), LockLevel::Volume);
        assert_eq!(v.parent(), None);
    }

    #[test]
    fn path_from_root_is_top_down() {
        let o = LockableId::from(oid());
        let path = o.path_from_root();
        assert_eq!(path.len(), 4);
        assert_eq!(path[0].level(), LockLevel::Volume);
        assert_eq!(path[3], o);
    }

    #[test]
    fn levels_are_ordered_coarse_to_fine() {
        assert!(LockLevel::Volume < LockLevel::File);
        assert!(LockLevel::File < LockLevel::Page);
        assert!(LockLevel::Page < LockLevel::Object);
    }

    #[test]
    fn dummy_object_is_distinct_from_real_slots() {
        let p = oid().page;
        let d = Oid::dummy(p);
        assert!(d.is_dummy());
        assert_ne!(d, Oid::new(p, 0));
        assert_eq!(LockableId::from(d).parent(), Some(LockableId::Page(p)));
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        assert_eq!(format!("{}", oid()), "vol7.f3.p11.o4");
        assert_eq!(format!("{}", TxnId::new(SiteId(2), 9)), "T2.9");
        assert_eq!(format!("{}", Oid::dummy(oid().page)), "vol7.f3.p11.dummy");
    }

    #[test]
    fn txn_age_orders_by_seq_then_site() {
        let older = TxnId::new(SiteId(9), 1);
        let newer = TxnId::new(SiteId(0), 2);
        assert!(older.seq < newer.seq);
    }
}
