//! # pscc-common
//!
//! Shared vocabulary types for the PSCC page-server OODBMS — a from-scratch
//! reproduction of *Zaharioudakis & Carey, "Hierarchical, Adaptive Cache
//! Consistency in a Page Server OODBMS"* (ICDCS 1997 / IEEE TC 47(4) 1998).
//!
//! This crate defines the identifiers for the four-level locking hierarchy
//! (volume / file / page / object), the five multigranularity lock modes
//! (`IS`, `IX`, `SH`, `SIX`, `EX`) together with their compatibility and
//! supremum tables, site and transaction identifiers, virtual time, the
//! protocol selector (`PS`, `PS-OA`, `PS-AA`), and the error types shared by
//! every other crate in the workspace.
//!
//! # Examples
//!
//! ```
//! use pscc_common::{LockMode, Oid, PageId, FileId, VolId, LockableId};
//!
//! assert!(LockMode::Is.compatible(LockMode::Ix));
//! assert!(!LockMode::Sh.compatible(LockMode::Ex));
//! assert_eq!(LockMode::Ix.sup(LockMode::Sh), LockMode::Six);
//!
//! let oid = Oid::new(PageId::new(FileId::new(VolId(1), 2), 7), 3);
//! let page: LockableId = oid.page.into();
//! assert_eq!(LockableId::from(oid).parent(), Some(page));
//! ```

pub mod config;
pub mod error;
pub mod ids;
pub mod lock;
pub mod stats;
pub mod time;
pub mod trace;

pub use config::{
    tiers_fingerprint, ConfigError, ConsistencyTier, EdgeTierSpec, Protocol, SystemConfig,
    MAX_TIER_TTL, MIN_MAILBOX_CAPACITY,
};
pub use error::{AbortReason, PsccError};
pub use ids::{AppId, FileId, LockLevel, LockableId, Oid, PageId, SiteId, TxnId, VolId};
pub use lock::LockMode;
pub use stats::Counters;
pub use time::Duration as SimDuration;
pub use time::Time as SimTime;
pub use trace::{SpanId, Stage, TraceCtx};
