//! The five multigranularity lock modes of Gray's hierarchical locking
//! scheme (paper §4, ref. 12): `IS`, `IX`, `SH`, `SIX`, `EX`, with the
//! standard compatibility matrix and the supremum (least-upper-bound)
//! table used for lock conversions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A multigranularity lock mode.
///
/// Ordering note: the derived `Ord` is *not* the lock-strength lattice
/// (`SH` and `IX` are incomparable); use [`LockMode::sup`] and
/// [`LockMode::covers`] for lattice queries.
///
/// # Examples
///
/// ```
/// # use pscc_common::LockMode;
/// assert!(LockMode::Is.compatible(LockMode::Six));
/// assert!(!LockMode::Six.compatible(LockMode::Six));
/// assert_eq!(LockMode::Sh.sup(LockMode::Ix), LockMode::Six);
/// assert!(LockMode::Ex.covers(LockMode::Sh));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum LockMode {
    /// Intention shared.
    #[default]
    Is,
    /// Intention exclusive.
    Ix,
    /// Shared.
    Sh,
    /// Shared + intention exclusive.
    Six,
    /// Exclusive.
    Ex,
}

impl LockMode {
    /// All modes, in declaration order.
    pub const ALL: [LockMode; 5] = [
        LockMode::Is,
        LockMode::Ix,
        LockMode::Sh,
        LockMode::Six,
        LockMode::Ex,
    ];

    /// Whether two modes held by *different* transactions can coexist.
    ///
    /// The matrix (rows = held, columns = requested):
    ///
    /// |     | IS | IX | SH | SIX | EX |
    /// |-----|----|----|----|-----|----|
    /// | IS  | ✓  | ✓  | ✓  | ✓   | ✗  |
    /// | IX  | ✓  | ✓  | ✗  | ✗   | ✗  |
    /// | SH  | ✓  | ✗  | ✓  | ✗   | ✗  |
    /// | SIX | ✓  | ✗  | ✗  | ✗   | ✗  |
    /// | EX  | ✗  | ✗  | ✗  | ✗   | ✗  |
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        match (self, other) {
            (Is, Ex) | (Ex, Is) => false,
            (Is, _) | (_, Is) => true,
            (Ix, Ix) | (Sh, Sh) => true,
            _ => false,
        }
    }

    /// Least upper bound of two modes in the lock-strength lattice; used
    /// when a transaction converts a lock it already holds.
    pub fn sup(self, other: LockMode) -> LockMode {
        use LockMode::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Is, x) | (x, Is) => x,
            (Ex, _) | (_, Ex) => Ex,
            (Six, _) | (_, Six) => Six,
            (Ix, Sh) | (Sh, Ix) => Six,
            // Remaining pairs are equal-mode, already handled.
            (a, _) => a,
        }
    }

    /// Whether holding `self` implies every right granted by `other`
    /// (i.e. `sup(self, other) == self`).
    pub fn covers(self, other: LockMode) -> bool {
        self.sup(other) == self
    }

    /// Whether this mode permits reading the granule itself (not merely
    /// intent on descendants).
    pub fn is_read(self) -> bool {
        matches!(self, LockMode::Sh | LockMode::Six | LockMode::Ex)
    }

    /// Whether this mode permits writing the granule itself.
    pub fn is_write(self) -> bool {
        matches!(self, LockMode::Ex)
    }

    /// Whether this is an intention mode (`IS`, `IX`, or `SIX`, which
    /// carries intent in addition to `SH`).
    pub fn is_intention(self) -> bool {
        matches!(self, LockMode::Is | LockMode::Ix | LockMode::Six)
    }

    /// The intention mode a request in this mode requires on every
    /// ancestor granule (paper §4: "the lock manager automatically
    /// acquires the appropriate intention mode locks on the ancestors").
    pub fn ancestor_intention(self) -> LockMode {
        match self {
            LockMode::Is | LockMode::Sh => LockMode::Is,
            LockMode::Ix | LockMode::Ex | LockMode::Six => LockMode::Ix,
        }
    }
}

impl fmt::Display for LockMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LockMode::Is => "IS",
            LockMode::Ix => "IX",
            LockMode::Sh => "SH",
            LockMode::Six => "SIX",
            LockMode::Ex => "EX",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::LockMode::{self, *};

    /// The textbook compatibility matrix, row = held, col = requested.
    const MATRIX: [[bool; 5]; 5] = [
        // IS     IX     SH     SIX    EX
        [true, true, true, true, false],     // IS
        [true, true, false, false, false],   // IX
        [true, false, true, false, false],   // SH
        [true, false, false, false, false],  // SIX
        [false, false, false, false, false], // EX
    ];

    #[test]
    fn compatibility_matches_grays_matrix() {
        for (i, held) in LockMode::ALL.iter().enumerate() {
            for (j, req) in LockMode::ALL.iter().enumerate() {
                assert_eq!(held.compatible(*req), MATRIX[i][j], "compat({held}, {req})");
            }
        }
    }

    #[test]
    fn compatibility_is_symmetric() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                assert_eq!(a.compatible(b), b.compatible(a), "sym({a},{b})");
            }
        }
    }

    #[test]
    fn sup_is_commutative_idempotent_and_bounded() {
        for a in LockMode::ALL {
            assert_eq!(a.sup(a), a);
            for b in LockMode::ALL {
                let s = a.sup(b);
                assert_eq!(s, b.sup(a), "comm({a},{b})");
                assert!(s.covers(a), "sup({a},{b})={s} must cover {a}");
                assert!(s.covers(b), "sup({a},{b})={s} must cover {b}");
            }
        }
    }

    #[test]
    fn sup_is_associative() {
        for a in LockMode::ALL {
            for b in LockMode::ALL {
                for c in LockMode::ALL {
                    assert_eq!(a.sup(b).sup(c), a.sup(b.sup(c)));
                }
            }
        }
    }

    #[test]
    fn known_sups() {
        assert_eq!(Ix.sup(Sh), Six);
        assert_eq!(Is.sup(Ex), Ex);
        assert_eq!(Six.sup(Ix), Six);
        assert_eq!(Sh.sup(Ex), Ex);
    }

    #[test]
    fn stronger_mode_is_never_more_compatible() {
        // If s covers w, then anything compatible with s is compatible
        // with w (monotonicity of the matrix along the lattice).
        for w in LockMode::ALL {
            for s in LockMode::ALL {
                if s.covers(w) {
                    for o in LockMode::ALL {
                        if s.compatible(o) {
                            assert!(w.compatible(o), "{s} covers {w} but {w} !compat {o}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ancestor_intentions() {
        assert_eq!(Sh.ancestor_intention(), Is);
        assert_eq!(Is.ancestor_intention(), Is);
        assert_eq!(Ex.ancestor_intention(), Ix);
        assert_eq!(Ix.ancestor_intention(), Ix);
        assert_eq!(Six.ancestor_intention(), Ix);
    }

    #[test]
    fn read_write_predicates() {
        assert!(Sh.is_read() && Six.is_read() && Ex.is_read());
        assert!(!Is.is_read() && !Ix.is_read());
        assert!(Ex.is_write() && !Six.is_write());
        assert!(Is.is_intention() && Ix.is_intention() && Six.is_intention());
        assert!(!Sh.is_intention() && !Ex.is_intention());
    }
}
