//! Counters collected by the engine and aggregated by the experiment
//! harness. The paper's analysis is largely in terms of message counts,
//! I/O counts, and contention events, so these are first-class here.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Event counters for one site (or, summed, for a whole system).
///
/// All fields are public by design: this is a passive, compound record in
/// the C-struct spirit, produced by the engine and consumed by reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Counters {
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted (all reasons).
    pub aborts: u64,
    /// Aborts due to local deadlock victim selection.
    pub deadlock_aborts: u64,
    /// Aborts due to lock-wait timeout.
    pub timeout_aborts: u64,
    /// Messages sent (all kinds).
    pub msgs_sent: u64,
    /// Read (fetch) requests sent to an owner.
    pub read_requests: u64,
    /// Write-permission requests sent to an owner.
    pub write_requests: u64,
    /// Callback requests issued by this site as owner.
    pub callbacks_sent: u64,
    /// Callback requests that found the target page locally unused and
    /// purged the whole page.
    pub callbacks_purged_page: u64,
    /// Callback requests that deescalated to a single object.
    pub callbacks_object_only: u64,
    /// Callback requests that blocked on a local lock.
    pub callbacks_blocked: u64,
    /// Adaptive page locks granted by this site as owner (PS-AA).
    pub adaptive_grants: u64,
    /// Object writes satisfied locally under an adaptive page lock
    /// (server messages saved).
    pub adaptive_hits: u64,
    /// Deescalation requests issued by this site as owner.
    pub deescalations: u64,
    /// Pages shipped to clients.
    pub pages_shipped: u64,
    /// Object reads satisfied from the local cache without any message.
    pub cache_hits: u64,
    /// Object reads that required a fetch.
    pub cache_misses: u64,
    /// Disk reads performed.
    pub disk_reads: u64,
    /// Disk writes performed (including log forces).
    pub disk_writes: u64,
    /// Lock waits that actually blocked.
    pub lock_waits: u64,
    /// Callback race occurrences detected and handled (paper §4.2.4).
    pub callback_races: u64,
    /// Purge races detected (stale purge ignored).
    pub purge_races: u64,
    /// Hierarchical-callback second rounds (second-objective violations,
    /// paper §4.3.2).
    pub callback_redos: u64,
    /// Pages purged from a client cache (evictions + callbacks).
    pub pages_purged: u64,
    /// Client/site crashes detected via lease expiry or callback-response
    /// timeout at an owning server.
    pub crashes_detected: u64,
    /// Orphan transactions aborted on behalf of a crashed client.
    pub orphans_aborted: u64,
    /// Faults injected by the chaos harness (drops, delays, duplicates,
    /// reorders, partitions, crashes) attributed to this site.
    pub faults_injected: u64,
    /// Log records re-applied by restart recovery's redo pass.
    pub recovery_redo_records: u64,
    /// Before-images applied by restart recovery's undo pass.
    pub recovery_undo_records: u64,
    /// Server epoch bumps (one per completed restart recovery).
    pub epoch_bumps: u64,
    /// Remote data requests refused with `Busy` by an overloaded server
    /// (admission control; each is retried by the client).
    pub requests_shed: u64,
    /// Requests a client queued locally because it was out of credits
    /// for the target owner (credit-based flow control).
    pub credits_stalled: u64,
    /// Retries of requests previously shed with `Busy`, after backoff.
    pub busy_retries: u64,
    /// Remote data requests refused because their transaction was
    /// already aborted here (the request was reordered behind its own
    /// abort on a slower transport lane).
    pub stale_requests_refused: u64,
    /// Graceful drains begun at this site (control-plane `DrainReq`).
    pub drains_started: u64,
    /// Graceful drains that reached the drained state (WAL forced, all
    /// admitted work retired) and reported `DrainOk`.
    pub drains_completed: u64,
    /// Ownership migrations begun at this site as the source.
    pub migrations_started: u64,
    /// Ownership migrations whose MigrationCommit record was forced
    /// durable at this site as the source.
    pub migrations_committed: u64,
    /// Ownership migrations rolled back (supervisor abort or crash
    /// before the commit record).
    pub migrations_aborted: u64,
    /// `WrongOwner` redirects this site followed as a client (its layout
    /// was stale and a newer one re-routed the request).
    pub wrong_owner_redirects: u64,
    /// Bytes of page images and copy-table entries shipped to migration
    /// destinations.
    pub transfer_bytes: u64,
    /// Reads answered lock-free from the local edge cache (tiered files
    /// only; `Strict` files never count here).
    pub edge_hits: u64,
    /// Edge reads that fell through to an owner fetch (cold copy,
    /// expired lease, severed watch, or invalidated page).
    pub edge_misses: u64,
    /// Page invalidations published by this site as owner to edge
    /// subscribers on commit (one per page per subscriber).
    pub edge_invalidations: u64,
    /// Edge subscriptions reaped: lease-expired entries collected at
    /// publish time plus subscriptions dropped when their edge site was
    /// declared dead.
    pub edge_subs_reaped: u64,
}

impl AddAssign for Counters {
    fn add_assign(&mut self, o: Counters) {
        self.commits += o.commits;
        self.aborts += o.aborts;
        self.deadlock_aborts += o.deadlock_aborts;
        self.timeout_aborts += o.timeout_aborts;
        self.msgs_sent += o.msgs_sent;
        self.read_requests += o.read_requests;
        self.write_requests += o.write_requests;
        self.callbacks_sent += o.callbacks_sent;
        self.callbacks_purged_page += o.callbacks_purged_page;
        self.callbacks_object_only += o.callbacks_object_only;
        self.callbacks_blocked += o.callbacks_blocked;
        self.adaptive_grants += o.adaptive_grants;
        self.adaptive_hits += o.adaptive_hits;
        self.deescalations += o.deescalations;
        self.pages_shipped += o.pages_shipped;
        self.cache_hits += o.cache_hits;
        self.cache_misses += o.cache_misses;
        self.disk_reads += o.disk_reads;
        self.disk_writes += o.disk_writes;
        self.lock_waits += o.lock_waits;
        self.callback_races += o.callback_races;
        self.purge_races += o.purge_races;
        self.callback_redos += o.callback_redos;
        self.pages_purged += o.pages_purged;
        self.crashes_detected += o.crashes_detected;
        self.orphans_aborted += o.orphans_aborted;
        self.faults_injected += o.faults_injected;
        self.recovery_redo_records += o.recovery_redo_records;
        self.recovery_undo_records += o.recovery_undo_records;
        self.epoch_bumps += o.epoch_bumps;
        self.requests_shed += o.requests_shed;
        self.credits_stalled += o.credits_stalled;
        self.busy_retries += o.busy_retries;
        self.stale_requests_refused += o.stale_requests_refused;
        self.drains_started += o.drains_started;
        self.drains_completed += o.drains_completed;
        self.migrations_started += o.migrations_started;
        self.migrations_committed += o.migrations_committed;
        self.migrations_aborted += o.migrations_aborted;
        self.wrong_owner_redirects += o.wrong_owner_redirects;
        self.transfer_bytes += o.transfer_bytes;
        self.edge_hits += o.edge_hits;
        self.edge_misses += o.edge_misses;
        self.edge_invalidations += o.edge_invalidations;
        self.edge_subs_reaped += o.edge_subs_reaped;
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "commits={} aborts={} (dl={}, to={}) msgs={} reads={} writes={} \
             cb={} (page={}, obj={}, blocked={}, redo={}) adaptive={}/{} deesc={} \
             shipped={} hits={} misses={} io={}r/{}w waits={} races cb={} purge={} \
             crashes={} orphans={} faults={} recovery={}r/{}u epochs={} \
             shed={} stalled={} busy_retries={} drains={}/{} \
             migrations={}/{}/{} redirects={} transfer={}B \
             edge={}h/{}m inval={} subs_reaped={}",
            self.commits,
            self.aborts,
            self.deadlock_aborts,
            self.timeout_aborts,
            self.msgs_sent,
            self.read_requests,
            self.write_requests,
            self.callbacks_sent,
            self.callbacks_purged_page,
            self.callbacks_object_only,
            self.callbacks_blocked,
            self.callback_redos,
            self.adaptive_grants,
            self.adaptive_hits,
            self.deescalations,
            self.pages_shipped,
            self.cache_hits,
            self.cache_misses,
            self.disk_reads,
            self.disk_writes,
            self.lock_waits,
            self.callback_races,
            self.purge_races,
            self.crashes_detected,
            self.orphans_aborted,
            self.faults_injected,
            self.recovery_redo_records,
            self.recovery_undo_records,
            self.epoch_bumps,
            self.requests_shed,
            self.credits_stalled,
            self.busy_retries,
            self.drains_started,
            self.drains_completed,
            self.migrations_started,
            self.migrations_committed,
            self.migrations_aborted,
            self.wrong_owner_redirects,
            self.transfer_bytes,
            self.edge_hits,
            self.edge_misses,
            self.edge_invalidations,
            self.edge_subs_reaped,
        )
    }
}

impl Counters {
    /// Sums an iterator of per-site counters into one record.
    pub fn total<I: IntoIterator<Item = Counters>>(iter: I) -> Counters {
        let mut t = Counters::default();
        for c in iter {
            t += c;
        }
        t
    }

    /// Every field as a `(name, value)` pair, in declaration order. The
    /// metrics exporters and the histogram-vs-counter audit tests iterate
    /// this instead of hard-coding the field list in several places.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u64); 45] {
        [
            ("commits", self.commits),
            ("aborts", self.aborts),
            ("deadlock_aborts", self.deadlock_aborts),
            ("timeout_aborts", self.timeout_aborts),
            ("msgs_sent", self.msgs_sent),
            ("read_requests", self.read_requests),
            ("write_requests", self.write_requests),
            ("callbacks_sent", self.callbacks_sent),
            ("callbacks_purged_page", self.callbacks_purged_page),
            ("callbacks_object_only", self.callbacks_object_only),
            ("callbacks_blocked", self.callbacks_blocked),
            ("adaptive_grants", self.adaptive_grants),
            ("adaptive_hits", self.adaptive_hits),
            ("deescalations", self.deescalations),
            ("pages_shipped", self.pages_shipped),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("disk_reads", self.disk_reads),
            ("disk_writes", self.disk_writes),
            ("lock_waits", self.lock_waits),
            ("callback_races", self.callback_races),
            ("purge_races", self.purge_races),
            ("callback_redos", self.callback_redos),
            ("pages_purged", self.pages_purged),
            ("crashes_detected", self.crashes_detected),
            ("orphans_aborted", self.orphans_aborted),
            ("faults_injected", self.faults_injected),
            ("recovery_redo_records", self.recovery_redo_records),
            ("recovery_undo_records", self.recovery_undo_records),
            ("epoch_bumps", self.epoch_bumps),
            ("requests_shed", self.requests_shed),
            ("credits_stalled", self.credits_stalled),
            ("busy_retries", self.busy_retries),
            ("stale_requests_refused", self.stale_requests_refused),
            ("drains_started", self.drains_started),
            ("drains_completed", self.drains_completed),
            ("migrations_started", self.migrations_started),
            ("migrations_committed", self.migrations_committed),
            ("migrations_aborted", self.migrations_aborted),
            ("wrong_owner_redirects", self.wrong_owner_redirects),
            ("transfer_bytes", self.transfer_bytes),
            ("edge_hits", self.edge_hits),
            ("edge_misses", self.edge_misses),
            ("edge_invalidations", self.edge_invalidations),
            ("edge_subs_reaped", self.edge_subs_reaped),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_sums_fields() {
        let mut a = Counters {
            commits: 1,
            msgs_sent: 5,
            ..Default::default()
        };
        a += Counters {
            commits: 2,
            disk_reads: 3,
            ..Default::default()
        };
        assert_eq!(a.commits, 3);
        assert_eq!(a.msgs_sent, 5);
        assert_eq!(a.disk_reads, 3);
    }

    #[test]
    fn total_of_many() {
        let t = Counters::total((0..4).map(|_| Counters {
            callbacks_sent: 2,
            ..Default::default()
        }));
        assert_eq!(t.callbacks_sent, 8);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Counters::default()).is_empty());
    }

    #[test]
    fn fields_are_unique_and_track_values() {
        let c = Counters {
            pages_purged: 9,
            ..Default::default()
        };
        let fields = c.fields();
        let mut names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fields.len());
        assert_eq!(
            fields.iter().find(|(n, _)| *n == "pages_purged"),
            Some(&("pages_purged", 9))
        );
    }
}
