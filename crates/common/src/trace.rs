//! Causal-tracing vocabulary shared by the engine, the wire codec, and
//! the observability crate.
//!
//! A [`TraceCtx`] is the compact context stamped on every traced
//! protocol message: which transaction the message works for, the site
//! that originated the transaction, and a (span, parent-span) pair that
//! reconstructs the cross-site causal tree — each message hop is one
//! span whose parent is the span the sender was handling when it sent.
//! [`Stage`] names the latency stages the critical-path analyzer
//! attributes commit latency to.

use crate::ids::{SiteId, TxnId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A causal span identifier, unique across the cluster (the allocating
/// site's id is packed into the high bits). `SpanId::NONE` (zero) marks
/// a root span's absent parent.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent parent of a root span.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the absent-parent sentinel.
    #[must_use]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sp{:x}", self.0)
    }
}

/// The compact causal context carried on every traced [`Message`]
/// (`pscc_core::Message::Traced`) and propagated through the engine's
/// lock/callback/fetch/commit/2PC/drain paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceCtx {
    /// The transaction this message works on behalf of.
    pub txn: TxnId,
    /// The site where `txn` originated (its home).
    pub origin: SiteId,
    /// This message hop's span.
    pub span: SpanId,
    /// The span the sender was executing under when it sent this
    /// message ([`SpanId::NONE`] for a transaction's root hop).
    pub parent: SpanId,
}

impl fmt::Display for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txn={} origin={} span={} parent={}",
            self.txn, self.origin, self.span, self.parent
        )
    }
}

/// A latency stage of a transaction's critical path. Engines emit one
/// `StageSample` event per measured interval; the analyzer sweeps the
/// samples into a per-transaction commit-latency attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Blocked in a lock queue (any role).
    LockWait,
    /// A callback fan-out round trip at the owner.
    CallbackRtt,
    /// A page/object fetch round trip at the client.
    FetchRtt,
    /// A commit-path WAL force at an owner.
    WalForce,
    /// 2PC phase one at the home: prepare fan-out to all votes.
    TwopcPrepare,
    /// 2PC phase two at the home: decide fan-out to all acks.
    TwopcDecide,
    /// Waiting in an overload queue: credit stall or busy backoff.
    QueueWait,
    /// Stalled behind an ownership migration: the target range was
    /// frozen (Busy) or mid-re-home (`WrongOwner` redirect + retry).
    MigrationPause,
}

impl Stage {
    /// All stages, in *attribution priority* order: when intervals of
    /// different stages overlap on the critical-path sweep, the
    /// earlier (inner-most) stage wins the overlapped time. A WAL
    /// force inside a 2PC prepare window is attributed to the force,
    /// not double-counted.
    pub const ALL: [Stage; 8] = [
        Stage::WalForce,
        Stage::TwopcDecide,
        Stage::TwopcPrepare,
        Stage::CallbackRtt,
        Stage::FetchRtt,
        Stage::LockWait,
        Stage::QueueWait,
        Stage::MigrationPause,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric/label name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::LockWait => "lock_wait",
            Stage::CallbackRtt => "callback_rtt",
            Stage::FetchRtt => "fetch_rtt",
            Stage::WalForce => "wal_force",
            Stage::TwopcPrepare => "2pc_prepare",
            Stage::TwopcDecide => "2pc_decide",
            Stage::QueueWait => "queue_wait",
            Stage::MigrationPause => "migration_pause",
        }
    }

    /// Dense index (histogram array slot).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::LockWait => 0,
            Stage::CallbackRtt => 1,
            Stage::FetchRtt => 2,
            Stage::WalForce => 3,
            Stage::TwopcPrepare => 4,
            Stage::TwopcDecide => 5,
            Stage::QueueWait => 6,
            Stage::MigrationPause => 7,
        }
    }

    /// Attribution priority: lower wins overlapped time on the sweep.
    #[must_use]
    pub fn priority(self) -> usize {
        Self::ALL
            .iter()
            .position(|s| *s == self)
            .expect("every stage is in ALL")
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tables_agree() {
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        let mut seen = [false; Stage::COUNT];
        for s in Stage::ALL {
            assert!(!seen[s.index()], "duplicate index for {s}");
            seen[s.index()] = true;
            assert_eq!(Stage::ALL[s.priority()], s);
        }
        assert!(seen.iter().all(|b| *b));
    }

    #[test]
    fn span_none_sentinel() {
        assert!(SpanId::NONE.is_none());
        assert!(!SpanId(7).is_none());
        assert_eq!(format!("{}", SpanId(255)), "spff");
    }
}
