//! Error and abort-reason types shared across the workspace.

use crate::ids::{LockableId, Oid, PageId, TxnId};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Why a transaction was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// Chosen as the victim of a locally detected deadlock.
    Deadlock,
    /// A lock wait exceeded the (adaptive) timeout interval — the
    /// mechanism SHORE uses against distributed deadlocks (paper §3.3,
    /// §5.5).
    LockTimeout,
    /// The application requested the abort.
    User,
    /// An internal invariant forced the abort (should not occur; kept for
    /// fault-injection tests).
    Internal,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Deadlock => "deadlock victim",
            AbortReason::LockTimeout => "lock-wait timeout",
            AbortReason::User => "user abort",
            AbortReason::Internal => "internal abort",
        };
        f.write_str(s)
    }
}

/// Errors surfaced by the PSCC crates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PsccError {
    /// A transaction was aborted; the reason says why.
    Aborted {
        /// The aborted transaction.
        txn: TxnId,
        /// Why it was aborted.
        reason: AbortReason,
    },
    /// The referenced transaction is not active at this site.
    UnknownTxn(TxnId),
    /// The referenced object does not exist.
    NoSuchObject(Oid),
    /// The referenced page does not exist.
    NoSuchPage(PageId),
    /// A page has insufficient free space for an insert or a size-growing
    /// update (the caller must forward, paper §4.4).
    PageFull(PageId),
    /// An operation referenced a granule this site does not own.
    NotOwner(LockableId),
    /// An operation was invalid in the current state (e.g. read before
    /// begin); the string names the violated rule.
    InvalidOperation(&'static str),
}

impl fmt::Display for PsccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsccError::Aborted { txn, reason } => write!(f, "transaction {txn} aborted: {reason}"),
            PsccError::UnknownTxn(t) => write!(f, "unknown transaction {t}"),
            PsccError::NoSuchObject(o) => write!(f, "no such object {o}"),
            PsccError::NoSuchPage(p) => write!(f, "no such page {p}"),
            PsccError::PageFull(p) => write!(f, "page {p} has insufficient free space"),
            PsccError::NotOwner(i) => write!(f, "this site does not own {i}"),
            PsccError::InvalidOperation(s) => write!(f, "invalid operation: {s}"),
        }
    }
}

impl Error for PsccError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SiteId;

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<PsccError>();
        let e = PsccError::Aborted {
            txn: TxnId::new(SiteId(1), 2),
            reason: AbortReason::Deadlock,
        };
        assert_eq!(format!("{e}"), "transaction T1.2 aborted: deadlock victim");
    }
}
