//! The observed-state half of the control plane.
//!
//! A [`ClusterView`] is a point-in-time snapshot the harness assembles
//! from signals that already exist: liveness (is the site's process
//! alive), the engine's epoch probe (has a restart recovery completed),
//! the drain-phase probe, and the admission queue depth gauge. The
//! supervisor never inspects a site directly — it only ever sees views.

use pscc_common::{SimTime, SiteId};

/// Where a site stands in the drain lifecycle, as observed. Mirrors
/// `pscc_core::DrainPhase` without depending on the engine crate (the
/// control plane sees phases, not engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SitePhase {
    /// Admitting data requests normally.
    Active,
    /// Drain in progress.
    Draining,
    /// Drain complete; admission closed until undrain or restart.
    Drained,
}

/// Where a site stands in an ownership migration it is driving, as
/// observed. Mirrors the engine's migration phase probe without
/// depending on the engine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationObs {
    /// No migration in flight at this site.
    Idle,
    /// Prepare logged; the source is quiescing the range.
    Preparing,
    /// Range frozen and `MigrateBegin` durable; ready to transfer.
    Prepared,
    /// Page images and copy-table entries are being shipped.
    Transferring,
    /// `MigrateCommit` issued; waiting for the destination to land.
    Committing,
}

/// One site's observed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservedSite {
    /// The site.
    pub site: SiteId,
    /// Whether the site's process is up (liveness signal).
    pub up: bool,
    /// The engine's current epoch (1 at first boot, +1 per recovery).
    /// Meaningless when `up` is false.
    pub epoch: u64,
    /// Drain lifecycle phase. Meaningless when `up` is false.
    pub phase: SitePhase,
    /// Admitted remote data requests (the engine queue-depth gauge).
    pub queue_depth: usize,
    /// The site's ownership-directory layout version (1 at seed; bumped
    /// by every committed or landed migration). Meaningless when `up`
    /// is false.
    pub layout: u64,
    /// Migration phase at this site (as the driving source).
    /// Meaningless when `up` is false.
    pub migration: MigrationObs,
    /// Fingerprint of the site's non-Strict edge-tier map (the engine's
    /// `tiers_fingerprint` probe). The tier rollout compares it against
    /// the manifest's declared rows. Meaningless when `up` is false.
    pub tiers_fp: u64,
}

/// A snapshot of the whole cluster at virtual time `now`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterView {
    /// When the snapshot was taken.
    pub now: SimTime,
    /// Per-site observations (any order; looked up by id).
    pub sites: Vec<ObservedSite>,
}

impl ClusterView {
    /// The observation for `site`, if the view covers it.
    pub fn get(&self, site: SiteId) -> Option<&ObservedSite> {
        self.sites.iter().find(|s| s.site == site)
    }

    /// Sites currently draining (the `sites_draining` gauge).
    pub fn sites_draining(&self) -> u64 {
        self.sites
            .iter()
            .filter(|s| s.up && s.phase == SitePhase::Draining)
            .count() as u64
    }

    /// Sites currently down (the `rolling_unavailable` gauge).
    pub fn sites_down(&self) -> u64 {
        self.sites.iter().filter(|s| !s.up).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_count_phases() {
        let v = ClusterView {
            now: SimTime::ZERO,
            sites: vec![
                ObservedSite {
                    site: SiteId(0),
                    up: true,
                    epoch: 1,
                    phase: SitePhase::Draining,
                    queue_depth: 3,
                    layout: 1,
                    migration: MigrationObs::Idle,
                    tiers_fp: 0,
                },
                ObservedSite {
                    site: SiteId(1),
                    up: false,
                    epoch: 1,
                    phase: SitePhase::Active,
                    queue_depth: 0,
                    layout: 1,
                    migration: MigrationObs::Idle,
                    tiers_fp: 0,
                },
            ],
        };
        assert_eq!(v.sites_draining(), 1);
        assert_eq!(v.sites_down(), 1);
        assert_eq!(v.get(SiteId(1)).map(|s| s.up), Some(false));
        assert!(v.get(SiteId(9)).is_none());
    }
}
