//! # pscc-control
//!
//! The declarative cluster control plane (DESIGN.md §8): a
//! [`ClusterManifest`] describes the *desired* state of a peer-server
//! cluster (which sites exist, whether each should be up, and — for
//! rolling restarts — the minimum epoch each must have been reborn
//! into), and a [`Supervisor`] reconciles it against the *observed*
//! state (a [`ClusterView`] assembled from the engines' liveness
//! signals and probes), emitting a bounded plan of safe steps:
//!
//! ```text
//! Drain → Stop → Restart (Recover + Rejoin) → Undrain
//! ```
//!
//! At most `max_unavailable` sites are in flight at a time; every step
//! carries a deadline, a bounded retry budget with widening backoff,
//! and a rollback path (undrain what was draining, restart what was
//! stopped) if the cluster refuses to converge.
//!
//! The crate is sans-IO in the same spirit as `pscc-core`: the
//! supervisor never talks to a network or clock. Harnesses feed it
//! views stamped with virtual time and execute the [`ControlAction`]s
//! it returns (the testkit `Cluster::converge` and the threaded
//! harness's supervisor thread both do).
//!
//! # Examples
//!
//! ```
//! use pscc_common::{SimDuration, SimTime, SiteId};
//! use pscc_control::{
//!     ClusterManifest, ClusterView, ControlAction, ControlStatus, MigrationObs, ObservedSite,
//!     SitePhase, Supervisor,
//! };
//!
//! // Desired: site 0 restarted into an epoch >= 2.
//! let manifest =
//!     ClusterManifest::rolling_restart(&[(SiteId(0), 1)], 1, SimDuration::from_secs(1));
//! let mut sup = Supervisor::new(manifest).unwrap();
//!
//! // Observed: site 0 up in epoch 1 → first step is a drain.
//! let view = ClusterView {
//!     now: SimTime::ZERO,
//!     sites: vec![ObservedSite {
//!         site: SiteId(0),
//!         up: true,
//!         epoch: 1,
//!         phase: SitePhase::Active,
//!         queue_depth: 0,
//!         layout: 1,
//!         migration: MigrationObs::Idle,
//!         tiers_fp: pscc_common::tiers_fingerprint([]),
//!     }],
//! };
//! let tick = sup.tick(&view);
//! assert_eq!(tick.actions, vec![ControlAction::Drain(SiteId(0))]);
//! assert_eq!(tick.status, ControlStatus::InProgress);
//! ```

pub mod manifest;
pub mod reconcile;
pub mod view;

pub use manifest::{
    ClusterManifest, DesiredState, ManifestError, MoveRange, SiteSpec, TierAssignment,
};
pub use reconcile::{ControlAction, ControlStatus, StepKind, Supervisor, TickResult};
pub use view::{ClusterView, MigrationObs, ObservedSite, SitePhase};
