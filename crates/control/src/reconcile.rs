//! The reconciler: diff desired vs. observed, emit bounded safe steps.
//!
//! [`Supervisor::tick`] is a pure state-machine transition: given the
//! latest [`ClusterView`], it advances per-site step programs, enforces
//! per-step deadlines with a widening retry backoff, admits new sites
//! into the operation while fewer than `max_unavailable` are in flight,
//! and — if any step exhausts its retries — aborts the whole operation
//! and emits the rollback actions that return the cluster to service
//! (undrain what was draining, restart what was stopped).

use crate::manifest::{ClusterManifest, DesiredState, ManifestError, MoveRange, SiteSpec};
use crate::view::{ClusterView, MigrationObs, SitePhase};
use pscc_common::{ConsistencyTier, SimTime, SiteId};
use std::collections::VecDeque;

/// One step of a site's program, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Ask the site to drain (graceful admission close + WAL force).
    Drain,
    /// Stop the drained site's process.
    Stop,
    /// Start the site again (restart recovery bumps its epoch).
    Restart,
    /// Reopen admission (auto-skipped when the site came back active).
    Undrain,
    /// Ask a move's source to prepare the migration (freeze + drain the
    /// range, log `MigrateBegin`).
    MigratePrepare,
    /// Ask the prepared source to transfer and commit the migration.
    MigrateCommit,
    /// Retune one site's per-file consistency tiers (one `SetTierReq`
    /// per manifest tier row; applied online, no drain).
    SetTier,
}

impl StepKind {
    /// The step's name as it appears in `converge_step` events.
    pub fn name(self) -> &'static str {
        match self {
            StepKind::Drain => "drain",
            StepKind::Stop => "stop",
            StepKind::Restart => "restart",
            StepKind::Undrain => "undrain",
            StepKind::MigratePrepare => "migrate_prepare",
            StepKind::MigrateCommit => "migrate_commit",
            StepKind::SetTier => "set_tier",
        }
    }
}

/// An instruction for the harness executing the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlAction {
    /// Send `DrainReq` to the site.
    Drain(SiteId),
    /// Stop (crash) the site's process.
    Stop(SiteId),
    /// Restart the site (restart recovery + rejoin happen inside).
    Restart(SiteId),
    /// Send `UndrainReq` to the site.
    Undrain(SiteId),
    /// Send `MigratePrepare` for `[lo, hi) → to` to the source site.
    MigratePrepare {
        /// Source (current owner) driving the migration.
        from: SiteId,
        /// First page of the range.
        lo: u32,
        /// One past the last page.
        hi: u32,
        /// New owner.
        to: SiteId,
    },
    /// Send `MigrateTransfer` to the prepared source (the engine runs
    /// Transfer → Commit → Activate from there on its own).
    MigrateCommit {
        /// Source driving the migration.
        from: SiteId,
    },
    /// Send `MigrateAbortReq` to the source: roll the migration back
    /// (or learn it already committed).
    MigrateAbort {
        /// Source driving the migration.
        from: SiteId,
    },
    /// Send `SetTierReq` to the site: set `file`'s consistency tier.
    SetTier {
        /// The owner site whose tier map changes.
        site: SiteId,
        /// File number the tier applies to.
        file: u32,
        /// The new consistency dial.
        tier: ConsistencyTier,
    },
}

impl ControlAction {
    fn for_step(step: StepKind, site: SiteId) -> ControlAction {
        match step {
            StepKind::Drain => ControlAction::Drain(site),
            StepKind::Stop => ControlAction::Stop(site),
            StepKind::Restart => ControlAction::Restart(site),
            StepKind::Undrain => ControlAction::Undrain(site),
            // Migration and tier steps carry extra payload and are
            // built by their own machines, never from a per-site
            // program.
            StepKind::MigratePrepare | StepKind::MigrateCommit | StepKind::SetTier => {
                unreachable!("migration and tier steps are driven by their own machines")
            }
        }
    }

    /// The site the action targets.
    pub fn site(self) -> SiteId {
        match self {
            ControlAction::Drain(s)
            | ControlAction::Stop(s)
            | ControlAction::Restart(s)
            | ControlAction::Undrain(s)
            | ControlAction::MigratePrepare { from: s, .. }
            | ControlAction::MigrateCommit { from: s }
            | ControlAction::MigrateAbort { from: s }
            | ControlAction::SetTier { site: s, .. } => s,
        }
    }
}

/// Where the operation stands after a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlStatus {
    /// Observed state matches the manifest; nothing in flight.
    Converged,
    /// Steps are in flight or still to be admitted.
    InProgress,
    /// A step exhausted its retries; rollback actions were emitted and
    /// the supervisor will make no further progress.
    Aborted {
        /// The site whose step gave up.
        site: SiteId,
        /// The step that could not complete.
        step: StepKind,
    },
}

/// The output of one reconciliation tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickResult {
    /// Where the operation stands now.
    pub status: ControlStatus,
    /// Actions the harness must execute, in order.
    pub actions: Vec<ControlAction>,
}

/// A site currently being walked through its program.
#[derive(Debug, Clone)]
struct InFlight {
    site: SiteId,
    /// Remaining steps; front is the one in flight.
    plan: VecDeque<StepKind>,
    /// Deadline for the current step.
    deadline: SimTime,
    /// Retries consumed by the current step.
    retries: u32,
}

/// The move currently being driven (at most one at a time).
#[derive(Debug, Clone, Copy)]
struct MoveFlight {
    /// `MigratePrepare` or `MigrateCommit`.
    step: StepKind,
    /// Deadline for the current step.
    deadline: SimTime,
    /// Retries consumed by the current step.
    retries: u32,
    /// The layout version both endpoints must reach for the move to
    /// count as done (source layout at prepare time + 1).
    expect_layout: u64,
}

/// The tier rollout currently in flight at one site.
#[derive(Debug, Clone, Copy)]
struct TierFlight {
    /// Deadline for the site's fingerprint to converge.
    deadline: SimTime,
    /// Retries consumed so far.
    retries: u32,
}

/// The reconciling cluster supervisor. See the crate docs for the
/// model; see [`ClusterManifest`] for the safety envelope.
#[derive(Debug, Clone)]
pub struct Supervisor {
    manifest: ClusterManifest,
    in_flight: Vec<InFlight>,
    /// Index of the next (or current) move in `manifest.moves`.
    move_idx: usize,
    /// The move currently in flight, if any.
    move_flight: Option<MoveFlight>,
    /// Sites with tier rows, walked in first-appearance order after the
    /// moves are done.
    tier_sites: Vec<SiteId>,
    /// Index of the next (or current) site in `tier_sites`.
    tier_idx: usize,
    /// The tier rollout currently in flight, if any.
    tier_flight: Option<TierFlight>,
    status: ControlStatus,
    steps_executed: u64,
    last_draining: u64,
    last_down: u64,
}

impl Supervisor {
    /// Builds a supervisor for `manifest`, validating it first.
    pub fn new(manifest: ClusterManifest) -> Result<Self, ManifestError> {
        manifest.validate()?;
        let tier_sites = manifest.tier_sites();
        Ok(Supervisor {
            manifest,
            in_flight: Vec::new(),
            move_idx: 0,
            move_flight: None,
            tier_sites,
            tier_idx: 0,
            tier_flight: None,
            status: ControlStatus::InProgress,
            steps_executed: 0,
            last_draining: 0,
            last_down: 0,
        })
    }

    /// The manifest being reconciled.
    pub fn manifest(&self) -> &ClusterManifest {
        &self.manifest
    }

    /// Current status (also returned by every tick).
    pub fn status(&self) -> ControlStatus {
        self.status
    }

    /// Total step executions so far, retries included (the
    /// `converge_done` event's step count).
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Sites observed draining at the last tick (`sites_draining`
    /// gauge).
    pub fn sites_draining(&self) -> u64 {
        self.last_draining
    }

    /// Sites observed down at the last tick (`rolling_unavailable`
    /// gauge).
    pub fn rolling_unavailable(&self) -> u64 {
        self.last_down
    }

    /// The program that takes `spec.site` from its observation to its
    /// desired state. Empty when the site is already there.
    fn plan_for(spec: &SiteSpec, view: &ClusterView) -> VecDeque<StepKind> {
        let Some(obs) = view.get(spec.site) else {
            // Unobserved sites cannot be reconciled; an empty plan keeps
            // them out of flight (the operation will not converge, and
            // the caller's budget surfaces that).
            return VecDeque::new();
        };
        match spec.desired {
            DesiredState::Down => {
                if obs.up {
                    VecDeque::from([StepKind::Drain, StepKind::Stop])
                } else {
                    VecDeque::new()
                }
            }
            DesiredState::Up { min_epoch } => {
                if !obs.up {
                    VecDeque::from([StepKind::Restart, StepKind::Undrain])
                } else if obs.epoch < min_epoch {
                    VecDeque::from([
                        StepKind::Drain,
                        StepKind::Stop,
                        StepKind::Restart,
                        StepKind::Undrain,
                    ])
                } else if obs.phase != SitePhase::Active {
                    VecDeque::from([StepKind::Undrain])
                } else {
                    VecDeque::new()
                }
            }
        }
    }

    /// Whether `step` has completed for `spec.site` per the view.
    fn step_complete(spec: &SiteSpec, step: StepKind, view: &ClusterView) -> bool {
        let Some(obs) = view.get(spec.site) else {
            return false;
        };
        match step {
            StepKind::Drain => obs.up && obs.phase == SitePhase::Drained,
            StepKind::Stop => !obs.up,
            StepKind::Restart => {
                let min = match spec.desired {
                    DesiredState::Up { min_epoch } => min_epoch,
                    DesiredState::Down => 1,
                };
                obs.up && obs.epoch >= min
            }
            StepKind::Undrain => obs.up && obs.phase == SitePhase::Active,
            // Migration and tier steps never appear in per-site
            // programs; their machines track completion themselves.
            StepKind::MigratePrepare | StepKind::MigrateCommit | StepKind::SetTier => false,
        }
    }

    fn spec_of(&self, site: SiteId) -> &SiteSpec {
        self.manifest
            .sites
            .iter()
            .find(|s| s.site == site)
            .expect("in-flight site is always from the manifest")
    }

    /// Drives the declared ownership moves, one at a time, once the
    /// site walk has nothing in flight (migration needs both endpoints
    /// stable). Returns the site and step of a move that exhausted its
    /// retries — terminal for the whole operation.
    fn drive_moves(
        &mut self,
        view: &ClusterView,
        actions: &mut Vec<ControlAction>,
    ) -> Option<(SiteId, StepKind)> {
        if !self.in_flight.is_empty() || self.move_idx >= self.manifest.moves.len() {
            return None;
        }
        let mv: MoveRange = self.manifest.moves[self.move_idx];
        let src = view.get(mv.from).copied();
        let dst = view.get(mv.to).copied();
        let prepare = ControlAction::MigratePrepare {
            from: mv.from,
            lo: mv.lo,
            hi: mv.hi,
            to: mv.to,
        };
        let Some(fly) = self.move_flight.as_mut() else {
            // Start the move once both endpoints are observed up.
            if let (Some(s), Some(d)) = (src, dst) {
                if s.up && d.up {
                    actions.push(prepare);
                    self.steps_executed += 1;
                    self.move_flight = Some(MoveFlight {
                        step: StepKind::MigratePrepare,
                        deadline: view.now + self.manifest.step_timeout,
                        retries: 0,
                        expect_layout: s.layout + 1,
                    });
                }
            }
            return None;
        };
        let done = match fly.step {
            StepKind::MigratePrepare => {
                src.is_some_and(|o| o.up && o.migration == MigrationObs::Prepared)
            }
            _ => {
                // Committed and landed: both endpoints at the new
                // layout, the source back to idle.
                src.is_some_and(|o| {
                    o.up && o.layout >= fly.expect_layout && o.migration == MigrationObs::Idle
                }) && dst.is_some_and(|o| o.up && o.layout >= fly.expect_layout)
            }
        };
        if done {
            if fly.step == StepKind::MigratePrepare {
                fly.step = StepKind::MigrateCommit;
                fly.deadline = view.now + self.manifest.step_timeout;
                fly.retries = 0;
                actions.push(ControlAction::MigrateCommit { from: mv.from });
            } else {
                // Move complete; the next tick starts the next one.
                self.move_flight = None;
                self.move_idx += 1;
            }
            self.steps_executed += 1;
            return None;
        }
        if view.now < fly.deadline {
            return None;
        }
        if fly.retries >= self.manifest.max_step_retries {
            // A migration that will not finish is rolled back, never
            // left half-done: the source either aborts (pre-commit) or
            // reports the commit already durable.
            actions.push(ControlAction::MigrateAbort { from: mv.from });
            self.steps_executed += 1;
            return Some((mv.from, fly.step));
        }
        fly.retries += 1;
        fly.deadline = view.now
            + self
                .manifest
                .step_timeout
                .mul_f64(f64::from(fly.retries) + 1.0);
        // A source that crashed before its commit recovered with the
        // migration rolled back: start over from the prepare.
        if fly.step == StepKind::MigrateCommit
            && src.is_some_and(|o| {
                o.up && o.migration == MigrationObs::Idle && o.layout < fly.expect_layout
            })
        {
            fly.step = StepKind::MigratePrepare;
        }
        actions.push(match fly.step {
            StepKind::MigratePrepare => prepare,
            _ => ControlAction::MigrateCommit { from: mv.from },
        });
        self.steps_executed += 1;
        None
    }

    /// Drives the declared tier rollout, one site at a time, after the
    /// site walk and the moves are done (so fingerprints are not judged
    /// against a site that is mid-restart). Returns the site of a
    /// rollout that exhausted its retries — terminal for the operation.
    fn drive_tiers(
        &mut self,
        view: &ClusterView,
        actions: &mut Vec<ControlAction>,
    ) -> Option<(SiteId, StepKind)> {
        if !self.in_flight.is_empty() || self.move_idx < self.manifest.moves.len() {
            return None;
        }
        while self.tier_idx < self.tier_sites.len() {
            let site = self.tier_sites[self.tier_idx];
            let expect = self.manifest.tiers_fp_for(site);
            let obs = view.get(site).copied();
            if obs.is_some_and(|o| o.up && o.tiers_fp == expect) {
                // This site's rollout landed; walk on in the same tick.
                self.tier_flight = None;
                self.tier_idx += 1;
                continue;
            }
            let rows: Vec<ControlAction> = self
                .manifest
                .tiers
                .iter()
                .filter(|t| t.site == site)
                .map(|t| ControlAction::SetTier {
                    site,
                    file: t.file,
                    tier: t.tier,
                })
                .collect();
            let Some(fly) = self.tier_flight.as_mut() else {
                // Start the rollout once the site is observed up.
                if obs.is_some_and(|o| o.up) {
                    self.steps_executed += rows.len() as u64;
                    actions.extend(rows);
                    self.tier_flight = Some(TierFlight {
                        deadline: view.now + self.manifest.step_timeout,
                        retries: 0,
                    });
                }
                return None;
            };
            if view.now < fly.deadline {
                return None;
            }
            if fly.retries >= self.manifest.max_step_retries {
                return Some((site, StepKind::SetTier));
            }
            fly.retries += 1;
            fly.deadline = view.now
                + self
                    .manifest
                    .step_timeout
                    .mul_f64(f64::from(fly.retries) + 1.0);
            self.steps_executed += rows.len() as u64;
            actions.extend(rows);
            return None;
        }
        None
    }

    /// One reconciliation transition. Pure with respect to IO: reads
    /// the view, mutates supervisor state, returns actions to execute.
    pub fn tick(&mut self, view: &ClusterView) -> TickResult {
        self.last_draining = view.sites_draining();
        self.last_down = view.sites_down();
        if let ControlStatus::Aborted { .. } = self.status {
            // Terminal: rollback was already emitted.
            return TickResult {
                status: self.status,
                actions: Vec::new(),
            };
        }

        let mut actions = Vec::new();
        let mut aborted: Option<(SiteId, StepKind)> = None;

        // Advance (or time out) every in-flight program.
        let mut still = Vec::new();
        for mut fly in std::mem::take(&mut self.in_flight) {
            let spec = *self.spec_of(fly.site);
            let mut advanced = false;
            // A site that died while we were draining (or reopening) it
            // cannot answer the step in flight; re-plan from what is
            // actually there (typically straight to Restart) instead of
            // retrying a handshake with a corpse.
            if matches!(fly.plan.front(), Some(StepKind::Drain | StepKind::Undrain))
                && view.get(fly.site).is_some_and(|o| !o.up)
            {
                fly.plan = Self::plan_for(&spec, view);
                advanced = true;
            }
            while let Some(&step) = fly.plan.front() {
                if Self::step_complete(&spec, step, view) {
                    fly.plan.pop_front();
                    advanced = true;
                } else {
                    break;
                }
            }
            let Some(&step) = fly.plan.front() else {
                continue; // program finished; site leaves the flight
            };
            if advanced {
                actions.push(ControlAction::for_step(step, fly.site));
                fly.deadline = view.now + self.manifest.step_timeout;
                fly.retries = 0;
                self.steps_executed += 1;
            } else if view.now >= fly.deadline {
                if fly.retries >= self.manifest.max_step_retries {
                    aborted = Some((fly.site, step));
                    still.push(fly);
                    continue;
                }
                fly.retries += 1;
                // Widening backoff: each retry gets a longer deadline.
                let patience = self
                    .manifest
                    .step_timeout
                    .mul_f64(f64::from(fly.retries) + 1.0);
                fly.deadline = view.now + patience;
                actions.push(ControlAction::for_step(step, fly.site));
                self.steps_executed += 1;
            }
            still.push(fly);
        }
        self.in_flight = still;

        if let Some((site, step)) = aborted {
            // Roll back: reopen every site the operation touched. A
            // draining/drained site is undrained; a stopped site is
            // restarted (best effort — it may itself be the stuck one).
            let mut rollback = Vec::new();
            for fly in self.in_flight.drain(..) {
                match view.get(fly.site) {
                    Some(obs) if !obs.up => rollback.push(ControlAction::Restart(fly.site)),
                    Some(obs) if obs.phase != SitePhase::Active => {
                        rollback.push(ControlAction::Undrain(fly.site))
                    }
                    _ => {}
                }
            }
            self.steps_executed += rollback.len() as u64;
            self.status = ControlStatus::Aborted { site, step };
            return TickResult {
                status: self.status,
                actions: rollback,
            };
        }

        // Admit new sites while the unavailability budget allows.
        for spec in &self.manifest.sites {
            if self.in_flight.len() >= self.manifest.max_unavailable {
                break;
            }
            if self.in_flight.iter().any(|f| f.site == spec.site) {
                continue;
            }
            let plan = Self::plan_for(spec, view);
            let Some(&first) = plan.front() else {
                continue; // already at desired state
            };
            actions.push(ControlAction::for_step(first, spec.site));
            self.steps_executed += 1;
            self.in_flight.push(InFlight {
                site: spec.site,
                plan,
                deadline: view.now + self.manifest.step_timeout,
                retries: 0,
            });
        }

        if let Some((site, step)) = self.drive_moves(view, &mut actions) {
            self.status = ControlStatus::Aborted { site, step };
            return TickResult {
                status: self.status,
                actions,
            };
        }

        if let Some((site, step)) = self.drive_tiers(view, &mut actions) {
            self.status = ControlStatus::Aborted { site, step };
            return TickResult {
                status: self.status,
                actions,
            };
        }

        let all_satisfied = self
            .manifest
            .sites
            .iter()
            .all(|s| Self::plan_for(s, view).is_empty());
        self.status = if self.in_flight.is_empty()
            && all_satisfied
            && self.move_idx >= self.manifest.moves.len()
            && self.tier_idx >= self.tier_sites.len()
        {
            ControlStatus::Converged
        } else {
            ControlStatus::InProgress
        };
        TickResult {
            status: self.status,
            actions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ObservedSite;
    use pscc_common::SimDuration;

    fn obs(site: u32, up: bool, epoch: u64, phase: SitePhase) -> ObservedSite {
        ObservedSite {
            site: SiteId(site),
            up,
            epoch,
            phase,
            queue_depth: 0,
            layout: 1,
            migration: MigrationObs::Idle,
            tiers_fp: pscc_common::tiers_fingerprint([]),
        }
    }

    fn obs_m(site: u32, layout: u64, migration: MigrationObs) -> ObservedSite {
        ObservedSite {
            site: SiteId(site),
            up: true,
            epoch: 1,
            phase: SitePhase::Active,
            queue_depth: 0,
            layout,
            migration,
            tiers_fp: pscc_common::tiers_fingerprint([]),
        }
    }

    fn view(now_us: u64, sites: Vec<ObservedSite>) -> ClusterView {
        ClusterView {
            now: SimTime::from_micros(now_us),
            sites,
        }
    }

    fn rolling(n: u32, max_unavailable: usize) -> Supervisor {
        let current: Vec<(SiteId, u64)> = (0..n).map(|i| (SiteId(i), 1)).collect();
        Supervisor::new(ClusterManifest::rolling_restart(
            &current,
            max_unavailable,
            SimDuration::from_millis(100),
        ))
        .unwrap()
    }

    #[test]
    fn one_at_a_time_walk() {
        let mut sup = rolling(2, 1);

        // Both up in epoch 1: drain the first site only.
        let t = sup.tick(&view(
            0,
            vec![
                obs(0, true, 1, SitePhase::Active),
                obs(1, true, 1, SitePhase::Active),
            ],
        ));
        assert_eq!(t.actions, vec![ControlAction::Drain(SiteId(0))]);
        assert_eq!(t.status, ControlStatus::InProgress);

        // Site 0 drained → stop it. Site 1 must stay untouched.
        let t = sup.tick(&view(
            10,
            vec![
                obs(0, true, 1, SitePhase::Drained),
                obs(1, true, 1, SitePhase::Active),
            ],
        ));
        assert_eq!(t.actions, vec![ControlAction::Stop(SiteId(0))]);

        // Site 0 down → restart it.
        let t = sup.tick(&view(
            20,
            vec![
                obs(0, false, 1, SitePhase::Active),
                obs(1, true, 1, SitePhase::Active),
            ],
        ));
        assert_eq!(t.actions, vec![ControlAction::Restart(SiteId(0))]);

        // Site 0 reborn in epoch 2 and active: undrain auto-skips, its
        // program finishes, and site 1 is admitted in the same tick.
        let t = sup.tick(&view(
            30,
            vec![
                obs(0, true, 2, SitePhase::Active),
                obs(1, true, 1, SitePhase::Active),
            ],
        ));
        assert_eq!(t.actions, vec![ControlAction::Drain(SiteId(1))]);

        // Walk site 1 the same way; after its rebirth the plan is done.
        sup.tick(&view(
            40,
            vec![
                obs(0, true, 2, SitePhase::Active),
                obs(1, true, 1, SitePhase::Drained),
            ],
        ));
        sup.tick(&view(
            50,
            vec![
                obs(0, true, 2, SitePhase::Active),
                obs(1, false, 1, SitePhase::Active),
            ],
        ));
        let t = sup.tick(&view(
            60,
            vec![
                obs(0, true, 2, SitePhase::Active),
                obs(1, true, 2, SitePhase::Active),
            ],
        ));
        assert_eq!(t.status, ControlStatus::Converged);
        assert!(t.actions.is_empty());
    }

    #[test]
    fn max_unavailable_bounds_the_flight() {
        let mut sup = rolling(3, 2);
        let t = sup.tick(&view(
            0,
            vec![
                obs(0, true, 1, SitePhase::Active),
                obs(1, true, 1, SitePhase::Active),
                obs(2, true, 1, SitePhase::Active),
            ],
        ));
        assert_eq!(
            t.actions,
            vec![
                ControlAction::Drain(SiteId(0)),
                ControlAction::Drain(SiteId(1)),
            ]
        );
    }

    #[test]
    fn timeout_retries_then_aborts_with_rollback() {
        let mut sup = rolling(1, 1);
        let stuck = |now: u64| view(now, vec![obs(0, true, 1, SitePhase::Draining)]);

        let t = sup.tick(&view(0, vec![obs(0, true, 1, SitePhase::Active)]));
        assert_eq!(t.actions, vec![ControlAction::Drain(SiteId(0))]);

        // Deadline passes (100ms steps): three widening retries.
        let mut now = 150_000;
        for _ in 0..3 {
            let t = sup.tick(&stuck(now));
            assert_eq!(t.actions, vec![ControlAction::Drain(SiteId(0))]);
            assert_eq!(t.status, ControlStatus::InProgress);
            now += 500_000;
        }

        // Fourth miss: abort, and the stuck-draining site is reopened.
        let t = sup.tick(&stuck(now));
        assert_eq!(
            t.status,
            ControlStatus::Aborted {
                site: SiteId(0),
                step: StepKind::Drain
            }
        );
        assert_eq!(t.actions, vec![ControlAction::Undrain(SiteId(0))]);

        // Terminal: further ticks do nothing.
        let t = sup.tick(&stuck(now + 1));
        assert!(t.actions.is_empty());
        assert!(matches!(t.status, ControlStatus::Aborted { .. }));
    }

    #[test]
    fn down_desired_drains_then_stops() {
        let manifest = ClusterManifest {
            sites: vec![SiteSpec {
                site: SiteId(0),
                desired: DesiredState::Down,
            }],
            max_unavailable: 1,
            step_timeout: SimDuration::from_millis(100),
            max_step_retries: 1,
            moves: Vec::new(),
            tiers: Vec::new(),
        };
        let mut sup = Supervisor::new(manifest).unwrap();
        let t = sup.tick(&view(0, vec![obs(0, true, 1, SitePhase::Active)]));
        assert_eq!(t.actions, vec![ControlAction::Drain(SiteId(0))]);
        let t = sup.tick(&view(1, vec![obs(0, true, 1, SitePhase::Drained)]));
        assert_eq!(t.actions, vec![ControlAction::Stop(SiteId(0))]);
        let t = sup.tick(&view(2, vec![obs(0, false, 1, SitePhase::Active)]));
        assert_eq!(t.status, ControlStatus::Converged);
    }

    #[test]
    fn crashed_while_draining_replans_to_restart() {
        // The site dies mid-drain: the Drain handshake can never finish,
        // so the reconciler re-plans from the observation instead of
        // retrying a handshake with a corpse — straight to Restart, and
        // the operation still converges.
        let mut sup = rolling(1, 1);
        sup.tick(&view(0, vec![obs(0, true, 1, SitePhase::Active)]));
        let t = sup.tick(&view(10, vec![obs(0, false, 1, SitePhase::Active)]));
        assert_eq!(t.actions, vec![ControlAction::Restart(SiteId(0))]);
        assert_eq!(t.status, ControlStatus::InProgress);
        let t = sup.tick(&view(20, vec![obs(0, true, 2, SitePhase::Active)]));
        assert_eq!(t.status, ControlStatus::Converged);
    }

    /// A manifest whose sites are already satisfied plus one move.
    fn move_manifest(retries: u32) -> ClusterManifest {
        let mut m = ClusterManifest::rolling_restart(
            &[(SiteId(0), 0), (SiteId(1), 0)],
            1,
            SimDuration::from_millis(100),
        );
        m.max_step_retries = retries;
        m.moves = vec![MoveRange {
            lo: 0,
            hi: 100,
            from: SiteId(0),
            to: SiteId(1),
        }];
        m
    }

    #[test]
    fn move_walks_prepare_then_commit_then_converges() {
        let mut sup = Supervisor::new(move_manifest(3)).unwrap();

        // Both endpoints up and idle: issue the prepare.
        let t = sup.tick(&view(
            0,
            vec![
                obs_m(0, 1, MigrationObs::Idle),
                obs_m(1, 1, MigrationObs::Idle),
            ],
        ));
        assert_eq!(
            t.actions,
            vec![ControlAction::MigratePrepare {
                from: SiteId(0),
                lo: 0,
                hi: 100,
                to: SiteId(1),
            }]
        );
        assert_eq!(t.status, ControlStatus::InProgress);

        // Source prepared: issue the commit.
        let t = sup.tick(&view(
            10,
            vec![
                obs_m(0, 1, MigrationObs::Prepared),
                obs_m(1, 1, MigrationObs::Idle),
            ],
        ));
        assert_eq!(
            t.actions,
            vec![ControlAction::MigrateCommit { from: SiteId(0) }]
        );

        // Both endpoints at the new layout, source idle: converged.
        let t = sup.tick(&view(
            20,
            vec![
                obs_m(0, 2, MigrationObs::Idle),
                obs_m(1, 2, MigrationObs::Idle),
            ],
        ));
        assert!(t.actions.is_empty());
        assert_eq!(t.status, ControlStatus::Converged);
    }

    #[test]
    fn crashed_source_resets_commit_retry_to_prepare() {
        let mut sup = Supervisor::new(move_manifest(3)).unwrap();
        sup.tick(&view(
            0,
            vec![
                obs_m(0, 1, MigrationObs::Idle),
                obs_m(1, 1, MigrationObs::Idle),
            ],
        ));
        sup.tick(&view(
            10,
            vec![
                obs_m(0, 1, MigrationObs::Prepared),
                obs_m(1, 1, MigrationObs::Idle),
            ],
        ));
        // The source crashed and recovered with the migration rolled
        // back (idle, old layout). Past the deadline, the retry must
        // restart from the prepare, not re-send the commit.
        let t = sup.tick(&view(
            200_000,
            vec![
                obs_m(0, 1, MigrationObs::Idle),
                obs_m(1, 1, MigrationObs::Idle),
            ],
        ));
        assert_eq!(
            t.actions,
            vec![ControlAction::MigratePrepare {
                from: SiteId(0),
                lo: 0,
                hi: 100,
                to: SiteId(1),
            }]
        );
        assert_eq!(t.status, ControlStatus::InProgress);
    }

    #[test]
    fn stuck_move_aborts_with_migrate_abort() {
        let mut sup = Supervisor::new(move_manifest(1)).unwrap();
        let stuck = |now: u64| {
            view(
                now,
                vec![
                    obs_m(0, 1, MigrationObs::Preparing),
                    obs_m(1, 1, MigrationObs::Idle),
                ],
            )
        };
        let t = sup.tick(&stuck(0));
        assert_eq!(t.actions.len(), 1);

        // One widening retry...
        let t = sup.tick(&stuck(150_000));
        assert_eq!(
            t.actions,
            vec![ControlAction::MigratePrepare {
                from: SiteId(0),
                lo: 0,
                hi: 100,
                to: SiteId(1),
            }]
        );

        // ...then the move gives up: abort the migration, terminal.
        let t = sup.tick(&stuck(500_000));
        assert_eq!(
            t.actions,
            vec![ControlAction::MigrateAbort { from: SiteId(0) }]
        );
        assert_eq!(
            t.status,
            ControlStatus::Aborted {
                site: SiteId(0),
                step: StepKind::MigratePrepare
            }
        );
        let t = sup.tick(&stuck(600_000));
        assert!(t.actions.is_empty());
    }

    /// A manifest whose sites are already satisfied plus one tier row.
    fn tier_manifest(retries: u32) -> (ClusterManifest, ConsistencyTier) {
        let tier = ConsistencyTier::BoundedStale {
            ttl: SimDuration::from_millis(5),
        };
        let mut m = ClusterManifest::rolling_restart(
            &[(SiteId(0), 0), (SiteId(1), 0)],
            1,
            SimDuration::from_millis(100),
        );
        m.max_step_retries = retries;
        m.tiers = vec![crate::manifest::TierAssignment {
            site: SiteId(0),
            file: 0,
            tier,
        }];
        (m, tier)
    }

    fn obs_t(site: u32, tiers_fp: u64) -> ObservedSite {
        ObservedSite {
            tiers_fp,
            ..obs(site, true, 1, SitePhase::Active)
        }
    }

    #[test]
    fn tier_rollout_sets_then_converges_on_fingerprint() {
        let (m, tier) = tier_manifest(3);
        let expect = m.tiers_fp_for(SiteId(0));
        let empty = pscc_common::tiers_fingerprint([]);
        let mut sup = Supervisor::new(m).unwrap();

        // Sites satisfied, fingerprint stale: issue the SetTier.
        let t = sup.tick(&view(0, vec![obs_t(0, empty), obs_t(1, empty)]));
        assert_eq!(
            t.actions,
            vec![ControlAction::SetTier {
                site: SiteId(0),
                file: 0,
                tier,
            }]
        );
        assert_eq!(t.status, ControlStatus::InProgress);

        // Fingerprint landed: converged, no further actions.
        let t = sup.tick(&view(10, vec![obs_t(0, expect), obs_t(1, empty)]));
        assert!(t.actions.is_empty());
        assert_eq!(t.status, ControlStatus::Converged);
    }

    #[test]
    fn stuck_tier_rollout_retries_then_aborts() {
        let (m, tier) = tier_manifest(1);
        let empty = pscc_common::tiers_fingerprint([]);
        let mut sup = Supervisor::new(m).unwrap();
        let stuck = |now: u64| view(now, vec![obs_t(0, empty), obs_t(1, empty)]);

        let t = sup.tick(&stuck(0));
        assert_eq!(t.actions.len(), 1);

        // One widening retry re-sends the row...
        let t = sup.tick(&stuck(150_000));
        assert_eq!(
            t.actions,
            vec![ControlAction::SetTier {
                site: SiteId(0),
                file: 0,
                tier,
            }]
        );
        assert_eq!(t.status, ControlStatus::InProgress);

        // ...then the rollout gives up: terminal.
        let t = sup.tick(&stuck(500_000));
        assert_eq!(
            t.status,
            ControlStatus::Aborted {
                site: SiteId(0),
                step: StepKind::SetTier
            }
        );
        let t = sup.tick(&stuck(600_000));
        assert!(t.actions.is_empty());
    }

    #[test]
    fn gauges_reflect_last_view() {
        let mut sup = rolling(2, 2);
        sup.tick(&view(
            0,
            vec![
                obs(0, true, 1, SitePhase::Draining),
                obs(1, false, 1, SitePhase::Active),
            ],
        ));
        assert_eq!(sup.sites_draining(), 1);
        assert_eq!(sup.rolling_unavailable(), 1);
    }
}
