//! The desired-state half of the control plane.

use pscc_common::{tiers_fingerprint, ConsistencyTier, EdgeTierSpec, SimDuration, SiteId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What the operator wants a site to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesiredState {
    /// The site should be serving, in an epoch of at least `min_epoch`.
    /// A rolling restart is declared by setting `min_epoch` to one more
    /// than the site's current epoch: the only way the cluster can
    /// converge is to take the site through a full
    /// drain → stop → recover → rejoin cycle.
    Up {
        /// Minimum acceptable epoch (1 = any running instance).
        min_epoch: u64,
    },
    /// The site should be stopped (drained first, never yanked).
    Down,
}

/// One site's row in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSpec {
    /// The site.
    pub site: SiteId,
    /// What it should be.
    pub desired: DesiredState,
}

/// A declared ownership migration: re-home the page range `[lo, hi)`
/// from `from` to `to`. Moves are executed one at a time, in order,
/// through the engine's crash-safe Prepare → Transfer → Commit state
/// machine (DESIGN.md §10); the supervisor only issues the prepare and
/// commit nudges and watches layout versions converge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveRange {
    /// First page number of the range (inclusive).
    pub lo: u32,
    /// One past the last page number (exclusive).
    pub hi: u32,
    /// Current owner, which must drive the migration.
    pub from: SiteId,
    /// New owner.
    pub to: SiteId,
}

/// A declared per-file consistency tier at one owner site (DESIGN.md
/// §11). The rows for a site together declare its *complete* non-Strict
/// tier map: the reconciler sends one `SetTierReq` per row and waits
/// for the site's observed tier fingerprint to equal the fingerprint of
/// exactly these rows, so a row with [`ConsistencyTier::Strict`]
/// retires a file's tier and files with tiers not declared here keep
/// the operation from converging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierAssignment {
    /// The owner site whose tier map the row belongs to.
    pub site: SiteId,
    /// File number the tier applies to.
    pub file: u32,
    /// The consistency dial for that file.
    pub tier: ConsistencyTier,
}

/// A declarative description of the cluster the operator wants,
/// together with the safety envelope the reconciler must respect while
/// getting there.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterManifest {
    /// Desired state per site, in reconciliation (walk) order.
    pub sites: Vec<SiteSpec>,
    /// How many sites may be mid-operation (draining, stopped, or
    /// recovering) at once. `1` is the classic one-at-a-time roll.
    pub max_unavailable: usize,
    /// Deadline for each individual step (drain, stop, restart,
    /// undrain). A step that misses it is retried with a widening
    /// deadline until `max_step_retries` is exhausted.
    pub step_timeout: SimDuration,
    /// Retries per step before the whole operation aborts and rolls
    /// back.
    pub max_step_retries: u32,
    /// Ownership migrations to execute (in order, one at a time) once
    /// the site walk has nothing in flight. Usually empty.
    pub moves: Vec<MoveRange>,
    /// Per-file consistency tiers to roll out, site by site, once the
    /// site walk and the moves are done. Tier changes need no drain:
    /// the engine applies them online (installing one purges the stale
    /// edge copies of the retuned file). Usually empty.
    pub tiers: Vec<TierAssignment>,
}

/// A manifest the reconciler refuses to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// No sites: nothing to reconcile.
    Empty,
    /// The same site appears twice; the walk order would be ambiguous.
    DuplicateSite(SiteId),
    /// `max_unavailable == 0` can never make progress.
    ZeroMaxUnavailable,
    /// A zero step timeout would retry every step on its first tick.
    ZeroStepTimeout,
    /// A move with `lo >= hi` names no pages.
    EmptyMove,
    /// A move whose source and destination are the same site.
    MoveToSelf(SiteId),
    /// A move names a site the manifest does not list.
    MoveUnknownSite(SiteId),
    /// A tier row names a site the manifest does not list.
    TierUnknownSite(SiteId),
    /// Two tier rows name the same `(site, file)`; the resulting tier
    /// would depend on send order.
    DuplicateTier(SiteId, u32),
    /// A non-Strict tier row carries a zero staleness bound (the engine
    /// would reject the `SetTierReq`'s resulting config).
    ZeroTierBound(SiteId, u32),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Empty => write!(f, "manifest lists no sites"),
            ManifestError::DuplicateSite(s) => write!(f, "site {s:?} appears twice"),
            ManifestError::ZeroMaxUnavailable => {
                write!(f, "max_unavailable must be >= 1 to make progress")
            }
            ManifestError::ZeroStepTimeout => write!(f, "step_timeout must be non-zero"),
            ManifestError::EmptyMove => write!(f, "move range is empty (lo >= hi)"),
            ManifestError::MoveToSelf(s) => {
                write!(f, "move names site {s:?} as both source and destination")
            }
            ManifestError::MoveUnknownSite(s) => {
                write!(f, "move names site {s:?} which the manifest does not list")
            }
            ManifestError::TierUnknownSite(s) => {
                write!(
                    f,
                    "tier row names site {s:?} which the manifest does not list"
                )
            }
            ManifestError::DuplicateTier(s, file) => {
                write!(f, "site {s:?} file {file} has two tier rows")
            }
            ManifestError::ZeroTierBound(s, file) => {
                write!(f, "site {s:?} file {file} declares a zero staleness bound")
            }
        }
    }
}

impl std::error::Error for ManifestError {}

impl ClusterManifest {
    /// The manifest for a rolling restart: every `(site, current_epoch)`
    /// pair becomes `Up { min_epoch: current_epoch + 1 }`, so the only
    /// converged state is one where each site has been reborn at least
    /// once, in walk order, at most `max_unavailable` at a time.
    pub fn rolling_restart(
        current: &[(SiteId, u64)],
        max_unavailable: usize,
        step_timeout: SimDuration,
    ) -> Self {
        ClusterManifest {
            sites: current
                .iter()
                .map(|&(site, epoch)| SiteSpec {
                    site,
                    desired: DesiredState::Up {
                        min_epoch: epoch + 1,
                    },
                })
                .collect(),
            max_unavailable,
            step_timeout,
            max_step_retries: 3,
            moves: Vec::new(),
            tiers: Vec::new(),
        }
    }

    /// The sites with tier rows, in first-appearance order (the tier
    /// rollout walks them one at a time).
    pub fn tier_sites(&self) -> Vec<SiteId> {
        let mut out = Vec::new();
        for t in &self.tiers {
            if !out.contains(&t.site) {
                out.push(t.site);
            }
        }
        out
    }

    /// The tier fingerprint `site` must report for its rollout to count
    /// as done (the fingerprint of exactly this manifest's rows for it;
    /// Strict rows are transparent, matching the engine's probe).
    pub fn tiers_fp_for(&self, site: SiteId) -> u64 {
        tiers_fingerprint(
            self.tiers
                .iter()
                .filter(|t| t.site == site)
                .map(|t| EdgeTierSpec {
                    file: t.file,
                    tier: t.tier,
                }),
        )
    }

    /// Structural sanity, checked by [`crate::Supervisor::new`].
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.sites.is_empty() {
            return Err(ManifestError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for s in &self.sites {
            if !seen.insert(s.site) {
                return Err(ManifestError::DuplicateSite(s.site));
            }
        }
        if self.max_unavailable == 0 {
            return Err(ManifestError::ZeroMaxUnavailable);
        }
        if self.step_timeout == SimDuration::ZERO {
            return Err(ManifestError::ZeroStepTimeout);
        }
        for mv in &self.moves {
            if mv.lo >= mv.hi {
                return Err(ManifestError::EmptyMove);
            }
            if mv.from == mv.to {
                return Err(ManifestError::MoveToSelf(mv.from));
            }
            for s in [mv.from, mv.to] {
                if !seen.contains(&s) {
                    return Err(ManifestError::MoveUnknownSite(s));
                }
            }
        }
        let mut tier_seen = std::collections::HashSet::new();
        for t in &self.tiers {
            if !seen.contains(&t.site) {
                return Err(ManifestError::TierUnknownSite(t.site));
            }
            if !tier_seen.insert((t.site, t.file)) {
                return Err(ManifestError::DuplicateTier(t.site, t.file));
            }
            if t.tier.bound() == Some(SimDuration::ZERO) {
                return Err(ManifestError::ZeroTierBound(t.site, t.file));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_restart_bumps_epochs() {
        let m = ClusterManifest::rolling_restart(
            &[(SiteId(0), 1), (SiteId(1), 4)],
            1,
            SimDuration::from_secs(1),
        );
        assert_eq!(m.sites.len(), 2);
        assert_eq!(m.sites[1].desired, DesiredState::Up { min_epoch: 5 });
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_degenerate_manifests() {
        let ok = ClusterManifest::rolling_restart(&[(SiteId(0), 1)], 1, SimDuration::from_secs(1));

        let mut m = ok.clone();
        m.sites.clear();
        assert_eq!(m.validate(), Err(ManifestError::Empty));

        let mut m = ok.clone();
        m.sites.push(m.sites[0]);
        assert_eq!(m.validate(), Err(ManifestError::DuplicateSite(SiteId(0))));

        let mut m = ok.clone();
        m.max_unavailable = 0;
        assert_eq!(m.validate(), Err(ManifestError::ZeroMaxUnavailable));

        let mut m = ok;
        m.step_timeout = SimDuration::ZERO;
        assert_eq!(m.validate(), Err(ManifestError::ZeroStepTimeout));
    }

    #[test]
    fn validate_rejects_degenerate_moves() {
        let ok = ClusterManifest::rolling_restart(
            &[(SiteId(0), 1), (SiteId(1), 1)],
            1,
            SimDuration::from_secs(1),
        );
        let mv = |lo, hi, from, to| MoveRange {
            lo,
            hi,
            from: SiteId(from),
            to: SiteId(to),
        };

        let mut m = ok.clone();
        m.moves = vec![mv(0, 100, 0, 1)];
        assert_eq!(m.validate(), Ok(()));

        let mut m = ok.clone();
        m.moves = vec![mv(100, 100, 0, 1)];
        assert_eq!(m.validate(), Err(ManifestError::EmptyMove));

        let mut m = ok.clone();
        m.moves = vec![mv(0, 100, 1, 1)];
        assert_eq!(m.validate(), Err(ManifestError::MoveToSelf(SiteId(1))));

        let mut m = ok;
        m.moves = vec![mv(0, 100, 0, 7)];
        assert_eq!(m.validate(), Err(ManifestError::MoveUnknownSite(SiteId(7))));
    }

    #[test]
    fn validate_rejects_degenerate_tiers() {
        let ok = ClusterManifest::rolling_restart(&[(SiteId(0), 1)], 1, SimDuration::from_secs(1));
        let row = |site, file, tier| TierAssignment {
            site: SiteId(site),
            file,
            tier,
        };
        let bs = ConsistencyTier::BoundedStale {
            ttl: SimDuration::from_millis(5),
        };

        let mut m = ok.clone();
        m.tiers = vec![row(0, 0, bs)];
        assert_eq!(m.validate(), Ok(()));
        assert_eq!(m.tier_sites(), vec![SiteId(0)]);
        assert_eq!(
            m.tiers_fp_for(SiteId(0)),
            tiers_fingerprint([EdgeTierSpec { file: 0, tier: bs }])
        );

        let mut m = ok.clone();
        m.tiers = vec![row(7, 0, bs)];
        assert_eq!(m.validate(), Err(ManifestError::TierUnknownSite(SiteId(7))));

        let mut m = ok.clone();
        m.tiers = vec![row(0, 2, bs), row(0, 2, ConsistencyTier::Strict)];
        assert_eq!(
            m.validate(),
            Err(ManifestError::DuplicateTier(SiteId(0), 2))
        );

        let mut m = ok;
        m.tiers = vec![row(
            0,
            0,
            ConsistencyTier::WatchBased {
                fallback_ttl: SimDuration::ZERO,
            },
        )];
        assert_eq!(
            m.validate(),
            Err(ManifestError::ZeroTierBound(SiteId(0), 0))
        );
    }
}
