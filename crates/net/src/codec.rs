//! Wire framing: length-prefixed serde/JSON frames over a byte stream.
//!
//! The in-process transports move typed messages directly; this codec is
//! what a TCP deployment of the peer-servers architecture would put on
//! each connection (one frame per protocol message, preserving per-path
//! FIFO exactly like an SP2 switch connection). It is exercised by the
//! test suite to guarantee every protocol message survives a byte-level
//! round trip.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

/// Maximum frame size accepted (1 GiB guard against corrupt prefixes).
const MAX_FRAME: u32 = 1 << 30;

/// Errors from the frame codec.
#[derive(Debug)]
pub enum CodecError {
    /// The payload failed to (de)serialize.
    Serde(String),
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized(u32),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Serde(e) => write!(f, "frame serde error: {e}"),
            CodecError::Oversized(n) => write!(f, "frame of {n} bytes exceeds the limit"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encodes one message as a length-prefixed frame, appending to `out`.
///
/// # Errors
///
/// [`CodecError::Serde`] if the message fails to serialize.
pub fn encode_frame<M: Serialize>(msg: &M, out: &mut BytesMut) -> Result<(), CodecError> {
    let payload = serde_json::to_vec(msg).map_err(|e| CodecError::Serde(e.to_string()))?;
    out.reserve(4 + payload.len());
    out.put_u32(payload.len() as u32);
    out.put_slice(&payload);
    Ok(())
}

/// Attempts to decode one frame from the front of `buf`. Returns
/// `Ok(None)` when more bytes are needed (the buffer is untouched then).
///
/// # Errors
///
/// [`CodecError::Oversized`] on an absurd length prefix;
/// [`CodecError::Serde`] on a corrupt payload.
pub fn decode_frame<M: DeserializeOwned>(buf: &mut BytesMut) -> Result<Option<M>, CodecError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let Ok(prefix) = <[u8; 4]>::try_from(&buf[0..4]) else {
        // Unreachable after the length check, but a malformed peer
        // stream must never panic the reader thread.
        return Err(CodecError::Serde("short length prefix".to_string()));
    };
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME {
        return Err(CodecError::Oversized(len));
    }
    if buf.len() < 4 + len as usize {
        return Ok(None);
    }
    buf.advance(4);
    let payload: Bytes = buf.split_to(len as usize).freeze();
    serde_json::from_slice(&payload)
        .map(Some)
        .map_err(|e| CodecError::Serde(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Deserialize;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Probe {
        a: u64,
        b: Vec<u8>,
        c: String,
    }

    fn probe(n: u64) -> Probe {
        Probe {
            a: n,
            b: vec![n as u8; (n % 17) as usize],
            c: format!("msg-{n}"),
        }
    }

    #[test]
    fn roundtrip_single_frame() {
        let mut buf = BytesMut::new();
        encode_frame(&probe(7), &mut buf).unwrap();
        let got: Probe = decode_frame(&mut buf).unwrap().unwrap();
        assert_eq!(got, probe(7));
        assert!(buf.is_empty());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_frame(&probe(3), &mut full).unwrap();
        let mut buf = BytesMut::new();
        for (i, b) in full.iter().enumerate() {
            buf.put_u8(*b);
            let r: Option<Probe> = decode_frame(&mut buf).unwrap();
            if i + 1 < full.len() {
                assert!(r.is_none(), "frame decoded early at byte {i}");
            } else {
                assert_eq!(r, Some(probe(3)));
            }
        }
    }

    #[test]
    fn many_frames_stream_in_order() {
        let mut buf = BytesMut::new();
        for n in 0..20 {
            encode_frame(&probe(n), &mut buf).unwrap();
        }
        for n in 0..20 {
            let got: Probe = decode_frame(&mut buf).unwrap().unwrap();
            assert_eq!(got, probe(n), "frame {n} out of order");
        }
        assert!(decode_frame::<Probe>(&mut buf).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(u32::MAX);
        buf.put_slice(b"junk");
        assert!(matches!(
            decode_frame::<Probe>(&mut buf),
            Err(CodecError::Oversized(_))
        ));
    }

    #[test]
    fn corrupt_payload_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(4);
        buf.put_slice(b"!!!!");
        assert!(matches!(
            decode_frame::<Probe>(&mut buf),
            Err(CodecError::Serde(_))
        ));
    }
}
