//! Fault injection at the physical transport boundary (feature
//! `fault-inject`).
//!
//! The deterministic chaos harness lives in `pscc-sim`, where virtual
//! time makes every schedule reproducible. This module is the
//! real-socket counterpart: a hook consulted by [`crate::tcp::TcpNode`]
//! before every frame write, so chaos experiments can also run over
//! genuine TCP (dropped and duplicated frames; delays and partitions
//! compose from repeated drops on the caller's side). It is compiled
//! out entirely without the feature — production builds carry no hook,
//! no branch, no cost.

use crate::PathId;
use pscc_common::SiteId;

/// What to do with one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Write it normally.
    Deliver,
    /// Silently discard it (a lost frame).
    Drop,
    /// Write it twice on the same ordered stream (a duplicated frame).
    Duplicate,
}

/// A hook deciding the fate of each outgoing frame, keyed by
/// destination and path. Must be deterministic in its own right (e.g.
/// seeded) if the experiment is to be reproducible.
pub type FaultHook = Box<dyn Fn(SiteId, PathId) -> FaultAction + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hook_type_is_usable() {
        let hook: FaultHook = Box::new(|to, _| {
            if to == SiteId(7) {
                FaultAction::Drop
            } else {
                FaultAction::Deliver
            }
        });
        assert_eq!(hook(SiteId(7), PathId(0)), FaultAction::Drop);
        assert_eq!(hook(SiteId(1), PathId(0)), FaultAction::Deliver);
    }
}
