//! A real TCP deployment of the multi-path transport: one TCP connection
//! per ordered `(source, path)` pair into each destination, carrying
//! length-prefixed frames (see [`crate::codec`]). TCP gives exactly the
//! paper's Fig. 2 semantics — order preserved along each connection,
//! none across connections — so the engine's race handling is exercised
//! by a genuine network stack.
//!
//! Topology: every node listens on one address; outgoing connections are
//! opened lazily per `(destination, path)` and announce `(site, path)`
//! in a handshake frame. A reader thread per accepted connection decodes
//! frames into the node's mailbox.

use crate::codec::{decode_frame, encode_frame};
use crate::{Envelope, LaneClassifier, PathId, Transport, DEFAULT_MAILBOX_CAPACITY};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendError, Sender};
use pscc_common::SiteId;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Debug, Serialize, Deserialize)]
struct Handshake {
    site: u32,
    path: u8,
}

/// Wire-level counters of one [`TcpNode`], shared with its reader
/// threads. Message frames only — handshake frames are excluded from
/// frame counts (their bytes still count on the receive side, where the
/// stream is read as a whole).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Message frames written.
    pub frames_sent: AtomicU64,
    /// Bytes written (encoded frames, length prefix included).
    pub bytes_sent: AtomicU64,
    /// Message frames decoded.
    pub frames_received: AtomicU64,
    /// Bytes read off accepted connections.
    pub bytes_received: AtomicU64,
    /// Send attempts retried after a connect/write failure.
    pub retries: AtomicU64,
    /// Connections that died: read/decode errors, peer closes, and sends
    /// abandoned after the retry budget. Never silently swallowed.
    pub disconnects: AtomicU64,
}

impl NetStats {
    /// Exports the counters into a metrics registry under `net_*` names.
    pub fn export(&self, reg: &mut pscc_obs::MetricsRegistry) {
        reg.counter("net_frames_sent", self.frames_sent.load(Ordering::Relaxed));
        reg.counter("net_bytes_sent", self.bytes_sent.load(Ordering::Relaxed));
        reg.counter(
            "net_frames_received",
            self.frames_received.load(Ordering::Relaxed),
        );
        reg.counter(
            "net_bytes_received",
            self.bytes_received.load(Ordering::Relaxed),
        );
        reg.counter("net_retries", self.retries.load(Ordering::Relaxed));
        reg.counter("net_disconnects", self.disconnects.load(Ordering::Relaxed));
    }
}

/// Shared optional trace sink: reader threads and the send path record
/// disconnect/retry events through it when a harness installs a handle.
type SharedTrace = Arc<Mutex<Option<pscc_obs::event::TraceHandle>>>;

fn trace_record(trace: &SharedTrace, kind: pscc_obs::EventKind) {
    if let Ok(guard) = trace.lock() {
        if let Some(h) = guard.as_ref() {
            h.record(kind);
        }
    }
}

/// The placeholder peer id recorded for a connection that died before
/// its handshake identified the sender.
const UNKNOWN_PEER: SiteId = SiteId(u32::MAX);

/// Poll slice of the two-lane receive loop (priority drained first).
const RECV_POLL_SLICE: Duration = Duration::from_micros(500);

/// The bounded, two-lane mailbox as seen by reader threads. Inserts
/// block when a lane is full — the reader then stops reading its socket,
/// the kernel's TCP window fills, and the *sender's* retry loop takes
/// over: bounded memory with no message loss.
struct MailboxTx<M> {
    prio: Sender<Envelope<M>>,
    bulk: Sender<Envelope<M>>,
    classify: Option<LaneClassifier<M>>,
}

impl<M> Clone for MailboxTx<M> {
    fn clone(&self) -> Self {
        MailboxTx {
            prio: self.prio.clone(),
            bulk: self.bulk.clone(),
            classify: self.classify.clone(),
        }
    }
}

impl<M> MailboxTx<M> {
    fn send(&self, env: Envelope<M>) -> Result<(), SendError<Envelope<M>>> {
        let prio = self.classify.as_ref().is_none_or(|c| c(&env.msg));
        if prio {
            self.prio.send(env)
        } else {
            self.bulk.send(env)
        }
    }
}

/// One site of a TCP-connected peer-servers deployment.
pub struct TcpNode<M> {
    site: SiteId,
    peers: HashMap<SiteId, SocketAddr>,
    // (dst, path) -> established outgoing connection.
    conns: Mutex<HashMap<(SiteId, PathId), TcpStream>>,
    prio_rx: Receiver<Envelope<M>>,
    bulk_rx: Receiver<Envelope<M>>,
    mailbox_tx: MailboxTx<M>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    stats: Arc<NetStats>,
    trace: SharedTrace,
    // Reconnect policy (see `configure_retry`).
    backoff_base: Duration,
    backoff_max: Duration,
    max_retries: u32,
    #[cfg(feature = "fault-inject")]
    fault_hook: Mutex<Option<crate::fault::FaultHook>>,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpNode<M> {
    /// Binds `listen` and starts accepting; `peers` maps every other
    /// site to its listen address.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(
        site: SiteId,
        listen: SocketAddr,
        peers: HashMap<SiteId, SocketAddr>,
    ) -> std::io::Result<Self> {
        Self::start_bounded(site, listen, peers, DEFAULT_MAILBOX_CAPACITY, None)
    }

    /// Like [`TcpNode::start`] with explicit overload knobs: per-lane
    /// mailbox `capacity` (from `SystemConfig::mailbox_capacity`) and an
    /// optional classifier routing consistency traffic onto a priority
    /// lane that [`Transport::recv_timeout`] drains first. Without a
    /// classifier all traffic uses the priority lane.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn start_bounded(
        site: SiteId,
        listen: SocketAddr,
        peers: HashMap<SiteId, SocketAddr>,
        capacity: usize,
        classify: Option<LaneClassifier<M>>,
    ) -> std::io::Result<Self> {
        assert!(capacity > 0, "need a non-zero mailbox capacity");
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let (ptx, prx) = bounded(capacity);
        let (btx, brx) = bounded(capacity);
        let tx = MailboxTx {
            prio: ptx,
            bulk: btx,
            classify,
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let trace: SharedTrace = Arc::new(Mutex::new(None));
        let acceptor = {
            let tx = tx.clone();
            let stop = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            let trace = Arc::clone(&trace);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true).ok();
                            stream.set_nonblocking(false).ok();
                            let tx = tx.clone();
                            let stop = Arc::clone(&stop);
                            let stats = Arc::clone(&stats);
                            let trace = Arc::clone(&trace);
                            std::thread::spawn(move || reader_loop(stream, tx, stop, stats, trace));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => return,
                    }
                }
            })
        };
        Ok(TcpNode {
            site,
            peers,
            conns: Mutex::new(HashMap::new()),
            prio_rx: prx,
            bulk_rx: brx,
            mailbox_tx: tx,
            shutdown,
            acceptor: Some(acceptor),
            stats,
            trace,
            backoff_base: Duration::from_millis(10),
            backoff_max: Duration::from_millis(1_000),
            max_retries: 5,
            #[cfg(feature = "fault-inject")]
            fault_hook: Mutex::new(None),
        })
    }

    /// Overrides the reconnect policy (defaults: 10 ms base doubling to
    /// a 1 s cap, 5 retries). Mirrors the `net_backoff_*` knobs of
    /// `SystemConfig`.
    pub fn configure_retry(&mut self, base: Duration, max: Duration, retries: u32) {
        self.backoff_base = base;
        self.backoff_max = max;
        self.max_retries = retries;
    }

    /// Installs a trace handle; disconnects and retries are recorded as
    /// protocol events from then on (including from reader threads).
    pub fn set_trace(&self, handle: pscc_obs::event::TraceHandle) {
        if let Ok(mut guard) = self.trace.lock() {
            *guard = Some(handle);
        }
    }

    /// Installs a fault-injection hook consulted before every physical
    /// write (chaos testing over real sockets).
    #[cfg(feature = "fault-inject")]
    pub fn set_fault_hook(&self, hook: crate::fault::FaultHook) {
        if let Ok(mut guard) = self.fault_hook.lock() {
            *guard = Some(hook);
        }
    }

    /// The local mailbox sender (loopback injection in tests). Injected
    /// messages travel the priority lane.
    pub fn loopback(&self) -> Sender<Envelope<M>> {
        self.mailbox_tx.prio.clone()
    }

    /// This node's wire-level counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Current mailbox depth (both lanes) — the queue gauge harnesses
    /// export per node.
    pub fn queue_depth(&self) -> usize {
        self.prio_rx.len() + self.bulk_rx.len()
    }

    fn connection(&self, to: SiteId, path: PathId) -> std::io::Result<TcpStream> {
        let mut conns = self.conns.lock().expect("conns poisoned");
        if let Some(c) = conns.get(&(to, path)) {
            return c.try_clone();
        }
        let addr = self.peers.get(&to).copied().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, format!("unknown peer {to}"))
        })?;
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Handshake: identify (site, path) for this connection.
        let mut buf = BytesMut::new();
        encode_frame(
            &Handshake {
                site: self.site.0,
                path: path.0,
            },
            &mut buf,
        )
        .map_err(|e| std::io::Error::other(e.to_string()))?;
        stream.write_all(&buf)?;
        let clone = stream.try_clone()?;
        conns.insert((to, path), stream);
        Ok(clone)
    }

    /// One write attempt: (re)establish the connection and write the
    /// whole frame. On failure the cached connection is dropped so the
    /// next attempt redials instead of reusing a dead socket.
    fn try_write(&self, to: SiteId, path: PathId, buf: &[u8]) -> std::io::Result<()> {
        let mut stream = self.connection(to, path)?;
        match stream.write_all(buf) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.conns.lock().map(|mut c| c.remove(&(to, path))).ok();
                Err(e)
            }
        }
    }

    /// Stops the acceptor and closes connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.conns.lock().expect("conns poisoned").clear();
    }
}

impl<M> Drop for TcpNode<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop<M: DeserializeOwned + Send + 'static>(
    mut stream: TcpStream,
    tx: MailboxTx<M>,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
    trace: SharedTrace,
) {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut buf = BytesMut::new();
    let mut from: Option<(SiteId, PathId)> = None;
    let mut chunk = [0u8; 16 * 1024];
    // Records the connection's death before the thread exits, so no
    // failure path is silent.
    let disconnect = |peer: Option<(SiteId, PathId)>, why: &str| {
        stats.disconnects.fetch_add(1, Ordering::Relaxed);
        let peer = peer.map_or(UNKNOWN_PEER, |(s, _)| s);
        trace_record(&trace, pscc_obs::EventKind::NetDisconnect { peer });
        let _ = why; // kept for debugger visibility in the closure frame
    };
    loop {
        if stop.load(Ordering::Relaxed) {
            return; // orderly local shutdown, not a disconnect
        }
        // Drain complete frames already buffered.
        loop {
            if from.is_none() {
                match decode_frame::<Handshake>(&mut buf) {
                    Ok(Some(h)) => from = Some((SiteId(h.site), PathId(h.path))),
                    Ok(None) => break,
                    Err(_) => {
                        disconnect(from, "bad handshake frame");
                        return;
                    }
                }
                continue;
            }
            match decode_frame::<M>(&mut buf) {
                Ok(Some(msg)) => {
                    stats.frames_received.fetch_add(1, Ordering::Relaxed);
                    let Some((site, path)) = from else {
                        // Unreachable (handshake decoded above), but a
                        // peer must never be able to panic this thread.
                        disconnect(None, "frame before handshake");
                        return;
                    };
                    if tx
                        .send(Envelope {
                            from: site,
                            to: SiteId(u32::MAX), // filled by receiver identity
                            path,
                            msg,
                        })
                        .is_err()
                    {
                        return; // local node dropped its mailbox
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    disconnect(from, "bad message frame");
                    return;
                }
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                disconnect(from, "peer closed");
                return;
            }
            Ok(n) => {
                stats.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                disconnect(from, "read error");
                return;
            }
        }
    }
}

impl<M: Serialize + DeserializeOwned + Send + 'static> Transport<M> for TcpNode<M> {
    fn send(&self, to: SiteId, path: PathId, msg: M) {
        #[cfg(feature = "spans")]
        let _span = pscc_obs::span("tcp_send");
        #[cfg(feature = "fault-inject")]
        let msg = {
            let action = self
                .fault_hook
                .lock()
                .ok()
                .and_then(|g| g.as_ref().map(|h| h(to, path)))
                .unwrap_or(crate::fault::FaultAction::Deliver);
            match action {
                crate::fault::FaultAction::Deliver => msg,
                crate::fault::FaultAction::Drop => return,
                crate::fault::FaultAction::Duplicate => {
                    // Physical duplicate on the same ordered stream.
                    let mut buf = BytesMut::new();
                    if encode_frame(&msg, &mut buf).is_ok()
                        && self.try_write(to, path, &buf).is_ok()
                    {
                        self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                        self.stats
                            .bytes_sent
                            .fetch_add(buf.len() as u64, Ordering::Relaxed);
                    }
                    msg
                }
            }
        };
        let mut buf = BytesMut::new();
        if encode_frame(&msg, &mut buf).is_err() {
            return; // local serialization bug; nothing to retry
        }
        // Retry with exponential backoff + reconnect instead of dying
        // silently on the first connect/write failure.
        let mut delay = self.backoff_base;
        for attempt in 0..=self.max_retries {
            if attempt > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                trace_record(
                    &self.trace,
                    pscc_obs::EventKind::NetRetry { peer: to, attempt },
                );
                std::thread::sleep(delay);
                delay = (delay * 2).min(self.backoff_max);
            }
            if self.try_write(to, path, &buf).is_ok() {
                self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .bytes_sent
                    .fetch_add(buf.len() as u64, Ordering::Relaxed);
                return;
            }
        }
        // Retry budget exhausted: the peer is unreachable. Surface it.
        self.stats.disconnects.fetch_add(1, Ordering::Relaxed);
        trace_record(&self.trace, pscc_obs::EventKind::NetDisconnect { peer: to });
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        let deadline = std::time::Instant::now() + timeout;
        let stamp = |mut e: Envelope<M>| {
            e.to = self.site;
            e
        };
        loop {
            // Priority lane first, so consistency traffic is never stuck
            // behind a backlog of bulk fetches.
            if let Ok(e) = self.prio_rx.try_recv() {
                return Some(stamp(e));
            }
            if let Ok(e) = self.bulk_rx.try_recv() {
                return Some(stamp(e));
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let slice = RECV_POLL_SLICE.min(deadline - now);
            match self.prio_rx.recv_timeout(slice) {
                Ok(e) => return Some(stamp(e)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    let left = deadline.saturating_duration_since(std::time::Instant::now());
                    return self.bulk_rx.recv_timeout(left).ok().map(stamp);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_of(listener: &TcpListener) -> SocketAddr {
        listener.local_addr().expect("bound")
    }

    fn two_nodes() -> (TcpNode<String>, TcpNode<String>) {
        // Bind ephemeral ports first to learn the addresses.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = addr_of(&l0);
        let a1 = addr_of(&l1);
        drop((l0, l1));
        let peers0: HashMap<SiteId, SocketAddr> = [(SiteId(1), a1)].into();
        let peers1: HashMap<SiteId, SocketAddr> = [(SiteId(0), a0)].into();
        let n0 = TcpNode::start(SiteId(0), a0, peers0).unwrap();
        let n1 = TcpNode::start(SiteId(1), a1, peers1).unwrap();
        (n0, n1)
    }

    #[test]
    fn tcp_roundtrip_with_handshake() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(0), "hello".to_string());
        let env = n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(env.from, SiteId(0));
        assert_eq!(env.to, SiteId(1));
        assert_eq!(env.path, PathId(0));
        assert_eq!(env.msg, "hello");
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_per_path_fifo() {
        let (n0, n1) = two_nodes();
        for i in 0..50 {
            n0.send(SiteId(1), PathId((i % 3) as u8), format!("{i}"));
        }
        let mut per_path: HashMap<PathId, Vec<u64>> = HashMap::new();
        for _ in 0..50 {
            let env = n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
            per_path
                .entry(env.path)
                .or_default()
                .push(env.msg.parse().unwrap());
        }
        for (_, seq) in per_path {
            let mut sorted = seq.clone();
            sorted.sort();
            assert_eq!(seq, sorted, "per-path order violated over TCP");
        }
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_stats_count_frames_and_bytes() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(0), "count me".to_string());
        let env = n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(env.msg, "count me");
        assert_eq!(n0.stats().frames_sent.load(Ordering::Relaxed), 1);
        assert!(n0.stats().bytes_sent.load(Ordering::Relaxed) > 0);
        assert_eq!(n1.stats().frames_received.load(Ordering::Relaxed), 1);
        assert!(n1.stats().bytes_received.load(Ordering::Relaxed) > 0);
        let mut reg = pscc_obs::MetricsRegistry::new();
        n0.stats().export(&mut reg);
        assert_eq!(reg.counter_value("net_frames_sent"), Some(1));
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_send_retries_then_reports_disconnect() {
        // No one listens at the peer address: every attempt fails.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = addr_of(&l0);
        let l_dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let a_dead = addr_of(&l_dead);
        drop((l0, l_dead));
        let peers: HashMap<SiteId, SocketAddr> = [(SiteId(1), a_dead)].into();
        let mut n0 = TcpNode::<String>::start(SiteId(0), a0, peers).unwrap();
        n0.configure_retry(Duration::from_millis(1), Duration::from_millis(4), 3);
        let trace = pscc_obs::event::TraceHandle::new(SiteId(0), 64);
        n0.set_trace(trace.clone());
        n0.send(SiteId(1), PathId(0), "lost".to_string());
        assert_eq!(n0.stats().retries.load(Ordering::Relaxed), 3);
        assert_eq!(n0.stats().disconnects.load(Ordering::Relaxed), 1);
        assert_eq!(n0.stats().frames_sent.load(Ordering::Relaxed), 0);
        let events = trace.snapshot();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, pscc_obs::EventKind::NetRetry { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, pscc_obs::EventKind::NetDisconnect { .. })));
        let mut reg = pscc_obs::MetricsRegistry::new();
        n0.stats().export(&mut reg);
        assert_eq!(reg.counter_value("net_retries"), Some(3));
        assert_eq!(reg.counter_value("net_disconnects"), Some(1));
        n0.shutdown();
    }

    #[test]
    fn tcp_reader_counts_peer_disconnect() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(0), "warmup".to_string());
        n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        n0.shutdown(); // closes the established connection into n1
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while n1.stats().disconnects.load(Ordering::Relaxed) == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            n1.stats().disconnects.load(Ordering::Relaxed) >= 1,
            "peer close was swallowed"
        );
        n1.shutdown();
    }

    #[cfg(feature = "fault-inject")]
    #[test]
    fn tcp_fault_hook_drops_and_duplicates() {
        use std::sync::atomic::AtomicUsize;
        let (n0, n1) = two_nodes();
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        n0.set_fault_hook(Box::new(move |_, _| {
            match c.fetch_add(1, Ordering::Relaxed) {
                0 => crate::fault::FaultAction::Drop,
                1 => crate::fault::FaultAction::Duplicate,
                _ => crate::fault::FaultAction::Deliver,
            }
        }));
        n0.send(SiteId(1), PathId(0), "dropped".to_string());
        n0.send(SiteId(1), PathId(0), "duped".to_string());
        n0.send(SiteId(1), PathId(0), "normal".to_string());
        let mut got = Vec::new();
        while let Some(env) = n1.recv_timeout(Duration::from_millis(500)) {
            got.push(env.msg);
        }
        assert_eq!(got, vec!["duped", "duped", "normal"]);
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_priority_lane_drained_first() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = addr_of(&l0);
        let a1 = addr_of(&l1);
        drop((l0, l1));
        let peers0: HashMap<SiteId, SocketAddr> = [(SiteId(1), a1)].into();
        let peers1: HashMap<SiteId, SocketAddr> = [(SiteId(0), a0)].into();
        // Messages starting with '!' are consistency traffic.
        let classify: LaneClassifier<String> = Arc::new(|m: &String| m.starts_with('!'));
        let n0 = TcpNode::<String>::start(SiteId(0), a0, peers0).unwrap();
        let n1 =
            TcpNode::<String>::start_bounded(SiteId(1), a1, peers1, 16, Some(classify)).unwrap();
        n0.send(SiteId(1), PathId(0), "bulk-a".to_string());
        n0.send(SiteId(1), PathId(0), "bulk-b".to_string());
        n0.send(SiteId(1), PathId(0), "!urgent".to_string());
        // Wait for all three to be decoded into the mailbox before
        // draining, so lane order (not arrival timing) decides.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while n1.queue_depth() < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(n1.queue_depth(), 3);
        let got: Vec<String> = (0..3)
            .map(|_| {
                n1.recv_timeout(Duration::from_secs(5))
                    .expect("delivery")
                    .msg
            })
            .collect();
        assert_eq!(got, vec!["!urgent", "bulk-a", "bulk-b"]);
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_bidirectional() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(1), "ping".to_string());
        let env = n1.recv_timeout(Duration::from_secs(5)).expect("ping");
        assert_eq!(env.msg, "ping");
        n1.send(SiteId(0), PathId(2), "pong".to_string());
        let env = n0.recv_timeout(Duration::from_secs(5)).expect("pong");
        assert_eq!(env.msg, "pong");
        assert_eq!(env.from, SiteId(1));
        n0.shutdown();
        n1.shutdown();
    }
}
