//! A real TCP deployment of the multi-path transport: one TCP connection
//! per ordered `(source, path)` pair into each destination, carrying
//! length-prefixed frames (see [`crate::codec`]). TCP gives exactly the
//! paper's Fig. 2 semantics — order preserved along each connection,
//! none across connections — so the engine's race handling is exercised
//! by a genuine network stack.
//!
//! Topology: every node listens on one address; outgoing connections are
//! opened lazily per `(destination, path)` and announce `(site, path)`
//! in a handshake frame. A reader thread per accepted connection decodes
//! frames into the node's mailbox.

use crate::codec::{decode_frame, encode_frame};
use crate::{Envelope, PathId, Transport};
use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pscc_common::SiteId;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Debug, Serialize, Deserialize)]
struct Handshake {
    site: u32,
    path: u8,
}

/// Wire-level counters of one [`TcpNode`], shared with its reader
/// threads. Message frames only — handshake frames are excluded from
/// frame counts (their bytes still count on the receive side, where the
/// stream is read as a whole).
#[derive(Debug, Default)]
pub struct NetStats {
    /// Message frames written.
    pub frames_sent: AtomicU64,
    /// Bytes written (encoded frames, length prefix included).
    pub bytes_sent: AtomicU64,
    /// Message frames decoded.
    pub frames_received: AtomicU64,
    /// Bytes read off accepted connections.
    pub bytes_received: AtomicU64,
}

impl NetStats {
    /// Exports the counters into a metrics registry under `net_*` names.
    pub fn export(&self, reg: &mut pscc_obs::MetricsRegistry) {
        reg.counter("net_frames_sent", self.frames_sent.load(Ordering::Relaxed));
        reg.counter("net_bytes_sent", self.bytes_sent.load(Ordering::Relaxed));
        reg.counter(
            "net_frames_received",
            self.frames_received.load(Ordering::Relaxed),
        );
        reg.counter(
            "net_bytes_received",
            self.bytes_received.load(Ordering::Relaxed),
        );
    }
}

/// One site of a TCP-connected peer-servers deployment.
pub struct TcpNode<M> {
    site: SiteId,
    peers: HashMap<SiteId, SocketAddr>,
    // (dst, path) -> established outgoing connection.
    conns: Mutex<HashMap<(SiteId, PathId), TcpStream>>,
    mailbox_rx: Receiver<Envelope<M>>,
    mailbox_tx: Sender<Envelope<M>>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    stats: Arc<NetStats>,
}

impl<M: Serialize + DeserializeOwned + Send + 'static> TcpNode<M> {
    /// Binds `listen` and starts accepting; `peers` maps every other
    /// site to its listen address.
    ///
    /// # Errors
    ///
    /// I/O errors from binding the listener.
    pub fn start(
        site: SiteId,
        listen: SocketAddr,
        peers: HashMap<SiteId, SocketAddr>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(NetStats::default());
        let acceptor = {
            let tx = tx.clone();
            let stop = Arc::clone(&shutdown);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            stream.set_nodelay(true).ok();
                            stream.set_nonblocking(false).ok();
                            let tx = tx.clone();
                            let stop = Arc::clone(&stop);
                            let stats = Arc::clone(&stats);
                            std::thread::spawn(move || reader_loop(stream, tx, stop, stats));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => return,
                    }
                }
            })
        };
        Ok(TcpNode {
            site,
            peers,
            conns: Mutex::new(HashMap::new()),
            mailbox_rx: rx,
            mailbox_tx: tx,
            shutdown,
            acceptor: Some(acceptor),
            stats,
        })
    }

    /// The local mailbox sender (loopback injection in tests).
    pub fn loopback(&self) -> Sender<Envelope<M>> {
        self.mailbox_tx.clone()
    }

    /// This node's wire-level counters.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    fn connection(&self, to: SiteId, path: PathId) -> std::io::Result<TcpStream> {
        let mut conns = self.conns.lock().expect("conns poisoned");
        if let Some(c) = conns.get(&(to, path)) {
            return c.try_clone();
        }
        let addr = self.peers.get(&to).copied().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, format!("unknown peer {to}"))
        })?;
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Handshake: identify (site, path) for this connection.
        let mut buf = BytesMut::new();
        encode_frame(
            &Handshake {
                site: self.site.0,
                path: path.0,
            },
            &mut buf,
        )
        .map_err(|e| std::io::Error::other(e.to_string()))?;
        stream.write_all(&buf)?;
        let clone = stream.try_clone()?;
        conns.insert((to, path), stream);
        Ok(clone)
    }

    /// Stops the acceptor and closes connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.conns.lock().expect("conns poisoned").clear();
    }
}

impl<M> Drop for TcpNode<M> {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop<M: DeserializeOwned + Send + 'static>(
    mut stream: TcpStream,
    tx: Sender<Envelope<M>>,
    stop: Arc<AtomicBool>,
    stats: Arc<NetStats>,
) {
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .ok();
    let mut buf = BytesMut::new();
    let mut from: Option<(SiteId, PathId)> = None;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        // Drain complete frames already buffered.
        loop {
            if from.is_none() {
                match decode_frame::<Handshake>(&mut buf) {
                    Ok(Some(h)) => from = Some((SiteId(h.site), PathId(h.path))),
                    Ok(None) => break,
                    Err(_) => return,
                }
                continue;
            }
            match decode_frame::<M>(&mut buf) {
                Ok(Some(msg)) => {
                    stats.frames_received.fetch_add(1, Ordering::Relaxed);
                    let (site, path) = from.expect("handshake first");
                    if tx
                        .send(Envelope {
                            from: site,
                            to: SiteId(u32::MAX), // filled by receiver identity
                            path,
                            msg,
                        })
                        .is_err()
                    {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return,
            }
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // closed
            Ok(n) => {
                stats.bytes_received.fetch_add(n as u64, Ordering::Relaxed);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

impl<M: Serialize + DeserializeOwned + Send + 'static> Transport<M> for TcpNode<M> {
    fn send(&self, to: SiteId, path: PathId, msg: M) {
        #[cfg(feature = "spans")]
        let _span = pscc_obs::span("tcp_send");
        let Ok(mut stream) = self.connection(to, path) else {
            return; // peer gone: drop, like a closed socket would
        };
        let mut buf = BytesMut::new();
        if encode_frame(&msg, &mut buf).is_ok() && stream.write_all(&buf).is_ok() {
            self.stats.frames_sent.fetch_add(1, Ordering::Relaxed);
            self.stats
                .bytes_sent
                .fetch_add(buf.len() as u64, Ordering::Relaxed);
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        self.mailbox_rx.recv_timeout(timeout).ok().map(|mut e| {
            e.to = self.site;
            e
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr_of(listener: &TcpListener) -> SocketAddr {
        listener.local_addr().expect("bound")
    }

    fn two_nodes() -> (TcpNode<String>, TcpNode<String>) {
        // Bind ephemeral ports first to learn the addresses.
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = addr_of(&l0);
        let a1 = addr_of(&l1);
        drop((l0, l1));
        let peers0: HashMap<SiteId, SocketAddr> = [(SiteId(1), a1)].into();
        let peers1: HashMap<SiteId, SocketAddr> = [(SiteId(0), a0)].into();
        let n0 = TcpNode::start(SiteId(0), a0, peers0).unwrap();
        let n1 = TcpNode::start(SiteId(1), a1, peers1).unwrap();
        (n0, n1)
    }

    #[test]
    fn tcp_roundtrip_with_handshake() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(0), "hello".to_string());
        let env = n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(env.from, SiteId(0));
        assert_eq!(env.to, SiteId(1));
        assert_eq!(env.path, PathId(0));
        assert_eq!(env.msg, "hello");
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_per_path_fifo() {
        let (n0, n1) = two_nodes();
        for i in 0..50 {
            n0.send(SiteId(1), PathId((i % 3) as u8), format!("{i}"));
        }
        let mut per_path: HashMap<PathId, Vec<u64>> = HashMap::new();
        for _ in 0..50 {
            let env = n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
            per_path
                .entry(env.path)
                .or_default()
                .push(env.msg.parse().unwrap());
        }
        for (_, seq) in per_path {
            let mut sorted = seq.clone();
            sorted.sort();
            assert_eq!(seq, sorted, "per-path order violated over TCP");
        }
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_stats_count_frames_and_bytes() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(0), "count me".to_string());
        let env = n1.recv_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(env.msg, "count me");
        assert_eq!(n0.stats().frames_sent.load(Ordering::Relaxed), 1);
        assert!(n0.stats().bytes_sent.load(Ordering::Relaxed) > 0);
        assert_eq!(n1.stats().frames_received.load(Ordering::Relaxed), 1);
        assert!(n1.stats().bytes_received.load(Ordering::Relaxed) > 0);
        let mut reg = pscc_obs::MetricsRegistry::new();
        n0.stats().export(&mut reg);
        assert_eq!(reg.counter_value("net_frames_sent"), Some(1));
        n0.shutdown();
        n1.shutdown();
    }

    #[test]
    fn tcp_bidirectional() {
        let (n0, n1) = two_nodes();
        n0.send(SiteId(1), PathId(1), "ping".to_string());
        let env = n1.recv_timeout(Duration::from_secs(5)).expect("ping");
        assert_eq!(env.msg, "ping");
        n1.send(SiteId(0), PathId(2), "pong".to_string());
        let env = n0.recv_timeout(Duration::from_secs(5)).expect("pong");
        assert_eq!(env.msg, "pong");
        assert_eq!(env.from, SiteId(1));
        n0.shutdown();
        n1.shutdown();
    }
}
