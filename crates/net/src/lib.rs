//! # pscc-net
//!
//! Inter-peer-server communication with the ordering semantics of the
//! paper's Fig. 2: *multiple* communication paths may exist between two
//! peer servers; message order is preserved **along each path**, but
//! messages sent on different paths can arrive out of order. All of the
//! race conditions of paper §4.2.4 (callback races, purge races,
//! deescalation races) stem from exactly this looseness, so the transport
//! reproduces it faithfully:
//!
//! * [`InProcNetwork`] — a crossbeam-channel network for the real
//!   multithreaded harness: one FIFO channel per `(src, dst, path)`
//!   triple; receivers merge across paths in arrival order.
//! * [`SeededNet`] — a single-threaded, deterministic message pool for
//!   simulation and race-exploration tests: per-path FIFO is enforced,
//!   and the *choice of which path delivers next* is driven by a seeded
//!   RNG, so every adversarial interleaving is reproducible.
//!
//! # Examples
//!
//! ```
//! use pscc_net::{InProcNetwork, PathId};
//! use pscc_common::SiteId;
//!
//! let net = InProcNetwork::<String>::new(&[SiteId(0), SiteId(1)], 2);
//! let a = net.endpoint(SiteId(0));
//! let b = net.endpoint(SiteId(1));
//! a.send(SiteId(1), PathId(0), "hello".to_string());
//! let env = b.recv().unwrap();
//! assert_eq!(env.msg, "hello");
//! assert_eq!(env.from, SiteId(0));
//! ```

pub mod codec;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod tcp;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use pscc_common::SiteId;
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::time::Duration;

/// One of the parallel communication paths between a pair of peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathId(pub u8);

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path{}", self.0)
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Which path carries it.
    pub path: PathId,
    /// The payload.
    pub msg: M,
}

// ---------------------------------------------------------------------
// Threaded network
// ---------------------------------------------------------------------

/// A crossbeam-channel network between a fixed set of sites with
/// `n_paths` independent FIFO paths per ordered pair.
#[derive(Debug)]
pub struct InProcNetwork<M> {
    n_paths: u8,
    // (src, dst) -> per-path senders into dst's mailbox.
    senders: HashMap<(SiteId, SiteId), Vec<Sender<Envelope<M>>>>,
    receivers: HashMap<SiteId, Receiver<Envelope<M>>>,
}

impl<M: Send + 'static> InProcNetwork<M> {
    /// Builds a network among `sites` with `n_paths` paths per pair.
    ///
    /// Each destination has a single mailbox; per-path FIFO holds because
    /// a path's messages pass through one channel and are enqueued by the
    /// sending thread in send order. Cross-path interleaving depends on
    /// thread scheduling, as on the SP2.
    ///
    /// # Panics
    ///
    /// Panics if `n_paths == 0`.
    pub fn new(sites: &[SiteId], n_paths: u8) -> Self {
        assert!(n_paths > 0, "need at least one path");
        let mut senders = HashMap::new();
        let mut receivers = HashMap::new();
        let mut mailbox_tx: HashMap<SiteId, Sender<Envelope<M>>> = HashMap::new();
        for &s in sites {
            let (tx, rx) = unbounded();
            mailbox_tx.insert(s, tx);
            receivers.insert(s, rx);
        }
        for &src in sites {
            for &dst in sites {
                if src == dst {
                    continue;
                }
                // All paths currently share the destination mailbox
                // channel; a dedicated channel per path plus a merger
                // thread would model separate TCP connections, but since
                // each sender thread writes in program order, per-path
                // FIFO already holds and cross-path reorder arises from
                // concurrent sender threads.
                let v = (0..n_paths).map(|_| mailbox_tx[&dst].clone()).collect();
                senders.insert((src, dst), v);
            }
        }
        InProcNetwork {
            n_paths,
            senders,
            receivers,
        }
    }

    /// An endpoint handle for `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` was not in the construction list.
    pub fn endpoint(&self, site: SiteId) -> Endpoint<M> {
        assert!(self.receivers.contains_key(&site), "unknown site {site}");
        let out = self
            .senders
            .iter()
            .filter(|((src, _), _)| *src == site)
            .map(|((_, dst), v)| (*dst, v.clone()))
            .collect();
        Endpoint {
            site,
            n_paths: self.n_paths,
            out,
            mailbox: self.receivers[&site].clone(),
        }
    }

    /// Number of paths per pair.
    pub fn n_paths(&self) -> u8 {
        self.n_paths
    }
}

/// A message transport as seen by one site: the engine harnesses are
/// generic over this, so the same driver loop runs over in-process
/// channels ([`Endpoint`]) and real sockets ([`tcp::TcpNode`]).
pub trait Transport<M> {
    /// Sends `msg` to `to` along `path` (best effort; a vanished peer
    /// behaves like a closed socket).
    fn send(&self, to: SiteId, path: PathId, msg: M);

    /// Waits up to `timeout` for the next inbound message.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>>;
}

/// One site's handle onto an [`InProcNetwork`].
#[derive(Debug, Clone)]
pub struct Endpoint<M> {
    site: SiteId,
    n_paths: u8,
    out: HashMap<SiteId, Vec<Sender<Envelope<M>>>>,
    mailbox: Receiver<Envelope<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Sends `msg` to `to` along `path`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown destination or path (protocol error).
    pub fn send(&self, to: SiteId, path: PathId, msg: M) {
        let chans = self
            .out
            .get(&to)
            .unwrap_or_else(|| panic!("unknown destination {to}"));
        assert!(path.0 < self.n_paths, "unknown {path}");
        // Receivers may have shut down during teardown; losing the
        // message then is fine.
        let _ = chans[path.0 as usize].send(Envelope {
            from: self.site,
            to,
            path,
            msg,
        });
    }

    /// Blocks until a message arrives; `None` when all senders are gone.
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.mailbox.recv().ok()
    }

    /// Waits up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvTimeoutError> {
        self.mailbox.recv_timeout(timeout)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.mailbox.try_recv().ok()
    }
}

impl<M: Send + 'static> Transport<M> for Endpoint<M> {
    fn send(&self, to: SiteId, path: PathId, msg: M) {
        Endpoint::send(self, to, path, msg);
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        Endpoint::recv_timeout(self, timeout).ok()
    }
}

// ---------------------------------------------------------------------
// Deterministic network
// ---------------------------------------------------------------------

/// A deterministic, single-threaded message pool with per-path FIFO and
/// seeded cross-path delivery order — the instrument used to drive the
/// race-condition tests of paper §4.2.4.
#[derive(Debug)]
pub struct SeededNet<M> {
    queues: HashMap<(SiteId, SiteId, PathId), VecDeque<M>>,
    in_flight: usize,
}

impl<M> Default for SeededNet<M> {
    fn default() -> Self {
        SeededNet {
            queues: HashMap::new(),
            in_flight: 0,
        }
    }
}

impl<M> SeededNet<M> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a message.
    pub fn send(&mut self, from: SiteId, to: SiteId, path: PathId, msg: M) {
        self.queues
            .entry((from, to, path))
            .or_default()
            .push_back(msg);
        self.in_flight += 1;
    }

    /// Messages currently in flight.
    pub fn len(&self) -> usize {
        self.in_flight
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Delivers the head of a uniformly chosen non-empty `(src, dst,
    /// path)` queue. Per-path FIFO is preserved; everything else is up to
    /// the seed — exactly the SP2's "loose ordering".
    pub fn deliver_next<R: Rng>(&mut self, rng: &mut R) -> Option<Envelope<M>> {
        if self.in_flight == 0 {
            return None;
        }
        let keys: Vec<(SiteId, SiteId, PathId)> = {
            let mut ks: Vec<_> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| *k)
                .collect();
            ks.sort(); // determinism independent of HashMap order
            ks
        };
        let k = keys[rng.gen_range(0..keys.len())];
        let msg = self.queues.get_mut(&k).and_then(VecDeque::pop_front)?;
        self.in_flight -= 1;
        Some(Envelope {
            from: k.0,
            to: k.1,
            path: k.2,
            msg,
        })
    }

    /// Delivers the oldest message of the given link-path FIFO, if any
    /// (targeted race construction in tests).
    pub fn deliver_from(&mut self, from: SiteId, to: SiteId, path: PathId) -> Option<Envelope<M>> {
        let msg = self
            .queues
            .get_mut(&(from, to, path))
            .and_then(VecDeque::pop_front)?;
        self.in_flight -= 1;
        Some(Envelope {
            from,
            to,
            path,
            msg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inproc_roundtrip_and_fifo_per_path() {
        let net = InProcNetwork::<u32>::new(&[SiteId(0), SiteId(1)], 3);
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        for i in 0..10 {
            a.send(SiteId(1), PathId(1), i);
        }
        let got: Vec<u32> = (0..10).map(|_| b.recv().unwrap().msg).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn inproc_try_recv_empty() {
        let net = InProcNetwork::<u32>::new(&[SiteId(0), SiteId(1)], 1);
        let b = net.endpoint(SiteId(1));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn inproc_cross_thread() {
        let net = InProcNetwork::<u32>::new(&[SiteId(0), SiteId(1)], 2);
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                a.send(SiteId(1), PathId((i % 2) as u8), i);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(b.recv().unwrap().msg);
        }
        h.join().unwrap();
        got.sort();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_net_preserves_per_path_fifo() {
        let mut net = SeededNet::new();
        let (s0, s1) = (SiteId(0), SiteId(1));
        for i in 0..20u32 {
            net.send(s0, s1, PathId((i % 2) as u8), i);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut per_path: HashMap<PathId, Vec<u32>> = HashMap::new();
        while let Some(env) = net.deliver_next(&mut rng) {
            per_path.entry(env.path).or_default().push(env.msg);
        }
        for (_, v) in per_path {
            let mut sorted = v.clone();
            sorted.sort();
            assert_eq!(v, sorted, "per-path order violated");
        }
        assert!(net.is_empty());
    }

    #[test]
    fn seeded_net_reorders_across_paths() {
        // With 2 paths, some seed must interleave them out of send order.
        let mut reordered = false;
        for seed in 0..20 {
            let mut net = SeededNet::new();
            net.send(SiteId(0), SiteId(1), PathId(0), 1u32);
            net.send(SiteId(0), SiteId(1), PathId(1), 2u32);
            let mut rng = StdRng::seed_from_u64(seed);
            let first = net.deliver_next(&mut rng).unwrap();
            if first.msg == 2 {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "no seed produced cross-path reordering");
    }

    #[test]
    fn seeded_net_is_deterministic() {
        let run = |seed| {
            let mut net = SeededNet::new();
            for i in 0..30u32 {
                net.send(SiteId(i % 3), SiteId((i + 1) % 3), PathId((i % 2) as u8), i);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order = Vec::new();
            while let Some(e) = net.deliver_next(&mut rng) {
                order.push(e.msg);
            }
            order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn deliver_from_is_targeted() {
        let mut net = SeededNet::new();
        net.send(SiteId(0), SiteId(1), PathId(0), 'a');
        net.send(SiteId(0), SiteId(1), PathId(1), 'b');
        let e = net.deliver_from(SiteId(0), SiteId(1), PathId(1)).unwrap();
        assert_eq!(e.msg, 'b');
        assert_eq!(net.len(), 1);
        assert!(net.deliver_from(SiteId(0), SiteId(1), PathId(1)).is_none());
    }
}
