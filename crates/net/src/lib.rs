//! # pscc-net
//!
//! Inter-peer-server communication with the ordering semantics of the
//! paper's Fig. 2: *multiple* communication paths may exist between two
//! peer servers; message order is preserved **along each path**, but
//! messages sent on different paths can arrive out of order. All of the
//! race conditions of paper §4.2.4 (callback races, purge races,
//! deescalation races) stem from exactly this looseness, so the transport
//! reproduces it faithfully:
//!
//! * [`InProcNetwork`] — a crossbeam-channel network for the real
//!   multithreaded harness: one FIFO channel per `(src, dst, path)`
//!   triple; receivers merge across paths in arrival order.
//! * [`SeededNet`] — a single-threaded, deterministic message pool for
//!   simulation and race-exploration tests: per-path FIFO is enforced,
//!   and the *choice of which path delivers next* is driven by a seeded
//!   RNG, so every adversarial interleaving is reproducible.
//!
//! ## Overload protection
//!
//! Every mailbox is **bounded** (`SystemConfig::mailbox_capacity` in the
//! harnesses; [`DEFAULT_MAILBOX_CAPACITY`] otherwise) and split into two
//! lanes. An optional [`LaneClassifier`] marks *consistency* traffic
//! (callbacks, commit decisions, rejoin handshakes, flow-control
//! verdicts); that lane is never shed and receivers drain it ahead of
//! the bulk lane, so a fetch flood cannot wedge the messages callback
//! locking depends on. Bulk-lane sends on a full mailbox wait briefly
//! and then drop — counted, never silent — which the engine's
//! timeout-and-retry machinery already tolerates. Without a classifier
//! all traffic uses the priority lane (bounded, blocking, lossless),
//! which preserves the historical unbounded-channel semantics for
//! message types the classifier has never seen.
//!
//! # Examples
//!
//! ```
//! use pscc_net::{InProcNetwork, PathId};
//! use pscc_common::SiteId;
//!
//! let net = InProcNetwork::<String>::new(&[SiteId(0), SiteId(1)], 2);
//! let a = net.endpoint(SiteId(0));
//! let b = net.endpoint(SiteId(1));
//! a.send(SiteId(1), PathId(0), "hello".to_string());
//! let env = b.recv().unwrap();
//! assert_eq!(env.msg, "hello");
//! assert_eq!(env.from, SiteId(0));
//! ```

pub mod codec;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod tcp;

use crossbeam::channel::{
    bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender, TrySendError,
};
use pscc_common::SiteId;
use rand::Rng;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default per-lane mailbox capacity when a harness does not size it
/// from `SystemConfig::mailbox_capacity`.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 4_096;

/// How long a bulk-lane send waits on a full mailbox before dropping the
/// message (counted via [`Endpoint::dropped`]). Short: the sender is an
/// engine thread whose time is better spent draining its own mailbox.
const BULK_FULL_TIMEOUT: Duration = Duration::from_millis(10);

/// Poll slice of the two-lane receive loop: how long a blocked receiver
/// parks on the priority lane before re-checking the bulk lane.
const RECV_POLL_SLICE: Duration = Duration::from_micros(500);

/// Decides the lane of an outbound message: `true` routes it onto the
/// never-shed priority (consistency) lane, `false` onto the sheddable
/// bulk lane. The engine's `Message::is_consistency` is the canonical
/// classifier; the transport stays generic over the payload type.
pub type LaneClassifier<M> = Arc<dyn Fn(&M) -> bool + Send + Sync>;

/// One of the parallel communication paths between a pair of peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PathId(pub u8);

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path{}", self.0)
    }
}

/// A message in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender site.
    pub from: SiteId,
    /// Destination site.
    pub to: SiteId,
    /// Which path carries it.
    pub path: PathId,
    /// The payload.
    pub msg: M,
}

// ---------------------------------------------------------------------
// Threaded network
// ---------------------------------------------------------------------

/// The two bounded mailbox lanes of one destination.
struct Lanes<M> {
    prio: Sender<Envelope<M>>,
    bulk: Sender<Envelope<M>>,
}

impl<M> Clone for Lanes<M> {
    fn clone(&self) -> Self {
        Lanes {
            prio: self.prio.clone(),
            bulk: self.bulk.clone(),
        }
    }
}

impl<M> fmt::Debug for Lanes<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Lanes(prio={}, bulk={})",
            self.prio.len(),
            self.bulk.len()
        )
    }
}

/// Paired (priority, bulk) receive ends of a site's mailbox.
type LaneReceivers<M> = (Receiver<Envelope<M>>, Receiver<Envelope<M>>);

/// A crossbeam-channel network between a fixed set of sites with
/// `n_paths` independent FIFO paths per ordered pair and bounded,
/// two-lane mailboxes (see the module docs on overload protection).
pub struct InProcNetwork<M> {
    n_paths: u8,
    // dst -> its mailbox lanes (every source shares them; per-path FIFO
    // holds because a sending thread enqueues in program order).
    senders: HashMap<SiteId, Lanes<M>>,
    receivers: HashMap<SiteId, LaneReceivers<M>>,
    classify: Option<LaneClassifier<M>>,
    /// Bulk-lane messages dropped on overflow, network-wide.
    dropped: Arc<AtomicU64>,
}

impl<M> fmt::Debug for InProcNetwork<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InProcNetwork")
            .field("n_paths", &self.n_paths)
            .field("sites", &self.receivers.len())
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl<M: Send + 'static> InProcNetwork<M> {
    /// Builds a network among `sites` with `n_paths` paths per pair,
    /// [`DEFAULT_MAILBOX_CAPACITY`] mailboxes, and no lane classifier
    /// (all traffic on the lossless priority lane).
    ///
    /// # Panics
    ///
    /// Panics if `n_paths == 0`.
    pub fn new(sites: &[SiteId], n_paths: u8) -> Self {
        Self::with_overload(sites, n_paths, DEFAULT_MAILBOX_CAPACITY, None)
    }

    /// Builds a network with explicit overload knobs: per-lane mailbox
    /// `capacity` (from `SystemConfig::mailbox_capacity`) and an
    /// optional lane classifier routing consistency traffic onto the
    /// never-shed priority lane.
    ///
    /// # Panics
    ///
    /// Panics if `n_paths == 0` or `capacity == 0`.
    pub fn with_overload(
        sites: &[SiteId],
        n_paths: u8,
        capacity: usize,
        classify: Option<LaneClassifier<M>>,
    ) -> Self {
        assert!(n_paths > 0, "need at least one path");
        assert!(capacity > 0, "need a non-zero mailbox capacity");
        let mut senders = HashMap::new();
        let mut receivers = HashMap::new();
        for &s in sites {
            let (ptx, prx) = bounded(capacity);
            let (btx, brx) = bounded(capacity);
            senders.insert(
                s,
                Lanes {
                    prio: ptx,
                    bulk: btx,
                },
            );
            receivers.insert(s, (prx, brx));
        }
        InProcNetwork {
            n_paths,
            senders,
            receivers,
            classify,
            dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// An endpoint handle for `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` was not in the construction list.
    pub fn endpoint(&self, site: SiteId) -> Endpoint<M> {
        assert!(self.receivers.contains_key(&site), "unknown site {site}");
        let out = self
            .senders
            .iter()
            .filter(|(dst, _)| **dst != site)
            .map(|(dst, lanes)| (*dst, lanes.clone()))
            .collect();
        let (prio_rx, bulk_rx) = self.receivers[&site].clone();
        Endpoint {
            site,
            n_paths: self.n_paths,
            out,
            prio_rx,
            bulk_rx,
            classify: self.classify.clone(),
            dropped: Arc::clone(&self.dropped),
        }
    }

    /// Number of paths per pair.
    pub fn n_paths(&self) -> u8 {
        self.n_paths
    }

    /// Current mailbox depth (both lanes) of `site` — the per-peer queue
    /// gauge harnesses export.
    pub fn queue_depth(&self, site: SiteId) -> usize {
        self.receivers
            .get(&site)
            .map_or(0, |(p, b)| p.len() + b.len())
    }

    /// Bulk-lane messages dropped on overflow so far, network-wide.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A message transport as seen by one site: the engine harnesses are
/// generic over this, so the same driver loop runs over in-process
/// channels ([`Endpoint`]) and real sockets ([`tcp::TcpNode`]).
pub trait Transport<M> {
    /// Sends `msg` to `to` along `path` (best effort; a vanished peer
    /// behaves like a closed socket).
    fn send(&self, to: SiteId, path: PathId, msg: M);

    /// Waits up to `timeout` for the next inbound message.
    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>>;
}

/// One site's handle onto an [`InProcNetwork`].
pub struct Endpoint<M> {
    site: SiteId,
    n_paths: u8,
    out: HashMap<SiteId, Lanes<M>>,
    prio_rx: Receiver<Envelope<M>>,
    bulk_rx: Receiver<Envelope<M>>,
    classify: Option<LaneClassifier<M>>,
    dropped: Arc<AtomicU64>,
}

impl<M> Clone for Endpoint<M> {
    fn clone(&self) -> Self {
        Endpoint {
            site: self.site,
            n_paths: self.n_paths,
            out: self.out.clone(),
            prio_rx: self.prio_rx.clone(),
            bulk_rx: self.bulk_rx.clone(),
            classify: self.classify.clone(),
            dropped: Arc::clone(&self.dropped),
        }
    }
}

impl<M> fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("site", &self.site)
            .field("n_paths", &self.n_paths)
            .field("depth", &(self.prio_rx.len() + self.bulk_rx.len()))
            .finish()
    }
}

impl<M: Send + 'static> Endpoint<M> {
    /// This endpoint's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Sends `msg` to `to` along `path`.
    ///
    /// Consistency traffic (and all traffic when no classifier is
    /// installed) goes to the priority lane: bounded and blocking, never
    /// dropped. Bulk traffic on a full mailbox waits [`BULK_FULL_TIMEOUT`]
    /// and is then dropped and counted — the engine's lock timeouts and
    /// `Busy` retries re-drive the work.
    ///
    /// # Panics
    ///
    /// Panics on an unknown destination or path (protocol error).
    pub fn send(&self, to: SiteId, path: PathId, msg: M) {
        let lanes = self
            .out
            .get(&to)
            .unwrap_or_else(|| panic!("unknown destination {to}"));
        assert!(path.0 < self.n_paths, "unknown {path}");
        let prio = self.classify.as_ref().is_none_or(|c| c(&msg));
        let env = Envelope {
            from: self.site,
            to,
            path,
            msg,
        };
        if prio {
            // Receivers may have shut down during teardown; losing the
            // message then is fine.
            let _ = lanes.prio.send(env);
        } else {
            match lanes.bulk.try_send(env) {
                Ok(()) => {}
                Err(TrySendError::Full(env)) => {
                    if let Err(SendTimeoutError::Timeout(_)) =
                        lanes.bulk.send_timeout(env, BULK_FULL_TIMEOUT)
                    {
                        self.dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(TrySendError::Disconnected(_)) => {} // teardown
            }
        }
    }

    /// Blocks until a message arrives; `None` when all senders are gone.
    pub fn recv(&self) -> Option<Envelope<M>> {
        loop {
            match self.recv_timeout(Duration::from_secs(3600)) {
                Ok(e) => return Some(e),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return None,
            }
        }
    }

    /// Waits up to `timeout` for a message, draining the priority lane
    /// ahead of the bulk lane.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope<M>, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Ok(e) = self.prio_rx.try_recv() {
                return Ok(e);
            }
            if let Ok(e) = self.bulk_rx.try_recv() {
                return Ok(e);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            // Park on the priority lane in short slices so bulk arrivals
            // are still noticed promptly.
            let slice = RECV_POLL_SLICE.min(deadline - now);
            match self.prio_rx.recv_timeout(slice) {
                Ok(e) => return Ok(e),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    // Lanes close together (they live in one struct):
                    // drain what the bulk lane still buffers, then report
                    // the disconnect.
                    let left = deadline.saturating_duration_since(Instant::now());
                    return self.bulk_rx.recv_timeout(left);
                }
            }
        }
    }

    /// Non-blocking receive (priority lane first).
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        self.prio_rx
            .try_recv()
            .ok()
            .or_else(|| self.bulk_rx.try_recv().ok())
    }

    /// Current depth of this endpoint's own mailbox (both lanes).
    pub fn queue_depth(&self) -> usize {
        self.prio_rx.len() + self.bulk_rx.len()
    }

    /// Bulk-lane messages dropped on overflow, network-wide.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl<M: Send + 'static> Transport<M> for Endpoint<M> {
    fn send(&self, to: SiteId, path: PathId, msg: M) {
        Endpoint::send(self, to, path, msg);
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Envelope<M>> {
        Endpoint::recv_timeout(self, timeout).ok()
    }
}

// ---------------------------------------------------------------------
// Deterministic network
// ---------------------------------------------------------------------

/// A deterministic, single-threaded message pool with per-path FIFO and
/// seeded cross-path delivery order — the instrument used to drive the
/// race-condition tests of paper §4.2.4.
#[derive(Debug)]
pub struct SeededNet<M> {
    queues: HashMap<(SiteId, SiteId, PathId), VecDeque<M>>,
    in_flight: usize,
}

impl<M> Default for SeededNet<M> {
    fn default() -> Self {
        SeededNet {
            queues: HashMap::new(),
            in_flight: 0,
        }
    }
}

impl<M> SeededNet<M> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a message.
    pub fn send(&mut self, from: SiteId, to: SiteId, path: PathId, msg: M) {
        self.queues
            .entry((from, to, path))
            .or_default()
            .push_back(msg);
        self.in_flight += 1;
    }

    /// Messages currently in flight.
    pub fn len(&self) -> usize {
        self.in_flight
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight == 0
    }

    /// Delivers the head of a uniformly chosen non-empty `(src, dst,
    /// path)` queue. Per-path FIFO is preserved; everything else is up to
    /// the seed — exactly the SP2's "loose ordering".
    pub fn deliver_next<R: Rng>(&mut self, rng: &mut R) -> Option<Envelope<M>> {
        if self.in_flight == 0 {
            return None;
        }
        let keys: Vec<(SiteId, SiteId, PathId)> = {
            let mut ks: Vec<_> = self
                .queues
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(k, _)| *k)
                .collect();
            ks.sort(); // determinism independent of HashMap order
            ks
        };
        let k = keys[rng.gen_range(0..keys.len())];
        let msg = self.queues.get_mut(&k).and_then(VecDeque::pop_front)?;
        self.in_flight -= 1;
        Some(Envelope {
            from: k.0,
            to: k.1,
            path: k.2,
            msg,
        })
    }

    /// Delivers the oldest message of the given link-path FIFO, if any
    /// (targeted race construction in tests).
    pub fn deliver_from(&mut self, from: SiteId, to: SiteId, path: PathId) -> Option<Envelope<M>> {
        let msg = self
            .queues
            .get_mut(&(from, to, path))
            .and_then(VecDeque::pop_front)?;
        self.in_flight -= 1;
        Some(Envelope {
            from,
            to,
            path,
            msg,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn inproc_roundtrip_and_fifo_per_path() {
        let net = InProcNetwork::<u32>::new(&[SiteId(0), SiteId(1)], 3);
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        for i in 0..10 {
            a.send(SiteId(1), PathId(1), i);
        }
        let got: Vec<u32> = (0..10).map(|_| b.recv().unwrap().msg).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn inproc_try_recv_empty() {
        let net = InProcNetwork::<u32>::new(&[SiteId(0), SiteId(1)], 1);
        let b = net.endpoint(SiteId(1));
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn inproc_cross_thread() {
        let net = InProcNetwork::<u32>::new(&[SiteId(0), SiteId(1)], 2);
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                a.send(SiteId(1), PathId((i % 2) as u8), i);
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(b.recv().unwrap().msg);
        }
        h.join().unwrap();
        got.sort();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn priority_lane_drained_before_bulk() {
        // Odd payloads are "consistency" traffic.
        let classify: LaneClassifier<u32> = Arc::new(|m: &u32| m % 2 == 1);
        let net =
            InProcNetwork::<u32>::with_overload(&[SiteId(0), SiteId(1)], 1, 64, Some(classify));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        // Bulk first, then priority: the receiver must see priority first.
        a.send(SiteId(1), PathId(0), 2);
        a.send(SiteId(1), PathId(0), 4);
        a.send(SiteId(1), PathId(0), 1);
        assert_eq!(b.queue_depth(), 3);
        let got: Vec<u32> = (0..3).map(|_| b.recv().unwrap().msg).collect();
        assert_eq!(got, vec![1, 2, 4]);
        assert_eq!(b.queue_depth(), 0);
    }

    #[test]
    fn bulk_overflow_drops_are_counted_and_priority_survives() {
        let classify: LaneClassifier<u32> = Arc::new(|m: &u32| m % 2 == 1);
        // Capacity 1: the second undrained bulk send must overflow.
        let net =
            InProcNetwork::<u32>::with_overload(&[SiteId(0), SiteId(1)], 1, 1, Some(classify));
        let a = net.endpoint(SiteId(0));
        let b = net.endpoint(SiteId(1));
        a.send(SiteId(1), PathId(0), 2); // fills the bulk lane
        a.send(SiteId(1), PathId(0), 4); // overflows: dropped after the wait
        a.send(SiteId(1), PathId(0), 1); // priority: never dropped
        assert_eq!(a.dropped(), 1);
        assert_eq!(net.dropped(), 1);
        assert_eq!(net.queue_depth(SiteId(1)), 2);
        let got: Vec<u32> = (0..2).map(|_| b.recv().unwrap().msg).collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn seeded_net_preserves_per_path_fifo() {
        let mut net = SeededNet::new();
        let (s0, s1) = (SiteId(0), SiteId(1));
        for i in 0..20u32 {
            net.send(s0, s1, PathId((i % 2) as u8), i);
        }
        let mut rng = StdRng::seed_from_u64(42);
        let mut per_path: HashMap<PathId, Vec<u32>> = HashMap::new();
        while let Some(env) = net.deliver_next(&mut rng) {
            per_path.entry(env.path).or_default().push(env.msg);
        }
        for (_, v) in per_path {
            let mut sorted = v.clone();
            sorted.sort();
            assert_eq!(v, sorted, "per-path order violated");
        }
        assert!(net.is_empty());
    }

    #[test]
    fn seeded_net_reorders_across_paths() {
        // With 2 paths, some seed must interleave them out of send order.
        let mut reordered = false;
        for seed in 0..20 {
            let mut net = SeededNet::new();
            net.send(SiteId(0), SiteId(1), PathId(0), 1u32);
            net.send(SiteId(0), SiteId(1), PathId(1), 2u32);
            let mut rng = StdRng::seed_from_u64(seed);
            let first = net.deliver_next(&mut rng).unwrap();
            if first.msg == 2 {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "no seed produced cross-path reordering");
    }

    #[test]
    fn seeded_net_is_deterministic() {
        let run = |seed| {
            let mut net = SeededNet::new();
            for i in 0..30u32 {
                net.send(SiteId(i % 3), SiteId((i + 1) % 3), PathId((i % 2) as u8), i);
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let mut order = Vec::new();
            while let Some(e) = net.deliver_next(&mut rng) {
                order.push(e.msg);
            }
            order
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn deliver_from_is_targeted() {
        let mut net = SeededNet::new();
        net.send(SiteId(0), SiteId(1), PathId(0), 'a');
        net.send(SiteId(0), SiteId(1), PathId(1), 'b');
        let e = net.deliver_from(SiteId(0), SiteId(1), PathId(1)).unwrap();
        assert_eq!(e.msg, 'b');
        assert_eq!(net.len(), 1);
        assert!(net.deliver_from(SiteId(0), SiteId(1), PathId(1)).is_none());
    }
}
