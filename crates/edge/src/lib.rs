//! # pscc-edge
//!
//! A lock-free, read-only edge cache tier for the PSCC page server.
//!
//! The paper's protocols (PS / PS-OA / PS-AA) are strictly serializable:
//! every read holds a lock and every cached page is protected by the
//! owner's callback state. That is the right contract for read-write
//! transactions, but a flash crowd of read-mostly clients does not need
//! EX/SH locks per access — it needs *bounded* staleness, in the spirit
//! of cache serializability for read-only edge transactions.
//!
//! This crate provides the two passive data structures of that tier; all
//! protocol decisions stay in `pscc-core`:
//!
//! * [`EdgeCache`] — the edge site's page copies. An entry remembers the
//!   **send time of the fetch that produced it** (`fetched_at`) and the
//!   owner commit version it reflects. Because validity is judged
//!   against the edge's *own* request send time, a copy is never assumed
//!   fresher than the moment the owner could last have told us about it
//!   — conservative under every message interleaving.
//! * [`SubscriptionTable`] — the owner's record of which edge sites
//!   watch which files. Subscriptions are leases: an edge that crashes
//!   without unsubscribing stops renewing, and the owner reaps the
//!   entry at the next publish (or eagerly on `declare_site_dead`).
//!
//! No locks are taken anywhere in this crate: an edge read either finds
//! a valid copy (a map lookup) or falls through to a fetch. `Strict`
//! files never enter either structure.

use pscc_common::{ConsistencyTier, Oid, PageId, SimDuration, SimTime, SiteId, VolId};
use pscc_storage::SlottedPage;
use std::collections::{BTreeMap, BTreeSet};

/// One cached page copy at an edge site.
#[derive(Debug, Clone)]
pub struct EdgeEntry {
    /// The page image as last fetched or refreshed from the owner.
    pub image: SlottedPage,
    /// Owner commit version (WAL LSN) the image reflects.
    pub version: u64,
    /// Send time of the `EdgeFetch` that produced this image. Staleness
    /// is measured from here, not from the reply's arrival: the owner
    /// read its state some time after this instant, so `now -
    /// fetched_at` over-approximates the copy's true age.
    pub fetched_at: SimTime,
    /// Set when the owner's invalidation stream reported a newer commit.
    /// An invalidated entry is never served; it waits to be replaced by
    /// the refetch it triggered.
    pub invalidated: bool,
    /// LRU tick of the last touch.
    last_used: u64,
}

/// The edge site's lock-free page store, bounded by an LRU capacity.
#[derive(Debug, Clone)]
pub struct EdgeCache {
    pages: BTreeMap<PageId, EdgeEntry>,
    capacity: usize,
    tick: u64,
}

impl EdgeCache {
    /// An empty cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        Self {
            pages: BTreeMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Installs (or refreshes) a page copy. A reply older than what the
    /// cache already holds is ignored — per-owner FIFO makes that
    /// impossible on a healthy lane, but the guard is cheap and keeps
    /// the version monotone even if transports change.
    pub fn install(&mut self, page: PageId, image: SlottedPage, version: u64, fetched_at: SimTime) {
        if let Some(e) = self.pages.get(&page) {
            if e.version > version {
                return;
            }
        }
        self.tick += 1;
        let entry = EdgeEntry {
            image,
            version,
            fetched_at,
            invalidated: false,
            last_used: self.tick,
        };
        self.pages.insert(page, entry);
        while self.pages.len() > self.capacity {
            let Some(victim) = self
                .pages
                .iter()
                .min_by_key(|(p, e)| (e.last_used, **p))
                .map(|(p, _)| *p)
            else {
                break;
            };
            self.pages.remove(&victim);
        }
    }

    /// Looks up a copy without judging validity (the engine owns the
    /// tier/watch state needed for that) and touches its LRU slot.
    pub fn get(&mut self, page: PageId) -> Option<&EdgeEntry> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.pages.get_mut(&page)?;
        e.last_used = tick;
        Some(e)
    }

    /// Peeks at a copy without touching LRU state.
    pub fn peek(&self, page: PageId) -> Option<&EdgeEntry> {
        self.pages.get(&page)
    }

    /// Reads one object's bytes from a cached copy, touching LRU state.
    /// Returns `None` for uncached pages, invalidated entries, and dead
    /// slots alike — the caller falls through to a fetch.
    pub fn read_object(&mut self, oid: Oid) -> Option<Vec<u8>> {
        let e = self.get(oid.page)?;
        if e.invalidated {
            return None;
        }
        e.image.get(oid.slot).map(<[u8]>::to_vec)
    }

    /// Marks a copy invalidated if the published version is newer than
    /// the cached one. Returns whether an entry was actually struck.
    /// Unknown pages are ignored: on a FIFO lane any copy fetched later
    /// than this invalidation was shipped later by the owner and already
    /// reflects the commit.
    pub fn invalidate(&mut self, page: PageId, version: u64) -> bool {
        match self.pages.get_mut(&page) {
            Some(e) if e.version < version && !e.invalidated => {
                e.invalidated = true;
                true
            }
            _ => false,
        }
    }

    /// Drops one copy.
    pub fn remove(&mut self, page: PageId) {
        self.pages.remove(&page);
    }

    /// Drops every copy of `vol` (owner restarted or died: its watch
    /// history is no longer trustworthy).
    pub fn purge_volume(&mut self, vol: VolId) {
        self.pages.retain(|p, _| p.vol() != vol);
    }

    /// Drops every copy of file number `file` (its tier changed).
    pub fn purge_file(&mut self, file: u32) {
        self.pages.retain(|p, _| p.file.file != file);
    }

    /// All cached pages, sorted.
    pub fn pages(&self) -> Vec<PageId> {
        self.pages.keys().copied().collect()
    }

    /// Number of cached copies.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The LRU capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// One edge site's lease on an owner's invalidation stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscription {
    /// When the lease was last granted or renewed (owner clock).
    pub renewed_at: SimTime,
    /// How long past `renewed_at` the lease stays live.
    pub lease: SimDuration,
    /// File numbers the subscriber watches.
    pub files: BTreeSet<u32>,
}

impl Subscription {
    /// Whether the lease is still live at `now`.
    pub fn live(&self, now: SimTime) -> bool {
        now.since(self.renewed_at) < self.lease
    }
}

/// The owner's table of edge watch subscriptions, keyed by subscriber.
///
/// Everything here is a lease: a subscriber that stops renewing —
/// typically because it crashed without unsubscribing — is collected by
/// [`SubscriptionTable::reap_expired`] at the owner's next publish, so a
/// dead edge cannot leak table entries or attract invalidation traffic
/// forever.
#[derive(Debug, Clone, Default)]
pub struct SubscriptionTable {
    subs: BTreeMap<SiteId, Subscription>,
}

impl SubscriptionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes or renews `site` for `files`. Idempotent: a renew
    /// replaces the file set and restarts the lease clock.
    pub fn upsert(
        &mut self,
        site: SiteId,
        now: SimTime,
        lease: SimDuration,
        files: impl IntoIterator<Item = u32>,
    ) {
        self.subs.insert(
            site,
            Subscription {
                renewed_at: now,
                lease,
                files: files.into_iter().collect(),
            },
        );
    }

    /// Extends `site`'s watched file set and renews its lease clock —
    /// the piggybacked subscription of an `EdgeFetch { watch: true }`,
    /// which must not wipe files registered by an earlier explicit
    /// renew the way [`SubscriptionTable::upsert`] would.
    pub fn merge(
        &mut self,
        site: SiteId,
        now: SimTime,
        lease: SimDuration,
        files: impl IntoIterator<Item = u32>,
    ) {
        let sub = self.subs.entry(site).or_insert_with(|| Subscription {
            renewed_at: now,
            lease,
            files: BTreeSet::new(),
        });
        sub.renewed_at = now;
        sub.lease = lease;
        sub.files.extend(files);
    }

    /// Whether `site` holds a lease-live subscription at `now`. An
    /// expired entry counts as absent: a renew arriving after the lapse
    /// re-creates coverage rather than extending it, and the renewer
    /// must be told (invalidations published during the gap are gone).
    pub fn is_live(&self, site: SiteId, now: SimTime) -> bool {
        self.subs.get(&site).is_some_and(|s| s.live(now))
    }

    /// Drops `site`'s subscription (declared dead, or tier rolled back
    /// to `Strict`). Returns whether an entry existed.
    pub fn drop_site(&mut self, site: SiteId) -> bool {
        self.subs.remove(&site).is_some()
    }

    /// Removes every lease-expired subscription and returns the reaped
    /// subscribers, sorted.
    pub fn reap_expired(&mut self, now: SimTime) -> Vec<SiteId> {
        let dead: Vec<SiteId> = self
            .subs
            .iter()
            .filter(|(_, s)| !s.live(now))
            .map(|(site, _)| *site)
            .collect();
        for site in &dead {
            self.subs.remove(site);
        }
        dead
    }

    /// Live subscribers watching file number `file`, sorted.
    pub fn subscribers_of(&self, file: u32, now: SimTime) -> Vec<SiteId> {
        self.subs
            .iter()
            .filter(|(_, s)| s.live(now) && s.files.contains(&file))
            .map(|(site, _)| *site)
            .collect()
    }

    /// Whether `site` currently holds any subscription (live or not).
    pub fn contains(&self, site: SiteId) -> bool {
        self.subs.contains_key(&site)
    }

    /// Number of subscriptions held (live or not).
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }
}

/// Judges whether a cached entry may be served at `now` under `tier`,
/// and reports the age/bound pair the read would carry.
///
/// * `BoundedStale { ttl }` — valid while `now - fetched_at < ttl`.
/// * `WatchBased { fallback_ttl }` — the copy's "known fresh as of"
///   instant is `max(fetched_at, watch_validated)`, where
///   `watch_validated` is the **send time** of the last renew whose ack
///   the edge holds: the owner was still streaming invalidations to us
///   at that instant and none struck this page. A live watch keeps
///   `watch_validated` advancing; a severed one freezes it, so the copy
///   naturally degrades and expires `fallback_ttl` later.
/// * `Strict` — never (strict files never reach the edge cache).
///
/// Invalidated entries are never valid regardless of tier.
pub fn entry_valid(
    tier: ConsistencyTier,
    entry: &EdgeEntry,
    watch_validated: SimTime,
    now: SimTime,
) -> bool {
    if entry.invalidated {
        return false;
    }
    match tier {
        ConsistencyTier::Strict => false,
        ConsistencyTier::BoundedStale { ttl } => now.since(entry.fetched_at) < ttl,
        ConsistencyTier::WatchBased { fallback_ttl } => {
            now.since(entry.fetched_at.max(watch_validated)) < fallback_ttl
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::FileId;

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(1), 0), n)
    }

    fn img() -> SlottedPage {
        let mut p = SlottedPage::new(256);
        p.insert(&[7u8; 16]);
        p
    }

    #[test]
    fn install_get_and_versions_are_monotone() {
        let mut c = EdgeCache::new(4);
        c.install(pid(1), img(), 5, SimTime::from_micros(10));
        // An older reply must not clobber a newer copy.
        c.install(pid(1), img(), 3, SimTime::from_micros(20));
        assert_eq!(c.peek(pid(1)).unwrap().version, 5);
        c.install(pid(1), img(), 9, SimTime::from_micros(30));
        assert_eq!(c.peek(pid(1)).unwrap().version, 9);
        assert_eq!(
            c.read_object(Oid::new(pid(1), 0)).as_deref(),
            Some(&[7u8; 16][..])
        );
        assert!(c.read_object(Oid::new(pid(2), 0)).is_none());
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let mut c = EdgeCache::new(2);
        c.install(pid(1), img(), 1, SimTime::ZERO);
        c.install(pid(2), img(), 1, SimTime::ZERO);
        let _ = c.get(pid(1)); // page 2 is now LRU
        c.install(pid(3), img(), 1, SimTime::ZERO);
        assert_eq!(c.len(), 2);
        assert!(c.peek(pid(2)).is_none());
        assert!(c.peek(pid(1)).is_some() && c.peek(pid(3)).is_some());
    }

    #[test]
    fn invalidate_is_version_guarded() {
        let mut c = EdgeCache::new(4);
        c.install(pid(1), img(), 5, SimTime::ZERO);
        // A reordered invalidation for an older commit is a no-op.
        assert!(!c.invalidate(pid(1), 5));
        assert!(!c.peek(pid(1)).unwrap().invalidated);
        assert!(c.invalidate(pid(1), 6));
        assert!(c.read_object(Oid::new(pid(1), 0)).is_none());
        // Unknown pages are ignored (FIFO lane: any later fetch reply
        // already reflects the commit).
        assert!(!c.invalidate(pid(9), 100));
        // A refetch clears the strike.
        c.install(pid(1), img(), 6, SimTime::from_micros(5));
        assert!(!c.peek(pid(1)).unwrap().invalidated);
    }

    #[test]
    fn purges_by_volume_and_file() {
        let mut c = EdgeCache::new(8);
        c.install(pid(1), img(), 1, SimTime::ZERO);
        let other_vol = PageId::new(FileId::new(VolId(2), 0), 7);
        c.install(other_vol, img(), 1, SimTime::ZERO);
        c.purge_volume(VolId(1));
        assert_eq!(c.pages(), vec![other_vol]);
        c.purge_file(0);
        assert!(c.is_empty());
    }

    #[test]
    fn subscriptions_lease_and_reap() {
        let mut t = SubscriptionTable::new();
        let lease = SimDuration::from_millis(10);
        t.upsert(SiteId(2), SimTime::ZERO, lease, [0]);
        t.upsert(SiteId(3), SimTime::from_micros(5_000), lease, [0, 1]);
        assert_eq!(
            t.subscribers_of(0, SimTime::from_micros(1_000)),
            vec![SiteId(2), SiteId(3)]
        );
        // Site 2's lease dies at 10ms; site 3's at 15ms.
        assert_eq!(
            t.subscribers_of(0, SimTime::from_micros(12_000)),
            vec![SiteId(3)]
        );
        assert_eq!(
            t.reap_expired(SimTime::from_micros(12_000)),
            vec![SiteId(2)]
        );
        assert_eq!(t.len(), 1);
        // Renew restarts the clock; drop removes outright.
        t.upsert(SiteId(3), SimTime::from_micros(14_000), lease, [0, 1]);
        assert_eq!(
            t.subscribers_of(1, SimTime::from_micros(20_000)),
            vec![SiteId(3)]
        );
        assert!(t.drop_site(SiteId(3)));
        assert!(!t.drop_site(SiteId(3)));
        assert!(t.is_empty());
    }

    #[test]
    fn validity_judgement_per_tier() {
        let entry = EdgeEntry {
            image: img(),
            version: 1,
            fetched_at: SimTime::from_micros(1_000),
            invalidated: false,
            last_used: 0,
        };
        let ttl = SimDuration::from_millis(5);
        let bs = ConsistencyTier::BoundedStale { ttl };
        assert!(entry_valid(
            bs,
            &entry,
            SimTime::ZERO,
            SimTime::from_micros(5_999)
        ));
        assert!(!entry_valid(
            bs,
            &entry,
            SimTime::ZERO,
            SimTime::from_micros(6_000)
        ));

        let wb = ConsistencyTier::WatchBased { fallback_ttl: ttl };
        // Watch renewed at t=4ms keeps the copy valid until 9ms.
        let validated = SimTime::from_micros(4_000);
        assert!(entry_valid(
            wb,
            &entry,
            validated,
            SimTime::from_micros(8_999)
        ));
        assert!(!entry_valid(
            wb,
            &entry,
            validated,
            SimTime::from_micros(9_000)
        ));

        let mut struck = entry.clone();
        struck.invalidated = true;
        assert!(!entry_valid(
            bs,
            &struck,
            validated,
            SimTime::from_micros(2_000)
        ));
        assert!(!entry_valid(
            ConsistencyTier::Strict,
            &entry,
            validated,
            SimTime::from_micros(1_001)
        ));
    }
}
