//! Structured protocol event tracing.
//!
//! Every site keeps a bounded ring of typed [`TraceEvent`]s stamped with
//! both virtual time ([`SimTime`]) and wall-clock micros. When a test or
//! stress run goes wrong, the per-site rings are merged into one
//! chronological dump so the §4.2.4 callback/purge interleavings (and
//! deadlock/timeout postmortems) can be reconstructed across sites.

use pscc_common::{AbortReason, LockMode, LockableId, SimTime, SiteId, Stage, TraceCtx, TxnId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The §4.2.4 race shapes the engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceKind {
    /// A callback arrived for an object the local site holds a
    /// conflicting lock on (callback blocked on a racing writer).
    CallbackLock,
    /// A callback crossed an in-flight purge/ship of the same page.
    PurgeInFlight,
    /// A callback had to be re-driven after a racing install (redo).
    CallbackRedo,
}

impl fmt::Display for RaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RaceKind::CallbackLock => "callback_race",
            RaceKind::PurgeInFlight => "purge_race",
            RaceKind::CallbackRedo => "callback_redo",
        };
        f.write_str(s)
    }
}

/// Commit protocol phases (single-site fast path and 2PC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitStage {
    /// The application's commit request reached the engine.
    Request,
    /// Prepare messages went out (2PC phase 1).
    Prepare,
    /// All votes arrived.
    Voted,
    /// The decision was logged/sent.
    Decided,
    /// The commit finished and the application was told.
    Done,
}

impl fmt::Display for CommitStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CommitStage::Request => "request",
            CommitStage::Prepare => "prepare",
            CommitStage::Voted => "voted",
            CommitStage::Decided => "decided",
            CommitStage::Done => "done",
        };
        f.write_str(s)
    }
}

/// One typed protocol event.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A transaction asked the (local or owner) lock table for a lock.
    LockRequest {
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    },
    /// The lock table granted a lock (immediately or after a wait).
    LockGrant {
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    },
    /// The lock table queued the requester behind conflicting holders.
    LockWait {
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    },
    /// A callback was sent to `to` on behalf of `txn`.
    CallbackSent {
        to: SiteId,
        txn: TxnId,
        item: LockableId,
    },
    /// A remote site answered a callback with "blocked" (§4.2.2).
    CallbackBlocked {
        from: SiteId,
        txn: TxnId,
        item: LockableId,
    },
    /// A remote site purged the copy in response to a callback.
    CallbackPurged {
        from: SiteId,
        txn: TxnId,
        item: LockableId,
        purged_page: bool,
    },
    /// A §4.2.4 race interleaving was detected and resolved.
    Race { item: LockableId, kind: RaceKind },
    /// A peer answered a deescalation request (PS-AA §5.3).
    Deescalated { peer: SiteId, item: LockableId },
    /// An adaptive (optimistic) grant was taken without global locks.
    AdaptiveGrant { txn: TxnId, item: LockableId },
    /// An adaptive grant was revoked/confirmed-late by the owner.
    AdaptiveRevoke { txn: TxnId, item: LockableId },
    /// A page/object fetch was sent to the owner.
    FetchSent { to: SiteId, item: LockableId },
    /// The fetch reply installed data locally.
    FetchDone { from: SiteId, item: LockableId },
    /// The commit path crossed a phase boundary.
    Commit { txn: TxnId, stage: CommitStage },
    /// A transaction aborted.
    Abort { txn: TxnId, reason: AbortReason },
    /// The chaos harness injected a fault on the path `from -> to`
    /// (`what` is the fault's short label: drop/dup/delay/reorder/
    /// partition/crash).
    FaultInjected {
        from: SiteId,
        to: SiteId,
        what: &'static str,
    },
    /// A server declared `site` crashed (lease expiry or bounded
    /// callback-response timeout).
    CrashDetected { site: SiteId },
    /// An in-flight transaction of a crashed client was aborted and its
    /// locks/callbacks released.
    OrphanAborted { txn: TxnId, dead: SiteId },
    /// A restarted server finished ARIES-style restart recovery and
    /// bumped its epoch; clients must rejoin before being served.
    Recovered {
        site: SiteId,
        epoch: u64,
        redo: u64,
        undo: u64,
        in_doubt: usize,
    },
    /// A client completed the rejoin handshake with a restarted (or
    /// falsely-suspecting) server, invalidating its stale cached pages.
    Rejoined { server: SiteId, epoch: u64 },
    /// A transport connection died (read error, bad frame, or peer
    /// close) and its error was surfaced rather than swallowed.
    NetDisconnect { peer: SiteId },
    /// The transport retried a connect/send after a failure.
    NetRetry { peer: SiteId, attempt: u32 },
    /// An overloaded server refused `peer`'s data request with `Busy`
    /// (admission control, DESIGN.md §6).
    RequestShed { peer: SiteId },
    /// A client received `Busy` and armed an exponential-backoff retry.
    BusyBackoff { peer: SiteId, attempt: u32 },
    /// A backoff timer fired and the refused request was re-sent.
    BusyRetry { peer: SiteId },
    /// A data request waited locally because the owner's credit pool was
    /// exhausted (credit-based flow control).
    CreditStalled { peer: SiteId },
    /// A message or acknowledgment referencing state that no longer
    /// exists was dropped (traced instead of panicking).
    StaleDrop { what: &'static str },
    /// A site began a graceful drain on behalf of the control plane: new
    /// remote data requests are refused while in-flight work retires.
    DrainBegin { site: SiteId },
    /// A draining site retired its admitted work, forced its WAL, and
    /// reported `DrainOk` to the requester.
    DrainDone { site: SiteId },
    /// The cluster supervisor issued one reconciliation step against a
    /// site (`step` names it: drain/stop/restart/rejoin/undrain).
    ConvergeStep { site: SiteId, step: &'static str },
    /// A reconciliation run finished: `steps` actions were executed and
    /// `ok` says whether the cluster converged to the manifest.
    ConvergeDone { steps: u64, ok: bool },

    // Causal tracing and auditing (DESIGN.md §9).
    /// A traced message departed for `to` under `ctx` (span start).
    MsgSend {
        ctx: TraceCtx,
        to: SiteId,
        label: &'static str,
    },
    /// A traced message arrived from `from` under `ctx` (span end).
    MsgRecv {
        ctx: TraceCtx,
        from: SiteId,
        label: &'static str,
    },
    /// The engine measured `micros` of `stage` latency ending now, on
    /// behalf of `txn` (the critical-path analyzer's raw material).
    StageSample {
        txn: TxnId,
        stage: Stage,
        micros: u64,
    },
    /// All of `txn`'s locks at this site were released (commit or
    /// abort cleanup finished here).
    LocksReleased { txn: TxnId },
    /// A lock was downgraded in place (the §4.3.2 callback dance).
    LockDowngrade { txn: TxnId, item: LockableId },
    /// A remote transaction was tombstoned here: any of its straggler
    /// data requests will be refused from now on.
    TxnTombstoned { txn: TxnId },
    /// A drained site re-opened admission (control-plane rollback or
    /// rolling-step completion).
    Undrained { site: SiteId },

    // Ownership migration (DESIGN.md §10).
    /// A source owner froze `[lo, hi)` and durably began migrating it
    /// to `to`.
    MigrationBegin {
        site: SiteId,
        lo: u32,
        hi: u32,
        to: SiteId,
    },
    /// The source's `MigrateCommit` record is durable: `to` is the one
    /// authoritative owner of `[lo, hi)` under `layout`.
    MigrationCommitted {
        site: SiteId,
        lo: u32,
        hi: u32,
        to: SiteId,
        layout: u64,
    },
    /// A destination installed and activated a migrated range.
    MigrationLanded {
        site: SiteId,
        from: SiteId,
        lo: u32,
        hi: u32,
        layout: u64,
    },
    /// An in-flight migration rolled back before its commit point; the
    /// source stays authoritative.
    MigrationAborted { site: SiteId, lo: u32, hi: u32 },
    /// An owner acknowledged a page write to `to` (granted write
    /// permission or applied commit records). The auditor checks no
    /// such ack is issued for a range this site migrated away.
    WriteAck {
        page: pscc_common::PageId,
        to: SiteId,
    },
    /// A lookup hit a page no layout range covers; the request was
    /// refused (typed `OwnershipError`) instead of panicking.
    OwnershipRefused { page: pscc_common::PageId },

    // Edge tier (DESIGN.md §11).
    /// An owner committed a new version of `page` visible to edge
    /// subscribers (the page's publish version is the commit's WAL
    /// LSN). This is the auditor's ground truth for staleness: an edge
    /// read at `t` must not return a version older than the newest one
    /// committed at or before `t - bound`.
    EdgePageCommitted {
        page: pscc_common::PageId,
        version: u64,
    },
    /// An edge site answered a read lock-free from its local copy.
    EdgeRead {
        page: pscc_common::PageId,
        /// Owner commit version served.
        version: u64,
        /// Conservative age of the copy at serve time (µs): now minus
        /// the copy's validation instant.
        age_us: u64,
        /// The tier's hard staleness bound (µs).
        bound_us: u64,
    },
    /// An edge read fell through to an owner fetch (cold, expired,
    /// severed watch, or invalidated).
    EdgeMiss { page: pscc_common::PageId },
    /// An owner published invalidations for one commit to one
    /// subscriber.
    EdgeInvalidated { to: SiteId, pages: usize },
    /// An owner recorded or renewed an edge watch subscription.
    EdgeSubscribed { site: SiteId, files: usize },
    /// An owner dropped an edge subscription (lease expiry at publish
    /// time, or the subscriber was declared dead).
    EdgeSubReaped { site: SiteId },
    /// An edge purged every copy from `owner` (owner epoch bump or
    /// death: invalidations may have been lost, the copies are no
    /// longer trustworthy).
    EdgePurgedOwner { owner: SiteId, pages: usize },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::LockRequest { txn, item, mode } => {
                write!(f, "lock_request txn={txn:?} item={item:?} mode={mode:?}")
            }
            EventKind::LockGrant { txn, item, mode } => {
                write!(f, "lock_grant txn={txn:?} item={item:?} mode={mode:?}")
            }
            EventKind::LockWait { txn, item, mode } => {
                write!(f, "lock_wait txn={txn:?} item={item:?} mode={mode:?}")
            }
            EventKind::CallbackSent { to, txn, item } => {
                write!(f, "callback_sent to={to:?} txn={txn:?} item={item:?}")
            }
            EventKind::CallbackBlocked { from, txn, item } => {
                write!(
                    f,
                    "callback_blocked from={from:?} txn={txn:?} item={item:?}"
                )
            }
            EventKind::CallbackPurged {
                from,
                txn,
                item,
                purged_page,
            } => write!(
                f,
                "callback_purged from={from:?} txn={txn:?} item={item:?} page={purged_page}"
            ),
            EventKind::Race { item, kind } => write!(f, "{kind} item={item:?}"),
            EventKind::Deescalated { peer, item } => {
                write!(f, "deescalated peer={peer:?} item={item:?}")
            }
            EventKind::AdaptiveGrant { txn, item } => {
                write!(f, "adaptive_grant txn={txn:?} item={item:?}")
            }
            EventKind::AdaptiveRevoke { txn, item } => {
                write!(f, "adaptive_revoke txn={txn:?} item={item:?}")
            }
            EventKind::FetchSent { to, item } => {
                write!(f, "fetch_sent to={to:?} item={item:?}")
            }
            EventKind::FetchDone { from, item } => {
                write!(f, "fetch_done from={from:?} item={item:?}")
            }
            EventKind::Commit { txn, stage } => {
                write!(f, "commit_{stage} txn={txn:?}")
            }
            EventKind::Abort { txn, reason } => {
                write!(f, "abort txn={txn:?} reason={reason}")
            }
            EventKind::FaultInjected { from, to, what } => {
                write!(f, "fault_injected {what} from={from:?} to={to:?}")
            }
            EventKind::CrashDetected { site } => {
                write!(f, "crash_detected site={site:?}")
            }
            EventKind::OrphanAborted { txn, dead } => {
                write!(f, "orphan_aborted txn={txn:?} dead={dead:?}")
            }
            EventKind::Recovered {
                site,
                epoch,
                redo,
                undo,
                in_doubt,
            } => write!(
                f,
                "recovered site={site:?} epoch={epoch} redo={redo} undo={undo} in_doubt={in_doubt}"
            ),
            EventKind::Rejoined { server, epoch } => {
                write!(f, "rejoined server={server:?} epoch={epoch}")
            }
            EventKind::NetDisconnect { peer } => {
                write!(f, "net_disconnect peer={peer:?}")
            }
            EventKind::NetRetry { peer, attempt } => {
                write!(f, "net_retry peer={peer:?} attempt={attempt}")
            }
            EventKind::RequestShed { peer } => {
                write!(f, "request_shed peer={peer:?}")
            }
            EventKind::BusyBackoff { peer, attempt } => {
                write!(f, "busy_backoff peer={peer:?} attempt={attempt}")
            }
            EventKind::BusyRetry { peer } => {
                write!(f, "busy_retry peer={peer:?}")
            }
            EventKind::CreditStalled { peer } => {
                write!(f, "credit_stalled peer={peer:?}")
            }
            EventKind::StaleDrop { what } => {
                write!(f, "stale_drop {what}")
            }
            EventKind::DrainBegin { site } => {
                write!(f, "drain_begin site={site:?}")
            }
            EventKind::DrainDone { site } => {
                write!(f, "drain_done site={site:?}")
            }
            EventKind::ConvergeStep { site, step } => {
                write!(f, "converge_step site={site:?} step={step}")
            }
            EventKind::ConvergeDone { steps, ok } => {
                write!(f, "converge_done steps={steps} ok={ok}")
            }
            EventKind::MsgSend { ctx, to, label } => {
                write!(f, "msg_send {label} to={to:?} {ctx}")
            }
            EventKind::MsgRecv { ctx, from, label } => {
                write!(f, "msg_recv {label} from={from:?} {ctx}")
            }
            EventKind::StageSample { txn, stage, micros } => {
                write!(f, "stage_sample {stage} txn={txn:?} micros={micros}")
            }
            EventKind::LocksReleased { txn } => {
                write!(f, "locks_released txn={txn:?}")
            }
            EventKind::LockDowngrade { txn, item } => {
                write!(f, "lock_downgrade txn={txn:?} item={item:?}")
            }
            EventKind::TxnTombstoned { txn } => {
                write!(f, "txn_tombstoned txn={txn:?}")
            }
            EventKind::Undrained { site } => {
                write!(f, "undrained site={site:?}")
            }
            EventKind::MigrationBegin { site, lo, hi, to } => {
                write!(
                    f,
                    "migration_begin site={site:?} range=[{lo},{hi}) to={to:?}"
                )
            }
            EventKind::MigrationCommitted {
                site,
                lo,
                hi,
                to,
                layout,
            } => write!(
                f,
                "migration_committed site={site:?} range=[{lo},{hi}) to={to:?} layout={layout}"
            ),
            EventKind::MigrationLanded {
                site,
                from,
                lo,
                hi,
                layout,
            } => write!(
                f,
                "migration_landed site={site:?} from={from:?} range=[{lo},{hi}) layout={layout}"
            ),
            EventKind::MigrationAborted { site, lo, hi } => {
                write!(f, "migration_aborted site={site:?} range=[{lo},{hi})")
            }
            EventKind::WriteAck { page, to } => {
                write!(f, "write_ack page={page:?} to={to:?}")
            }
            EventKind::OwnershipRefused { page } => {
                write!(f, "ownership_refused page={page:?}")
            }
            EventKind::EdgePageCommitted { page, version } => {
                write!(f, "edge_page_committed page={page:?} version={version}")
            }
            EventKind::EdgeRead {
                page,
                version,
                age_us,
                bound_us,
            } => write!(
                f,
                "edge_read page={page:?} version={version} age={age_us}µs bound={bound_us}µs"
            ),
            EventKind::EdgeMiss { page } => {
                write!(f, "edge_miss page={page:?}")
            }
            EventKind::EdgeInvalidated { to, pages } => {
                write!(f, "edge_invalidated to={to:?} pages={pages}")
            }
            EventKind::EdgeSubscribed { site, files } => {
                write!(f, "edge_subscribed site={site:?} files={files}")
            }
            EventKind::EdgeSubReaped { site } => {
                write!(f, "edge_sub_reaped site={site:?}")
            }
            EventKind::EdgePurgedOwner { owner, pages } => {
                write!(f, "edge_purged_owner owner={owner:?} pages={pages}")
            }
        }
    }
}

/// A recorded event with its stamps.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Per-site monotone sequence number (total order within a site).
    pub seq: u64,
    /// Site that recorded the event.
    pub site: SiteId,
    /// Virtual time at recording.
    pub at: SimTime,
    /// Wall-clock microseconds since the ring was created.
    pub wall_micros: u64,
    pub kind: EventKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={:>12}µs site={} #{:<6}] {}",
            self.at.as_micros(),
            self.site.0,
            self.seq,
            self.kind
        )
    }
}

/// A bounded, allocation-stable ring of trace events.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    epoch: Instant,
    buf: VecDeque<TraceEvent>,
}

impl EventRing {
    /// Ring capacity used by the engines unless configured otherwise.
    pub const DEFAULT_CAPACITY: usize = 4096;

    #[must_use]
    pub fn new(cap: usize) -> Self {
        EventRing {
            cap: cap.max(1),
            next_seq: 0,
            dropped: 0,
            epoch: Instant::now(),
            buf: VecDeque::with_capacity(cap.clamp(1, 1024)),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, site: SiteId, at: SimTime, kind: EventKind) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back(TraceEvent {
            seq,
            site,
            at,
            wall_micros: self.epoch.elapsed().as_micros() as u64,
            kind,
        });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A cloneable, thread-safe handle to one site's ring plus a shared
/// virtual-time clock, so components that don't receive `now` in their
/// call signatures (e.g. the lock table inside the engine) can still
/// stamp events consistently.
#[derive(Clone)]
pub struct TraceHandle {
    site: SiteId,
    clock_micros: Arc<AtomicU64>,
    ring: Arc<Mutex<EventRing>>,
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceHandle(site={})", self.site.0)
    }
}

impl TraceHandle {
    #[must_use]
    pub fn new(site: SiteId, cap: usize) -> Self {
        TraceHandle {
            site,
            clock_micros: Arc::new(AtomicU64::new(0)),
            ring: Arc::new(Mutex::new(EventRing::new(cap))),
        }
    }

    /// Advances the shared virtual clock (called once per engine step).
    pub fn set_now(&self, now: SimTime) {
        self.clock_micros.store(now.as_micros(), Ordering::Relaxed);
    }

    /// Records `kind` at the current virtual time.
    pub fn record(&self, kind: EventKind) {
        let at = SimTime::from_micros(self.clock_micros.load(Ordering::Relaxed));
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .record(self.site, at, kind);
    }

    /// Copies out the retained events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace ring poisoned")
            .events()
            .cloned()
            .collect()
    }

    /// Events evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace ring poisoned").dropped()
    }
}

/// Merges per-site event snapshots into one chronological trace,
/// ordered by (virtual time, site, per-site sequence).
#[must_use]
pub fn merge_traces(per_site: Vec<Vec<TraceEvent>>) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = per_site.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.at, e.site.0, e.seq));
    all
}

/// Renders a merged trace as a line-per-event postmortem dump.
#[must_use]
pub fn render_dump(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== merged protocol trace ({} events) ===\n",
        events.len()
    ));
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, PageId, VolId};

    fn item(page: u32) -> LockableId {
        LockableId::Page(PageId::new(FileId::new(VolId(0), 0), page))
    }

    #[test]
    fn ring_bounds_and_drops() {
        let mut r = EventRing::new(3);
        for i in 0..5u32 {
            r.record(
                SiteId(0),
                SimTime::from_micros(u64::from(i)),
                EventKind::FetchSent {
                    to: SiteId(1),
                    item: item(i),
                },
            );
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn merge_orders_by_time_then_site() {
        let h0 = TraceHandle::new(SiteId(0), 16);
        let h1 = TraceHandle::new(SiteId(1), 16);
        h1.set_now(SimTime::from_micros(5));
        h1.record(EventKind::Race {
            item: item(1),
            kind: RaceKind::PurgeInFlight,
        });
        h0.set_now(SimTime::from_micros(2));
        h0.record(EventKind::Race {
            item: item(1),
            kind: RaceKind::CallbackLock,
        });
        let merged = merge_traces(vec![h0.snapshot(), h1.snapshot()]);
        assert_eq!(merged.len(), 2);
        assert!(merged[0].at <= merged[1].at);
        let dump = render_dump(&merged);
        assert!(dump.contains("callback_race"), "{dump}");
        assert!(dump.contains("purge_race"), "{dump}");
    }

    #[test]
    fn merge_breaks_timestamp_ties_by_site_then_seq() {
        // Three sites log at the identical instant: the merged order must
        // be deterministic (site id, then per-site seq), not map order.
        let t = SimTime::from_micros(7);
        let handles: Vec<TraceHandle> = (0..3).map(|s| TraceHandle::new(SiteId(s), 16)).collect();
        // Interleave recording in reverse site order to ensure the sort,
        // not insertion order, produces the result.
        for h in handles.iter().rev() {
            h.set_now(t);
            h.record(EventKind::Race {
                item: item(0),
                kind: RaceKind::PurgeInFlight,
            });
            h.record(EventKind::Race {
                item: item(1),
                kind: RaceKind::PurgeInFlight,
            });
        }
        let merged = merge_traces(handles.iter().map(TraceHandle::snapshot).collect());
        let order: Vec<(u32, u64)> = merged.iter().map(|e| (e.site.0, e.seq)).collect();
        assert_eq!(
            order,
            vec![(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)],
            "equal timestamps must tie-break by site then seq"
        );
    }

    #[test]
    fn merge_after_ring_wrap_keeps_surviving_suffix_in_order() {
        // One site's ring wraps (old events evicted) while another's does
        // not; the merge must interleave the surviving suffix correctly
        // and the wrap must be visible via dropped().
        let small = TraceHandle::new(SiteId(0), 4);
        let big = TraceHandle::new(SiteId(1), 64);
        for i in 0..10u64 {
            small.set_now(SimTime::from_micros(i * 10));
            small.record(EventKind::Race {
                item: item(i as u32),
                kind: RaceKind::CallbackLock,
            });
            big.set_now(SimTime::from_micros(i * 10 + 5));
            big.record(EventKind::Race {
                item: item(i as u32),
                kind: RaceKind::PurgeInFlight,
            });
        }
        assert_eq!(small.dropped(), 6);
        assert_eq!(big.dropped(), 0);
        let merged = merge_traces(vec![small.snapshot(), big.snapshot()]);
        // 4 survivors from the wrapped ring + all 10 from the big one.
        assert_eq!(merged.len(), 14);
        // Globally non-decreasing in time, and the wrapped ring's
        // survivors are exactly its latest 4 events, still in seq order.
        assert!(merged.windows(2).all(|w| w[0].at <= w[1].at));
        let small_seqs: Vec<u64> = merged
            .iter()
            .filter(|e| e.site == SiteId(0))
            .map(|e| e.seq)
            .collect();
        assert_eq!(small_seqs, vec![6, 7, 8, 9]);
    }
}
