//! Online invariant auditing over merged multi-site traces
//! (DESIGN.md §9).
//!
//! The [`InvariantAuditor`] tails a merged event stream and checks
//! protocol invariants that no single site can check alone:
//!
//! 1. **One EX copy** — at any site's lock table, at most one
//!    transaction holds `EX` on a given item at a time.
//! 2. **No grant before callback ack** — an owner must not grant `EX`
//!    to a transaction while its callback fan-out for that item still
//!    has pending (un-acked, un-crashed) recipients.
//! 3. **No data served to dead transactions / drained sites** — a site
//!    must not send a data verdict for a transaction it tombstoned,
//!    and a fully drained site must not send data verdicts at all
//!    until it is undrained or restarts.
//! 4. **Epoch monotonicity** — a site's recovery epoch strictly
//!    increases across restarts, and the epochs a client observes for
//!    a given server never go backwards.
//! 5. **One authoritative owner** — ownership migration never leaves
//!    two sites authoritative for the same page range: a
//!    `MigrationLanded` claim at a layout version no newer than an
//!    existing claim by a *different* site is a split-brain, and a
//!    source site must not acknowledge page writes (`WriteAck`) for a
//!    range after its `MigrationCommitted` record — unless a later
//!    migration handed the range back. Migration state is durable (WAL
//!    records survive restarts), so unlike checks 1–3 it is *not*
//!    cleared when a site crashes.
//! 6. **Edge staleness bound** — a lock-free edge read of a tiered
//!    file must never return data older than its tier's bound: an
//!    `EdgeRead` at time `t` with bound `b` must serve a version at
//!    least as new as the newest `EdgePageCommitted` for that page at
//!    or before `t − b`, and its self-reported age must be below `b`.
//!    Commit versions are WAL LSNs (durable), so like check 5 this
//!    state survives crash-clears.
//!
//! All state is keyed by the *recording* site, so the per-site `seq`
//! order inside the merged stream (see `merge_traces`) is the only
//! ordering the checks rely on — cross-site clock skew cannot create
//! false positives. Feed events in merged order; duplicated deliveries
//! (chaos `dup`) are harmless because every mutation is idempotent.

use crate::event::{EventKind, TraceEvent};
use pscc_common::{LockMode, LockableId, SimTime, SiteId, TxnId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One invariant violation found in the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Virtual time of the offending event.
    pub at: SimTime,
    /// Site that recorded the offending event.
    pub site: SiteId,
    /// Which check fired (stable label).
    pub check: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[t={}µs site={}] {}: {}",
            self.at.as_micros(),
            self.site.0,
            self.check,
            self.detail
        )
    }
}

/// Streaming auditor: [`feed`](InvariantAuditor::feed) events in merged
/// order, then [`finish`](InvariantAuditor::finish).
#[derive(Debug, Default)]
pub struct InvariantAuditor {
    violations: Vec<Violation>,
    /// check 1: (site, item) -> EX holder.
    ex_holder: HashMap<(SiteId, LockableId), TxnId>,
    /// check 2: (owner site, txn, item) -> callback recipients still
    /// pending an ack.
    cb_pending: HashMap<(SiteId, TxnId, LockableId), HashSet<SiteId>>,
    /// check 3: per site, transactions tombstoned there.
    tombstoned: HashMap<SiteId, HashSet<TxnId>>,
    /// check 3: sites currently fully drained.
    drained: HashSet<SiteId>,
    /// check 4: last recovery epoch announced by each site.
    recovered_epoch: HashMap<SiteId, u64>,
    /// check 4: last epoch each client observed for each server.
    observed_epoch: HashMap<(SiteId, SiteId), u64>,
    /// check 5: newest authoritative claim per migrated range
    /// (layout version, owner). Durable — survives crash-clears.
    range_claim: HashMap<(u32, u32), (u64, SiteId)>,
    /// check 5: ranges each site has committed away, with the layout
    /// version of the commit. Durable — survives crash-clears.
    committed_away: HashMap<SiteId, HashSet<(u32, u32, u64)>>,
    /// check 6: per-page publish history `(commit time, version)`, in
    /// merged order. Durable — survives crash-clears (versions are WAL
    /// LSNs, monotone across owner restarts).
    edge_commits: HashMap<pscc_common::PageId, Vec<(SimTime, u64)>>,
}

/// Message labels that carry a data verdict to a transaction's home.
fn is_data_verdict(label: &str) -> bool {
    matches!(
        label,
        "read_reply" | "write_granted" | "lock_granted" | "large_page_reply" | "object_bytes"
    )
}

impl InvariantAuditor {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn violate(&mut self, e: &TraceEvent, check: &'static str, detail: String) {
        self.violations.push(Violation {
            at: e.at,
            site: e.site,
            check,
            detail,
        });
    }

    /// Releases every record of `txn` at recording site `site`.
    fn clear_txn(&mut self, site: SiteId, txn: TxnId) {
        self.ex_holder
            .retain(|(s, _), t| !(*s == site && *t == txn));
        self.cb_pending
            .retain(|(s, t, _), _| !(*s == site && *t == txn));
    }

    /// Feeds one event; call in merged-stream order.
    pub fn feed(&mut self, e: &TraceEvent) {
        let site = e.site;
        match &e.kind {
            EventKind::LockGrant { txn, item, mode } => {
                if *mode == LockMode::Ex {
                    // Check 2 first: the grant must not race its own
                    // callback fan-out.
                    if let Some(pending) = self.cb_pending.get(&(site, *txn, *item)) {
                        if !pending.is_empty() {
                            let n = pending.len();
                            self.violate(
                                e,
                                "grant_before_callback_ack",
                                format!("EX on {item:?} granted to {txn} with {n} callback ack(s) outstanding"),
                            );
                        }
                    }
                    // Check 1: one EX copy per (site, item).
                    if let Some(prev) = self.ex_holder.get(&(site, *item)) {
                        if prev != txn {
                            let prev = *prev;
                            self.violate(
                                e,
                                "one_ex_copy",
                                format!(
                                    "EX on {item:?} granted to {txn} while {prev} still holds EX"
                                ),
                            );
                        }
                    }
                    self.ex_holder.insert((site, *item), *txn);
                } else if self.ex_holder.get(&(site, *item)) == Some(txn) {
                    // A weaker re-grant to the holder (deescalation /
                    // §4.3.2 re-acquire) supersedes its EX record.
                    self.ex_holder.remove(&(site, *item));
                }
            }
            EventKind::LockDowngrade { txn, item }
                if self.ex_holder.get(&(site, *item)) == Some(txn) =>
            {
                self.ex_holder.remove(&(site, *item));
            }
            EventKind::LocksReleased { txn }
            | EventKind::Abort { txn, .. }
            | EventKind::OrphanAborted { txn, .. } => {
                self.clear_txn(site, *txn);
            }
            EventKind::CallbackSent { to, txn, item } => {
                self.cb_pending
                    .entry((site, *txn, *item))
                    .or_default()
                    .insert(*to);
            }
            EventKind::CallbackPurged {
                from, txn, item, ..
            }
            | EventKind::CallbackBlocked { from, txn, item } => {
                // Purge acks the callback; a blocked report moves the
                // conflict into the §4.3.2 lock dance, where the lock
                // table itself (audited by check 1) orders the grant.
                if let Some(p) = self.cb_pending.get_mut(&(site, *txn, *item)) {
                    p.remove(from);
                }
            }
            EventKind::CrashDetected { site: dead } => {
                // The owner proceeds without the dead site's acks.
                for p in self.cb_pending.values_mut() {
                    p.remove(dead);
                }
                self.drained.remove(dead);
            }
            EventKind::TxnTombstoned { txn } => {
                self.tombstoned.entry(site).or_default().insert(*txn);
            }
            EventKind::DrainDone { site: s } => {
                self.drained.insert(*s);
            }
            EventKind::Undrained { site: s } => {
                self.drained.remove(s);
            }
            EventKind::FaultInjected { from, to, what } if from == to => {
                // The harness marks crashes and restarts as self-faults.
                // Either way the site's volatile state is gone: its lock
                // table, callback fan-outs, tombstones, and drain gate
                // do not survive into the next incarnation. (A restarted
                // owner's `Recovered` event lands before the harness
                // re-enables its ring, so this marker is the reliable
                // signal.)
                if matches!(*what, "crash" | "restart") {
                    let s = *from;
                    self.ex_holder.retain(|(site, _), _| *site != s);
                    self.cb_pending.retain(|(site, _, _), _| *site != s);
                    self.tombstoned.remove(&s);
                    self.drained.remove(&s);
                }
            }
            EventKind::Recovered { site: s, epoch, .. } => {
                // Check 4a: strictly increasing per site.
                if let Some(prev) = self.recovered_epoch.get(s) {
                    if *epoch <= *prev {
                        let prev = *prev;
                        self.violate(
                            e,
                            "epoch_monotonicity",
                            format!("site {} recovered at epoch {epoch} after epoch {prev}", s.0),
                        );
                    }
                }
                self.recovered_epoch
                    .entry(*s)
                    .and_modify(|p| *p = (*p).max(*epoch))
                    .or_insert(*epoch);
                // A restart clears the site's drained/tombstone state.
                self.drained.remove(s);
                self.tombstoned.remove(s);
            }
            EventKind::Rejoined { server, epoch } => {
                // Check 4b: a client's view of a server never regresses.
                let key = (site, *server);
                if let Some(prev) = self.observed_epoch.get(&key) {
                    if *epoch < *prev {
                        let prev = *prev;
                        self.violate(
                            e,
                            "epoch_monotonicity",
                            format!(
                                "site {} observed server {} at epoch {epoch} after epoch {prev}",
                                site.0, server.0
                            ),
                        );
                    }
                }
                let slot = self.observed_epoch.entry(key).or_insert(*epoch);
                *slot = (*slot).max(*epoch);
            }
            EventKind::MigrationCommitted {
                site: src,
                lo,
                hi,
                to,
                layout,
            } => {
                // The commit record durably names `to` the one
                // authoritative owner; the source must stop acking
                // writes on the range from this point on.
                self.committed_away
                    .entry(*src)
                    .or_default()
                    .insert((*lo, *hi, *layout));
                let slot = self.range_claim.entry((*lo, *hi)).or_insert((0, *to));
                if *layout > slot.0 {
                    *slot = (*layout, *to);
                }
            }
            EventKind::MigrationLanded {
                site: dst,
                lo,
                hi,
                layout,
                ..
            } => {
                // Check 5a: a landing at a layout no newer than an
                // existing claim by a different site means two sites
                // both believe they own the range.
                if let Some((prev_layout, prev_owner)) = self.range_claim.get(&(*lo, *hi)) {
                    if *prev_layout >= *layout && prev_owner != dst {
                        let (pl, po) = (*prev_layout, prev_owner.0);
                        self.violate(
                            e,
                            "one_authoritative_owner",
                            format!(
                                "site {} landed [{lo},{hi}) at layout {layout} but site {po} \
                                 holds it at layout {pl}",
                                dst.0
                            ),
                        );
                    }
                }
                let slot = self.range_claim.entry((*lo, *hi)).or_insert((0, *dst));
                if *layout >= slot.0 {
                    *slot = (*layout, *dst);
                }
                // A later migration may hand the range back: forget the
                // destination's older committed-away records for it.
                if let Some(gone) = self.committed_away.get_mut(dst) {
                    gone.retain(|(l, h, v)| *v >= *layout || *h <= *lo || *l >= *hi);
                }
            }
            EventKind::WriteAck { page, to } => {
                // Check 5b: no write acked by a source after its
                // migration commit for the page's range.
                let n = page.page;
                if let Some(gone) = self.committed_away.get(&site) {
                    if let Some((lo, hi, v)) = gone.iter().find(|(l, h, _)| *l <= n && n < *h) {
                        self.violate(
                            e,
                            "write_after_migrate",
                            format!(
                                "site {} acked write of page {n} to s{} after committing \
                                 [{lo},{hi}) away at layout {v}",
                                site.0, to.0
                            ),
                        );
                    }
                }
            }
            EventKind::EdgePageCommitted { page, version } => {
                let hist = self.edge_commits.entry(*page).or_default();
                // Duplicated deliveries and 2PC re-publishes are
                // harmless: only strictly newer versions extend the
                // history.
                if hist.last().is_none_or(|(_, v)| *v < *version) {
                    hist.push((e.at, *version));
                }
            }
            EventKind::EdgeRead {
                page,
                version,
                age_us,
                bound_us,
            } => {
                // Check 6a: the edge itself must judge the copy inside
                // its bound before serving.
                if *age_us >= *bound_us {
                    self.violate(
                        e,
                        "edge_staleness_bound",
                        format!(
                            "edge read of {page:?} served at age {age_us}µs, at or past its \
                             {bound_us}µs bound"
                        ),
                    );
                }
                // Check 6b: cross-site ground truth — every commit the
                // bound obliges the edge to have seen must be reflected.
                let horizon = e.at.as_micros().saturating_sub(*bound_us);
                if let Some(hist) = self.edge_commits.get(page) {
                    let required = hist
                        .iter()
                        .filter(|(at, _)| at.as_micros() <= horizon)
                        .map(|(_, v)| *v)
                        .max()
                        .unwrap_or(0);
                    if *version < required {
                        self.violate(
                            e,
                            "edge_staleness_bound",
                            format!(
                                "edge read of {page:?} served version {version} but version \
                                 {required} was committed before the {bound_us}µs horizon"
                            ),
                        );
                    }
                }
            }
            EventKind::MsgSend { ctx, to, label } if is_data_verdict(label) => {
                // Check 3a: no data verdict for a tombstoned txn.
                if self
                    .tombstoned
                    .get(&site)
                    .is_some_and(|t| t.contains(&ctx.txn))
                {
                    self.violate(
                        e,
                        "data_to_dead_txn",
                        format!("{label} sent to s{} for tombstoned {}", to.0, ctx.txn),
                    );
                }
                // Check 3b: a fully drained site serves no data.
                if self.drained.contains(&site) {
                    self.violate(
                        e,
                        "data_while_drained",
                        format!("{label} sent to s{} while site {} is drained", to.0, site.0),
                    );
                }
            }
            _ => {}
        }
    }

    /// Finishes the audit and returns the violations found.
    #[must_use]
    pub fn finish(self) -> Vec<Violation> {
        self.violations
    }

    /// Violations found so far (streaming use).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Audits a complete merged stream in one call.
#[must_use]
pub fn audit_events(events: &[TraceEvent]) -> Vec<Violation> {
    let mut a = InvariantAuditor::new();
    for e in events {
        a.feed(e);
    }
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use pscc_common::{AbortReason, FileId, PageId, SpanId, TraceCtx, VolId};

    fn txn(site: u32, seq: u64) -> TxnId {
        TxnId::new(SiteId(site), seq)
    }

    fn item(page: u32) -> LockableId {
        LockableId::Page(PageId::new(FileId::new(VolId(0), 0), page))
    }

    fn ev(seq: u64, site: u32, at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            site: SiteId(site),
            at: SimTime::from_micros(at),
            wall_micros: at,
            kind,
        }
    }

    fn grant(seq: u64, site: u32, at: u64, t: TxnId, i: LockableId, mode: LockMode) -> TraceEvent {
        ev(
            seq,
            site,
            at,
            EventKind::LockGrant {
                txn: t,
                item: i,
                mode,
            },
        )
    }

    #[test]
    fn double_ex_is_caught_and_release_clears() {
        let a = txn(0, 1);
        let b = txn(1, 1);
        // Clean handoff: grant, release, grant.
        let ok = vec![
            grant(1, 2, 10, a, item(1), LockMode::Ex),
            ev(2, 2, 20, EventKind::LocksReleased { txn: a }),
            grant(3, 2, 30, b, item(1), LockMode::Ex),
        ];
        assert!(audit_events(&ok).is_empty());
        // Second EX without a release: violation.
        let bad = vec![
            grant(1, 2, 10, a, item(1), LockMode::Ex),
            grant(2, 2, 20, b, item(1), LockMode::Ex),
        ];
        let v = audit_events(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "one_ex_copy");
        // Downgrade (§4.3.2) also clears the EX record.
        let danced = vec![
            grant(1, 2, 10, a, item(1), LockMode::Ex),
            ev(
                2,
                2,
                15,
                EventKind::LockDowngrade {
                    txn: a,
                    item: item(1),
                },
            ),
            grant(3, 2, 20, b, item(1), LockMode::Ex),
        ];
        assert!(audit_events(&danced).is_empty());
    }

    #[test]
    fn grant_before_callback_ack_is_caught() {
        let t = txn(0, 1);
        let cb = |seq, at| {
            ev(
                seq,
                2,
                at,
                EventKind::CallbackSent {
                    to: SiteId(1),
                    txn: t,
                    item: item(1),
                },
            )
        };
        // Grant while the ack is outstanding: violation.
        let bad = vec![cb(1, 10), grant(2, 2, 20, t, item(1), LockMode::Ex)];
        let v = audit_events(&bad);
        assert!(v.iter().any(|v| v.check == "grant_before_callback_ack"));
        // Acked first: clean.
        let ok = vec![
            cb(1, 10),
            ev(
                2,
                2,
                15,
                EventKind::CallbackPurged {
                    from: SiteId(1),
                    txn: t,
                    item: item(1),
                    purged_page: true,
                },
            ),
            grant(3, 2, 20, t, item(1), LockMode::Ex),
        ];
        assert!(audit_events(&ok).is_empty());
        // Recipient declared crashed: the owner may proceed.
        let crashed = vec![
            cb(1, 10),
            ev(2, 2, 15, EventKind::CrashDetected { site: SiteId(1) }),
            grant(3, 2, 20, t, item(1), LockMode::Ex),
        ];
        assert!(audit_events(&crashed).is_empty());
    }

    #[test]
    fn data_to_dead_txn_and_drained_site() {
        let t = txn(0, 1);
        let send = |seq, at, label| {
            ev(
                seq,
                2,
                at,
                EventKind::MsgSend {
                    ctx: TraceCtx {
                        txn: t,
                        origin: SiteId(0),
                        span: SpanId(1),
                        parent: SpanId::NONE,
                    },
                    to: SiteId(0),
                    label,
                },
            )
        };
        let bad = vec![
            ev(1, 2, 10, EventKind::TxnTombstoned { txn: t }),
            send(2, 20, "read_reply"),
        ];
        let v = audit_events(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "data_to_dead_txn");
        // Heartbeats and aborts from a tombstoning site are fine.
        let ok = vec![
            ev(1, 2, 10, EventKind::TxnTombstoned { txn: t }),
            send(2, 20, "txn_aborted"),
        ];
        assert!(audit_events(&ok).is_empty());
        let drained = vec![
            ev(1, 2, 10, EventKind::DrainDone { site: SiteId(2) }),
            send(2, 20, "read_reply"),
        ];
        assert_eq!(audit_events(&drained)[0].check, "data_while_drained");
        let undrained = vec![
            ev(1, 2, 10, EventKind::DrainDone { site: SiteId(2) }),
            ev(2, 2, 15, EventKind::Undrained { site: SiteId(2) }),
            send(3, 20, "read_reply"),
        ];
        assert!(audit_events(&undrained).is_empty());
    }

    #[test]
    fn epoch_regressions_are_caught() {
        let rec = |seq, at, epoch| {
            ev(
                seq,
                2,
                at,
                EventKind::Recovered {
                    site: SiteId(2),
                    epoch,
                    redo: 0,
                    undo: 0,
                    in_doubt: 0,
                },
            )
        };
        assert!(audit_events(&[rec(1, 10, 1), rec(2, 20, 2)]).is_empty());
        let v = audit_events(&[rec(1, 10, 2), rec(2, 20, 2)]);
        assert_eq!(v[0].check, "epoch_monotonicity");
        // Client view regression.
        let joined = |seq, at, epoch| {
            ev(
                seq,
                0,
                at,
                EventKind::Rejoined {
                    server: SiteId(2),
                    epoch,
                },
            )
        };
        assert!(audit_events(&[joined(1, 10, 3), joined(2, 20, 3)]).is_empty());
        let v = audit_events(&[joined(1, 10, 3), joined(2, 20, 2)]);
        assert_eq!(v[0].check, "epoch_monotonicity");
        // Abort clears tombstone-adjacent state without firing anything.
        let t = txn(0, 9);
        assert!(audit_events(&[ev(
            1,
            2,
            5,
            EventKind::Abort {
                txn: t,
                reason: AbortReason::Internal
            }
        )])
        .is_empty());
    }

    #[test]
    fn split_brain_landing_is_caught() {
        let commit = |seq, at, src: u32, to: u32, layout| {
            ev(
                seq,
                src,
                at,
                EventKind::MigrationCommitted {
                    site: SiteId(src),
                    lo: 0,
                    hi: 100,
                    to: SiteId(to),
                    layout,
                },
            )
        };
        let land = |seq, at, dst: u32, from: u32, layout| {
            ev(
                seq,
                dst,
                at,
                EventKind::MigrationLanded {
                    site: SiteId(dst),
                    from: SiteId(from),
                    lo: 0,
                    hi: 100,
                    layout,
                },
            )
        };
        // Clean migration 1 -> 2, then a later one 2 -> 3: no violation.
        let ok = vec![
            commit(1, 10, 1, 2, 2),
            land(2, 20, 2, 1, 2),
            commit(3, 30, 2, 3, 3),
            land(4, 40, 3, 2, 3),
        ];
        assert!(audit_events(&ok).is_empty());
        // A second site landing the same range at the same layout:
        // split brain.
        let bad = vec![
            commit(1, 10, 1, 2, 2),
            land(2, 20, 2, 1, 2),
            land(3, 30, 3, 1, 2),
        ];
        let v = audit_events(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "one_authoritative_owner");
        // Duplicate delivery of the same landing is idempotent.
        let dup = vec![
            commit(1, 10, 1, 2, 2),
            land(2, 20, 2, 1, 2),
            land(3, 30, 2, 1, 2),
        ];
        assert!(audit_events(&dup).is_empty());
    }

    #[test]
    fn edge_staleness_bound_is_checked() {
        let page = PageId::new(FileId::new(VolId(1), 0), 5);
        let committed =
            |seq, at, version| ev(seq, 1, at, EventKind::EdgePageCommitted { page, version });
        let read = |seq, at, version, age_us, bound_us| {
            ev(
                seq,
                3,
                at,
                EventKind::EdgeRead {
                    page,
                    version,
                    age_us,
                    bound_us,
                },
            )
        };
        // v2 commits at t=10_000; a read at t=15_000 with a 10ms bound
        // only obliges commits up to t=5_000, so serving v1 is legal.
        let ok = vec![
            committed(1, 2_000, 1),
            committed(2, 10_000, 2),
            read(3, 15_000, 1, 8_000, 10_000),
        ];
        assert!(audit_events(&ok).is_empty());
        // The same stale read at t=25_000 is past the horizon: caught.
        let bad = vec![
            committed(1, 2_000, 1),
            committed(2, 10_000, 2),
            read(3, 25_000, 1, 9_000, 10_000),
        ];
        let v = audit_events(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "edge_staleness_bound");
        assert!(v[0].detail.contains("version 2"), "{}", v[0].detail);
        // Serving the required version at the horizon is clean.
        let fresh = vec![
            committed(1, 2_000, 1),
            committed(2, 10_000, 2),
            read(3, 25_000, 2, 3_000, 10_000),
        ];
        assert!(audit_events(&fresh).is_empty());
        // A self-reported age at/above the bound is caught even with no
        // commit history at all.
        let over = vec![read(1, 50_000, 7, 10_000, 10_000)];
        assert_eq!(audit_events(&over)[0].check, "edge_staleness_bound");
        // Commit history is durable: a crash marker does not license
        // stale serves afterwards.
        let crashed = vec![
            committed(1, 2_000, 1),
            committed(2, 10_000, 2),
            ev(
                3,
                1,
                12_000,
                EventKind::FaultInjected {
                    from: SiteId(1),
                    to: SiteId(1),
                    what: "crash",
                },
            ),
            read(4, 30_000, 1, 5_000, 10_000),
        ];
        assert_eq!(audit_events(&crashed).len(), 1);
    }

    #[test]
    fn write_ack_after_commit_is_caught() {
        let page = |n| PageId::new(FileId::new(VolId(1), 0), n);
        let ack = |seq, at, site: u32, n| {
            ev(
                seq,
                site,
                at,
                EventKind::WriteAck {
                    page: page(n),
                    to: SiteId(0),
                },
            )
        };
        let commit = ev(
            2,
            1,
            20,
            EventKind::MigrationCommitted {
                site: SiteId(1),
                lo: 0,
                hi: 100,
                to: SiteId(2),
                layout: 2,
            },
        );
        // Ack before the commit, and an ack outside the range after it:
        // clean. Ack inside the range after the commit: violation.
        let bad = vec![
            ack(1, 10, 1, 5),
            commit.clone(),
            ack(3, 30, 1, 200),
            ack(4, 40, 1, 5),
        ];
        let v = audit_events(&bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].check, "write_after_migrate");
        // The range migrating back re-licenses the source.
        let regained = vec![
            commit,
            ev(
                3,
                1,
                30,
                EventKind::MigrationLanded {
                    site: SiteId(1),
                    from: SiteId(2),
                    lo: 0,
                    hi: 100,
                    layout: 3,
                },
            ),
            ack(4, 40, 1, 5),
        ];
        assert!(audit_events(&regained).is_empty());
    }
}
