//! # pscc-obs
//!
//! Observability substrate for the peer-server stack: structured
//! protocol event traces, fixed log-bucket latency histograms, and a
//! metrics registry with Prometheus-text and JSON exporters.

pub mod event;
pub mod hist;
pub mod registry;
pub mod span;
pub mod timeline;

pub use event::{EventKind, EventRing, TraceEvent};
pub use hist::Histogram;
pub use registry::MetricsRegistry;
pub use span::{span, SpanGuard};
pub use timeline::{AvailabilityTimeline, AvailabilityWindow};
