//! # pscc-obs
//!
//! Observability substrate for the peer-server stack: structured
//! protocol event traces, fixed log-bucket latency histograms, a
//! metrics registry with Prometheus-text and JSON exporters, causal
//! cross-site span trees with a Perfetto exporter, critical-path
//! attribution of commit latency, and an online invariant auditor
//! over merged multi-site traces (DESIGN.md §9).

pub mod audit;
pub mod critical_path;
pub mod event;
pub mod hist;
pub mod registry;
pub mod span;
pub mod timeline;
pub mod trace;

pub use audit::{audit_events, InvariantAuditor, Violation};
pub use critical_path::TxnBreakdown;
pub use event::{EventKind, EventRing, TraceEvent};
pub use hist::Histogram;
pub use registry::MetricsRegistry;
pub use span::{span, SpanGuard};
pub use timeline::{AvailabilityTimeline, AvailabilityWindow};
pub use trace::{build_span_trees, render_perfetto, SpanTree};
