//! Commit-availability time series for rolling operations.
//!
//! During a rolling restart the question is not "what was the average
//! throughput" but "was there ever a window in which commits stopped".
//! [`AvailabilityTimeline`] answers it: virtual time is cut into fixed
//! windows from a declared origin, each commit (and attempt) is bucketed
//! into its window, and the control-plane tests assert a per-window floor
//! across the whole operation.

use pscc_common::{SimDuration, SimTime};

/// One fixed-width window of the series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AvailabilityWindow {
    /// Transactions that started (or retried) in this window.
    pub attempts: u64,
    /// Transactions that committed in this window.
    pub commits: u64,
}

/// A windowed commit/attempt series over virtual time.
///
/// # Examples
///
/// ```
/// use pscc_obs::timeline::AvailabilityTimeline;
/// use pscc_common::{SimDuration, SimTime};
///
/// let origin = SimTime::ZERO;
/// let mut tl = AvailabilityTimeline::new(origin, SimDuration::from_millis(100));
/// tl.record_commit(SimTime::from_micros(50_000));
/// tl.record_commit(SimTime::from_micros(150_000));
/// assert_eq!(tl.windows().len(), 2);
/// assert_eq!(tl.min_commits_per_window(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct AvailabilityTimeline {
    origin: SimTime,
    window: SimDuration,
    buckets: Vec<AvailabilityWindow>,
}

impl AvailabilityTimeline {
    /// Start a series at `origin`, cutting time into `window`-wide
    /// buckets. `window` must be non-zero.
    pub fn new(origin: SimTime, window: SimDuration) -> Self {
        assert!(window > SimDuration::ZERO, "window must be non-zero");
        Self {
            origin,
            window,
            buckets: Vec::new(),
        }
    }

    fn bucket_mut(&mut self, now: SimTime) -> &mut AvailabilityWindow {
        let since = now.since(self.origin).as_micros();
        let idx = (since / self.window.as_micros()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, AvailabilityWindow::default());
        }
        &mut self.buckets[idx]
    }

    /// Record a transaction attempt at virtual time `now` (clamped to the
    /// origin if earlier).
    pub fn record_attempt(&mut self, now: SimTime) {
        self.bucket_mut(now).attempts += 1;
    }

    /// Record a commit at virtual time `now`.
    pub fn record_commit(&mut self, now: SimTime) {
        self.bucket_mut(now).commits += 1;
    }

    /// The windows recorded so far, in time order. The last window may
    /// still be partial.
    pub fn windows(&self) -> &[AvailabilityWindow] {
        &self.buckets
    }

    /// Width of one window.
    pub fn window_width(&self) -> SimDuration {
        self.window
    }

    /// Total commits across the series.
    pub fn total_commits(&self) -> u64 {
        self.buckets.iter().map(|b| b.commits).sum()
    }

    /// Total attempts across the series.
    pub fn total_attempts(&self) -> u64 {
        self.buckets.iter().map(|b| b.attempts).sum()
    }

    /// The smallest per-window commit count across all *complete* windows
    /// (the trailing partial window is excluded so a measurement that
    /// stops mid-window does not fake an outage). `None` until at least
    /// one window has completed.
    pub fn min_commits_per_window(&self) -> Option<u64> {
        let complete = self.buckets.len().checked_sub(1)?;
        if complete == 0 {
            return None;
        }
        self.buckets[..complete].iter().map(|b| b.commits).min()
    }

    /// Render the series as a compact one-line-per-window dump for test
    /// failure messages.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let start = self.window.as_micros() * i as u64;
            let _ = writeln!(
                s,
                "window {i:>3} @+{:>8}us: commits={:>4} attempts={:>4}",
                start, b.commits, b.attempts
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn buckets_by_window() {
        let mut tl = AvailabilityTimeline::new(t(1_000), SimDuration::from_micros(100));
        tl.record_commit(t(1_010));
        tl.record_commit(t(1_099));
        tl.record_commit(t(1_100));
        tl.record_attempt(t(1_250));
        let w = tl.windows();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].commits, 2);
        assert_eq!(w[1].commits, 1);
        assert_eq!(w[2].attempts, 1);
        assert_eq!(tl.total_commits(), 3);
        assert_eq!(tl.total_attempts(), 1);
    }

    #[test]
    fn min_excludes_trailing_partial_window() {
        let mut tl = AvailabilityTimeline::new(SimTime::ZERO, SimDuration::from_micros(100));
        assert_eq!(tl.min_commits_per_window(), None);
        tl.record_commit(t(10));
        // Only one (partial) window: still no complete window.
        assert_eq!(tl.min_commits_per_window(), None);
        tl.record_commit(t(110));
        tl.record_commit(t(115));
        // Window 0 complete with 1 commit; window 1 partial with 2.
        assert_eq!(tl.min_commits_per_window(), Some(1));
        tl.record_commit(t(250));
        // Windows 0 (1) and 1 (2) complete.
        assert_eq!(tl.min_commits_per_window(), Some(1));
    }

    #[test]
    fn times_before_origin_clamp_to_first_window() {
        let mut tl = AvailabilityTimeline::new(t(5_000), SimDuration::from_micros(100));
        tl.record_commit(t(10)); // before origin: since() saturates to zero
        assert_eq!(tl.windows()[0].commits, 1);
    }

    #[test]
    fn render_lists_every_window() {
        let mut tl = AvailabilityTimeline::new(SimTime::ZERO, SimDuration::from_micros(100));
        tl.record_commit(t(10));
        tl.record_commit(t(310));
        assert_eq!(tl.render().lines().count(), 4);
    }
}
