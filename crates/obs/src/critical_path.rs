//! Critical-path attribution of commit latency (DESIGN.md §9).
//!
//! Engines emit one `StageSample` per measured latency interval
//! (lock waits, callback and fetch round trips, WAL forces, the two
//! 2PC phases, overload-queue waits). This module sweeps those samples
//! against each transaction's commit window — `Commit{Request}` to
//! `Commit{Done}` at its home site — and produces a per-transaction
//! breakdown whose stages plus an explicit residual (`other`) sum to
//! the measured commit latency *exactly*: overlapping samples are not
//! double-counted (the inner-most stage by [`Stage::priority`] wins
//! the overlap), and time no sample explains is reported, not hidden.

use crate::event::{CommitStage, EventKind, TraceEvent};
use pscc_common::{SimTime, Stage, TxnId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One transaction's commit-latency attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnBreakdown {
    pub txn: TxnId,
    /// Commit window at the home site.
    pub request_at: SimTime,
    pub done_at: SimTime,
    /// `done_at - request_at`.
    pub total_micros: u64,
    /// Micros attributed to each stage within the window (indexed by
    /// [`Stage::index`]); overlaps resolved by priority.
    pub stages: [u64; Stage::COUNT],
    /// Window time no stage sample explains (engine compute, network
    /// hops outside measured round trips).
    pub other_micros: u64,
    /// Stage micros sampled *outside* the commit window (the
    /// transaction's execution phase: fetches, lock waits before the
    /// commit call). Not part of the commit-latency identity.
    pub exec_stages: [u64; Stage::COUNT],
}

impl TxnBreakdown {
    /// Stage sum + residual — equals `total_micros` by construction.
    #[must_use]
    pub fn attributed_micros(&self) -> u64 {
        self.stages.iter().sum::<u64>() + self.other_micros
    }
}

/// Sweeps a merged event stream into per-transaction breakdowns.
/// Transactions without a complete commit window (aborted, still in
/// flight, or with the window's events evicted) are skipped.
#[must_use]
pub fn analyze(events: &[TraceEvent]) -> BTreeMap<TxnId, TxnBreakdown> {
    // Commit windows from the home site's Commit events: first Request,
    // last Done (chaos duplication keeps stamps identical, so either
    // pick is stable).
    let mut req: BTreeMap<TxnId, SimTime> = BTreeMap::new();
    let mut done: BTreeMap<TxnId, SimTime> = BTreeMap::new();
    for e in events {
        if let EventKind::Commit { txn, stage } = &e.kind {
            match stage {
                CommitStage::Request => {
                    req.entry(*txn).or_insert(e.at);
                }
                CommitStage::Done => {
                    done.insert(*txn, e.at);
                }
                _ => {}
            }
        }
    }
    // Gather each committed transaction's samples as intervals.
    let mut intervals: BTreeMap<TxnId, Vec<(u64, u64, Stage)>> = BTreeMap::new();
    let mut exec: BTreeMap<TxnId, [u64; Stage::COUNT]> = BTreeMap::new();
    for e in events {
        let EventKind::StageSample { txn, stage, micros } = &e.kind else {
            continue;
        };
        let (Some(r), Some(d)) = (req.get(txn), done.get(txn)) else {
            continue;
        };
        if d < r {
            continue;
        }
        let (win_lo, win_hi) = (r.as_micros(), d.as_micros());
        let end = e.at.as_micros();
        let start = end.saturating_sub(*micros);
        let clipped_lo = start.max(win_lo);
        let clipped_hi = end.min(win_hi);
        if clipped_lo < clipped_hi {
            intervals
                .entry(*txn)
                .or_default()
                .push((clipped_lo, clipped_hi, *stage));
        }
        let outside = micros - clipped_hi.saturating_sub(clipped_lo);
        if outside > 0 {
            exec.entry(*txn).or_insert([0; Stage::COUNT])[stage.index()] += outside;
        }
    }
    let mut out = BTreeMap::new();
    for (txn, r) in &req {
        let Some(d) = done.get(txn) else { continue };
        if d < r {
            continue;
        }
        let total = d.since(*r).as_micros();
        let mut stages = [0u64; Stage::COUNT];
        if let Some(iv) = intervals.get(txn) {
            // Sweep the elementary segments between interval boundaries;
            // each segment belongs to the highest-priority covering
            // stage, so overlaps never double-count.
            let mut cuts: Vec<u64> = iv.iter().flat_map(|(a, b, _)| [*a, *b]).collect();
            cuts.sort_unstable();
            cuts.dedup();
            for w in cuts.windows(2) {
                let (lo, hi) = (w[0], w[1]);
                let winner = iv
                    .iter()
                    .filter(|(a, b, _)| *a <= lo && hi <= *b)
                    .map(|(_, _, s)| *s)
                    .min_by_key(|s| s.priority());
                if let Some(s) = winner {
                    stages[s.index()] += hi - lo;
                }
            }
        }
        let attributed: u64 = stages.iter().sum();
        out.insert(
            *txn,
            TxnBreakdown {
                txn: *txn,
                request_at: *r,
                done_at: *d,
                total_micros: total,
                stages,
                other_micros: total - attributed,
                exec_stages: exec.get(txn).copied().unwrap_or([0; Stage::COUNT]),
            },
        );
    }
    out
}

/// Fleet-level aggregate of many breakdowns.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Aggregate {
    pub txns: u64,
    pub total_micros: u64,
    pub stages: [u64; Stage::COUNT],
    pub other_micros: u64,
}

#[must_use]
pub fn aggregate<'a>(breakdowns: impl IntoIterator<Item = &'a TxnBreakdown>) -> Aggregate {
    let mut agg = Aggregate::default();
    for b in breakdowns {
        agg.txns += 1;
        agg.total_micros += b.total_micros;
        for (i, s) in b.stages.iter().enumerate() {
            agg.stages[i] += s;
        }
        agg.other_micros += b.other_micros;
    }
    agg
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Renders one transaction's breakdown as a text table.
#[must_use]
pub fn render_txn(b: &TxnBreakdown) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path of {}: commit latency {}µs (t={}..{}µs)",
        b.txn,
        b.total_micros,
        b.request_at.as_micros(),
        b.done_at.as_micros()
    );
    for s in Stage::ALL {
        let v = b.stages[s.index()];
        if v > 0 {
            let _ = writeln!(
                out,
                "  {:<14} {:>10}µs {:>5.1}%",
                s.as_str(),
                v,
                pct(v, b.total_micros)
            );
        }
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>10}µs {:>5.1}%",
        "other",
        b.other_micros,
        pct(b.other_micros, b.total_micros)
    );
    let exec: u64 = b.exec_stages.iter().sum();
    if exec > 0 {
        let _ = writeln!(
            out,
            "  (execution-phase stage time outside the window: {exec}µs)"
        );
    }
    out
}

/// Renders the fleet aggregate as a text table.
#[must_use]
pub fn render_aggregate(agg: &Aggregate) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical-path attribution over {} committed txns, {}µs total commit latency:",
        agg.txns, agg.total_micros
    );
    for s in Stage::ALL {
        let v = agg.stages[s.index()];
        let _ = writeln!(
            out,
            "  {:<14} {:>12}µs {:>5.1}%",
            s.as_str(),
            v,
            pct(v, agg.total_micros)
        );
    }
    let _ = writeln!(
        out,
        "  {:<14} {:>12}µs {:>5.1}%",
        "other",
        agg.other_micros,
        pct(agg.other_micros, agg.total_micros)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::SiteId;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn ev(seq: u64, at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            site: SiteId(0),
            at: SimTime::from_micros(at),
            wall_micros: at,
            kind,
        }
    }

    fn commit(seq: u64, at: u64, t: u64, stage: CommitStage) -> TraceEvent {
        ev(seq, at, EventKind::Commit { txn: txn(t), stage })
    }

    fn sample(seq: u64, at: u64, t: u64, stage: Stage, micros: u64) -> TraceEvent {
        ev(
            seq,
            at,
            EventKind::StageSample {
                txn: txn(t),
                stage,
                micros,
            },
        )
    }

    #[test]
    fn attribution_sums_exactly_and_resolves_overlap() {
        // Window [100, 300]. A 2PC prepare of 150µs ending at 280
        // contains a WAL force of 40µs ending at 250: the force wins
        // its overlap, prepare gets the rest, `other` the remainder.
        let events = vec![
            commit(1, 100, 1, CommitStage::Request),
            sample(2, 250, 1, Stage::WalForce, 40),
            sample(3, 280, 1, Stage::TwopcPrepare, 150),
            commit(4, 300, 1, CommitStage::Done),
        ];
        let b = &analyze(&events)[&txn(1)];
        assert_eq!(b.total_micros, 200);
        assert_eq!(b.stages[Stage::WalForce.index()], 40);
        assert_eq!(b.stages[Stage::TwopcPrepare.index()], 110);
        assert_eq!(b.other_micros, 50);
        assert_eq!(b.attributed_micros(), b.total_micros);
    }

    #[test]
    fn samples_clip_to_window_and_spill_to_exec() {
        // A 100µs lock wait ending at 150 straddles the window start at
        // 100: 50µs inside, 50µs execution-phase.
        let events = vec![
            commit(1, 100, 1, CommitStage::Request),
            sample(2, 150, 1, Stage::LockWait, 100),
            commit(3, 200, 1, CommitStage::Done),
        ];
        let b = &analyze(&events)[&txn(1)];
        assert_eq!(b.stages[Stage::LockWait.index()], 50);
        assert_eq!(b.exec_stages[Stage::LockWait.index()], 50);
        assert_eq!(b.attributed_micros(), 100);
    }

    #[test]
    fn incomplete_windows_are_skipped() {
        let events = vec![
            commit(1, 100, 1, CommitStage::Request),
            commit(2, 100, 2, CommitStage::Request),
            commit(3, 200, 2, CommitStage::Done),
        ];
        let all = analyze(&events);
        assert!(!all.contains_key(&txn(1)), "no Done: skipped");
        assert!(all.contains_key(&txn(2)));
        let agg = aggregate(all.values());
        assert_eq!(agg.txns, 1);
        assert_eq!(agg.total_micros, 100);
        assert!(render_aggregate(&agg).contains("other"));
        assert!(render_txn(&all[&txn(2)]).contains("critical path"));
    }
}
