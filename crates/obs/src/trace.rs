//! Cross-site causal span trees and the Perfetto/Chrome trace export.
//!
//! The engine stamps every traced message hop with a [`TraceCtx`]
//! (span, parent-span) pair and records a `MsgSend` at the sender and a
//! `MsgRecv` at the receiver. This module reconstructs per-transaction
//! span trees from a merged multi-site event stream — tolerating the
//! reordering and duplication a chaos harness injects — and renders
//! them either as an indented text tree (`repro --trace-txn`) or as
//! Chrome `trace_event` JSON loadable in Perfetto / `chrome://tracing`.

use crate::event::{EventKind, TraceEvent};
use pscc_common::{SimTime, SiteId, SpanId, TxnId};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One reconstructed message-hop span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    pub id: SpanId,
    pub parent: SpanId,
    /// The transaction the hop worked for.
    pub txn: TxnId,
    /// The site where that transaction originated.
    pub origin: SiteId,
    /// Message label (e.g. `read_obj`, `commit_req`).
    pub label: &'static str,
    /// Sender site and send stamp, when the `MsgSend` survived the ring.
    pub from: Option<SiteId>,
    pub sent_at: Option<SimTime>,
    /// Receiver site and receive stamp, when the `MsgRecv` survived.
    pub to: Option<SiteId>,
    pub recv_at: Option<SimTime>,
}

impl Span {
    /// The hop's network latency when both ends were recorded.
    #[must_use]
    pub fn latency_micros(&self) -> Option<u64> {
        match (self.sent_at, self.recv_at) {
            (Some(s), Some(r)) if r >= s => Some(r.since(s).as_micros()),
            _ => None,
        }
    }
}

/// A forest of spans for one transaction (usually one tree rooted at
/// the home site's first hop; chaos can orphan subtrees).
#[derive(Debug, Default, Clone)]
pub struct SpanTree {
    /// All spans by id.
    pub spans: BTreeMap<SpanId, Span>,
    /// Children of each span, in first-seen (send-time) order.
    pub children: HashMap<SpanId, Vec<SpanId>>,
    /// Spans whose parent is `NONE` or missing from the stream.
    pub roots: Vec<SpanId>,
}

impl SpanTree {
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Reconstructs per-transaction span trees from a merged event stream.
///
/// Duplicated events (chaos `dup` faults re-record a hop's `MsgRecv`)
/// collapse onto the same span id; a `MsgRecv` whose `MsgSend` was
/// evicted from the sender's ring still creates the span from the
/// receiver's view. Spans whose parents never appear become roots, so
/// a truncated stream degrades to a forest instead of vanishing.
#[must_use]
pub fn build_span_trees(events: &[TraceEvent]) -> BTreeMap<TxnId, SpanTree> {
    let mut trees: BTreeMap<TxnId, SpanTree> = BTreeMap::new();
    for e in events {
        let (ctx, label, send_end, peer) = match &e.kind {
            EventKind::MsgSend { ctx, to, label } => (*ctx, *label, true, *to),
            EventKind::MsgRecv { ctx, from, label } => (*ctx, *label, false, *from),
            _ => continue,
        };
        let tree = trees.entry(ctx.txn).or_default();
        let span = tree.spans.entry(ctx.span).or_insert_with(|| Span {
            id: ctx.span,
            parent: ctx.parent,
            txn: ctx.txn,
            origin: ctx.origin,
            label,
            from: None,
            sent_at: None,
            to: None,
            recv_at: None,
        });
        if send_end {
            // First send wins (a duplicate's stamps are identical; a
            // re-send after chaos keeps the original start).
            if span.sent_at.is_none() {
                span.from = Some(e.site);
                span.sent_at = Some(e.at);
                span.to = Some(peer);
            }
        } else {
            // Last receive wins: under `dup` faults the hop completes
            // when its final copy lands; under `delay` the real arrival
            // is what mattered to the protocol.
            span.from.get_or_insert(peer);
            span.to = Some(e.site);
            span.recv_at = Some(e.at);
        }
    }
    for tree in trees.values_mut() {
        let ids: Vec<SpanId> = tree.spans.keys().copied().collect();
        for id in ids {
            let parent = tree.spans[&id].parent;
            if !parent.is_none() && tree.spans.contains_key(&parent) {
                let kids = tree.children.entry(parent).or_default();
                if !kids.contains(&id) {
                    kids.push(id);
                }
            } else {
                tree.roots.push(id);
            }
        }
        let spans = &tree.spans;
        let key = |id: &SpanId| {
            let s = &spans[id];
            (s.sent_at.or(s.recv_at).unwrap_or(SimTime::ZERO), *id)
        };
        tree.roots.sort_by_key(key);
        tree.roots.dedup();
        for kids in tree.children.values_mut() {
            kids.sort_by_key(key);
        }
    }
    trees
}

/// Renders one transaction's span tree as an indented text dump.
#[must_use]
pub fn render_span_tree(txn: TxnId, tree: &SpanTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== causal trace for {txn} ({} hops) ===", tree.len());
    for root in &tree.roots {
        render_node(tree, *root, 0, &mut out);
    }
    out
}

fn render_node(tree: &SpanTree, id: SpanId, depth: usize, out: &mut String) {
    let s = &tree.spans[&id];
    let from = s.from.map_or_else(|| "?".into(), |x| x.0.to_string());
    let to = s.to.map_or_else(|| "?".into(), |x| x.0.to_string());
    let start = s
        .sent_at
        .or(s.recv_at)
        .map_or(0, pscc_common::SimTime::as_micros);
    let lat = s
        .latency_micros()
        .map_or_else(|| "?".into(), |m| m.to_string());
    let _ = writeln!(
        out,
        "{:indent$}{} {} s{from}->s{to} t={start}µs rtt={lat}µs [{}]",
        "",
        s.label,
        s.id,
        s.txn,
        indent = depth * 2
    );
    if let Some(kids) = tree.children.get(&id) {
        for k in kids {
            render_node(tree, *k, depth + 1, out);
        }
    }
}

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Exports a merged multi-site event stream as Chrome `trace_event`
/// JSON (the "JSON Array Format"), loadable in Perfetto or
/// `chrome://tracing`.
///
/// The mapping: each site is a *process* (`pid`), each transaction a
/// *thread* (`tid`) within the sites it touched, each message hop a
/// pair of `b`/`e` async events (so cross-site arrows render), and
/// each `StageSample` a complete (`X`) slice of its duration ending at
/// the sample's stamp. Non-tracing protocol events become instants.
#[must_use]
pub fn render_perfetto(events: &[TraceEvent]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let mut emit = |line: &str, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(line);
    };
    // Process metadata: one per site seen.
    let mut sites: Vec<u32> = events.iter().map(|e| e.site.0).collect();
    sites.sort_unstable();
    sites.dedup();
    for s in &sites {
        emit(
            &format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{s},\"tid\":0,\
                 \"args\":{{\"name\":\"site {s}\"}}}}"
            ),
            &mut out,
        );
    }
    for e in events {
        let pid = e.site.0;
        let ts = e.at.as_micros();
        match &e.kind {
            EventKind::MsgSend { ctx, to, label } => {
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"name\":\"{label}\",\"cat\":\"msg\",\"ph\":\"b\",\"id\":\"{}\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{ts},\"args\":{{\"txn\":\"{}\",\
                     \"span\":\"{}\",\"parent\":\"{}\",\"to\":{}}}}}",
                    ctx.span, ctx.txn.seq, ctx.txn, ctx.span, ctx.parent, to.0
                );
                emit(&line, &mut out);
            }
            EventKind::MsgRecv { ctx, from, label } => {
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"name\":\"{label}\",\"cat\":\"msg\",\"ph\":\"e\",\"id\":\"{}\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{ts},\"args\":{{\"txn\":\"{}\",\
                     \"from\":{}}}}}",
                    ctx.span, ctx.txn.seq, ctx.txn, from.0
                );
                emit(&line, &mut out);
            }
            EventKind::StageSample { txn, stage, micros } => {
                let start = ts.saturating_sub(*micros);
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"name\":\"{stage}\",\"cat\":\"stage\",\"ph\":\"X\",\
                     \"pid\":{pid},\"tid\":{},\"ts\":{start},\"dur\":{micros},\
                     \"args\":{{\"txn\":\"{txn}\"}}}}",
                    txn.seq
                );
                emit(&line, &mut out);
            }
            kind => {
                let mut name = String::new();
                escape_json(&kind.to_string(), &mut name);
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"name\":\"{name}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\
                     \"pid\":{pid},\"tid\":0,\"ts\":{ts}}}"
                );
                emit(&line, &mut out);
            }
        }
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{Stage, TraceCtx};

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    fn ev(seq: u64, site: u32, at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq,
            site: SiteId(site),
            at: SimTime::from_micros(at),
            wall_micros: at,
            kind,
        }
    }

    fn ctx(t: u64, span: u64, parent: u64) -> TraceCtx {
        TraceCtx {
            txn: txn(t),
            origin: SiteId(0),
            span: SpanId(span),
            parent: SpanId(parent),
        }
    }

    #[test]
    fn tree_from_reordered_and_duplicated_stream() {
        // Hop 1 (root): site0 -> site1; hop 2 (child): site1 -> site0.
        // The stream arrives reordered (child's recv first) and with the
        // child's recv duplicated.
        let events = vec![
            ev(
                10,
                0,
                40,
                EventKind::MsgRecv {
                    ctx: ctx(1, 2, 1),
                    from: SiteId(1),
                    label: "read_reply",
                },
            ),
            ev(
                1,
                0,
                10,
                EventKind::MsgSend {
                    ctx: ctx(1, 1, 0),
                    to: SiteId(1),
                    label: "read_obj",
                },
            ),
            ev(
                2,
                1,
                20,
                EventKind::MsgRecv {
                    ctx: ctx(1, 1, 0),
                    from: SiteId(0),
                    label: "read_obj",
                },
            ),
            ev(
                3,
                1,
                30,
                EventKind::MsgSend {
                    ctx: ctx(1, 2, 1),
                    to: SiteId(0),
                    label: "read_reply",
                },
            ),
            // Chaos duplicate of the child's recv.
            ev(
                11,
                0,
                45,
                EventKind::MsgRecv {
                    ctx: ctx(1, 2, 1),
                    from: SiteId(1),
                    label: "read_reply",
                },
            ),
        ];
        let trees = build_span_trees(&events);
        assert_eq!(trees.len(), 1);
        let tree = &trees[&txn(1)];
        assert_eq!(tree.len(), 2, "duplicates must collapse");
        assert_eq!(tree.roots, vec![SpanId(1)]);
        assert_eq!(tree.children[&SpanId(1)], vec![SpanId(2)]);
        let hop1 = &tree.spans[&SpanId(1)];
        assert_eq!(hop1.latency_micros(), Some(10));
        let hop2 = &tree.spans[&SpanId(2)];
        // Last duplicate's arrival stamp wins.
        assert_eq!(hop2.recv_at, Some(SimTime::from_micros(45)));
        let dump = render_span_tree(txn(1), tree);
        assert!(dump.contains("read_obj"), "{dump}");
        assert!(dump.contains("  read_reply"), "{dump}");
    }

    #[test]
    fn orphaned_span_becomes_root() {
        // The parent hop's events were evicted from every ring.
        let events = vec![ev(
            1,
            1,
            20,
            EventKind::MsgRecv {
                ctx: ctx(1, 9, 7),
                from: SiteId(0),
                label: "commit_req",
            },
        )];
        let trees = build_span_trees(&events);
        let tree = &trees[&txn(1)];
        assert_eq!(tree.roots, vec![SpanId(9)]);
        assert!(tree.spans[&SpanId(9)].sent_at.is_none());
    }

    #[test]
    fn perfetto_export_is_wellformed() {
        let events = vec![
            ev(
                1,
                0,
                10,
                EventKind::MsgSend {
                    ctx: ctx(1, 1, 0),
                    to: SiteId(1),
                    label: "read_obj",
                },
            ),
            ev(
                2,
                1,
                20,
                EventKind::MsgRecv {
                    ctx: ctx(1, 1, 0),
                    from: SiteId(0),
                    label: "read_obj",
                },
            ),
            ev(
                3,
                1,
                25,
                EventKind::StageSample {
                    txn: txn(1),
                    stage: Stage::WalForce,
                    micros: 5,
                },
            ),
            ev(4, 1, 26, EventKind::LocksReleased { txn: txn(1) }),
        ];
        let json = render_perfetto(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"dur\":5"));
        // Balanced braces/brackets (cheap well-formedness proxy — no
        // JSON parser in the workspace).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }
}
