//! Fixed log-bucket latency histograms with linear sub-division.
//!
//! Values are microsecond durations. Each power-of-two range
//! `[2^k, 2^(k+1))` for `k >= 2` is split into 4 equal linear
//! sub-buckets, so any reported quantile upper bound is within 25% of
//! the true value (a plain log2 scheme is off by up to 2×, which made
//! p50/p99 indistinguishable between protocols whose latencies differ
//! by less than a doubling). Values 0..=3 get exact buckets. The whole
//! `u64` range fits in 253 fixed slots — recording stays
//! allocation-free and O(1), cheap enough for the engine's hot paths.

use pscc_common::SimDuration;

/// 4 exact small-value buckets + 4 sub-buckets for each of the 62
/// power-of-two majors `2..=63` covering `[4, u64::MAX]`: the last
/// sub-bucket of the top major saturates at `u64::MAX`.
const SUB_BITS: u32 = 2;
const SUBS: usize = 1 << SUB_BITS; // 4
const N_BUCKETS: usize = 4 + 62 * SUBS; // 252

/// A log-bucketed histogram of microsecond latencies.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    // Major k = position of the highest set bit (>= 2 here); the next
    // SUB_BITS bits below it pick the linear sub-bucket.
    let major = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (major - SUBS.trailing_zeros() as usize)) & (SUBS as u64 - 1)) as usize;
    let idx = 4 + (major - 2) * SUBS + sub;
    idx.min(N_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` in microseconds.
fn bucket_upper(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let major = (i - 4) / SUBS + 2;
    let sub = ((i - 4) % SUBS) as u64;
    if major >= 63 && sub == SUBS as u64 - 1 {
        return u64::MAX;
    }
    // End of sub-bucket `sub` within [2^major, 2^(major+1)).
    (1u64 << major) + (sub + 1) * (1u64 << (major - SUB_BITS as usize)) - 1
}

impl Histogram {
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.record_micros(d.as_micros());
    }

    /// Records one microsecond value.
    pub fn record_micros(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(v);
        self.max_micros = self.max_micros.max(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[must_use]
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean in microseconds (0 when empty).
    #[must_use]
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`); 0 when empty. With the linear sub-division this
    /// over-reports the true quantile by at most 25%.
    #[must_use]
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }

    /// Non-empty buckets as `(upper_bound_micros, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_upper(i), *c))
    }

    /// Cumulative counts at each non-empty bucket boundary (for the
    /// Prometheus `_bucket{le=...}` series), ascending.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut acc = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                acc += c;
                out.push((bucket_upper(i), acc));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_monotone_and_consistent() {
        // Every bucket's values map back to it, and upper bounds rise.
        let mut prev = None;
        for i in 0..N_BUCKETS {
            let up = bucket_upper(i);
            if let Some(p) = prev {
                assert!(up > p, "bucket {i} bound {up} <= {p}");
            }
            prev = Some(up);
            if up != u64::MAX {
                assert_eq!(bucket_index(up), i, "upper bound of {i} maps elsewhere");
                assert!(bucket_index(up + 1) > i);
            }
        }
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn buckets_are_log2_with_linear_subdivision() {
        let mut h = Histogram::new();
        h.record_micros(0);
        h.record_micros(1);
        h.record_micros(2);
        h.record_micros(3);
        h.record_micros(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_micros(), 1030);
        assert_eq!(h.max_micros(), 1024);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // Small values are exact; 1024 lands in the first quarter of
        // [1024, 2048), upper bound 1279 — not 2047.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 1), (3, 1), (1279, 1)]);
    }

    #[test]
    fn relative_error_is_within_25_percent() {
        for v in [5u64, 7, 100, 999, 4096, 12345, 1 << 40] {
            let up = bucket_upper(bucket_index(v));
            assert!(up >= v);
            assert!((up - v) * 4 <= v, "value {v} reported as {up}: error > 25%");
        }
    }

    #[test]
    fn nearby_latencies_get_distinct_quantiles() {
        // Two workloads whose p50 differs by ~30% must not collapse
        // into the same bucket (the regression this scheme fixes).
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..100 {
            a.record_micros(1000);
            b.record_micros(1300);
        }
        assert_ne!(
            a.quantile_upper_micros(0.5),
            b.quantile_upper_micros(0.5),
            "sub-buckets must separate 1000µs from 1300µs"
        );
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            a.record_micros(v);
        }
        for v in [1000u64, 2000] {
            b.record_micros(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert!(a.quantile_upper_micros(0.5) <= 31);
        assert!(a.quantile_upper_micros(1.0) >= 2000);
        let cum = a.cumulative_buckets();
        assert_eq!(cum.last().expect("non-empty").1, 6);
    }

    #[test]
    fn extreme_values_clamp() {
        let mut h = Histogram::new();
        h.record_micros(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_upper_micros(1.0), u64::MAX);
    }
}
