//! Fixed log-bucket latency histograms.
//!
//! Values are microsecond durations. Bucket `i` covers `[2^(i-1), 2^i)`
//! microseconds (bucket 0 holds exact zeros), so the whole `u64` range
//! fits in 65 fixed slots — recording is allocation-free and O(1), cheap
//! enough for the engine's hot paths.

use pscc_common::SimDuration;

const N_BUCKETS: usize = 65;

/// A log-bucketed histogram of microsecond latencies.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` in microseconds.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.record_micros(d.as_micros());
    }

    /// Records one microsecond value.
    pub fn record_micros(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(v);
        self.max_micros = self.max_micros.max(v);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[must_use]
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros
    }

    #[must_use]
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Mean in microseconds (0 when empty).
    #[must_use]
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// (`0.0..=1.0`); 0 when empty.
    #[must_use]
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(N_BUCKETS - 1)
    }

    /// Non-empty buckets as `(upper_bound_micros, count)`, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_upper(i), *c))
    }

    /// Cumulative counts at each non-empty bucket boundary (for the
    /// Prometheus `_bucket{le=...}` series), ascending.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut acc = 0;
        for (i, c) in self.buckets.iter().enumerate() {
            if *c > 0 {
                acc += c;
                out.push((bucket_upper(i), acc));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        let mut h = Histogram::new();
        h.record_micros(0);
        h.record_micros(1);
        h.record_micros(2);
        h.record_micros(3);
        h.record_micros(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_micros(), 1030);
        assert_eq!(h.max_micros(), 1024);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 → bucket 0; 1 → (0,1]; 2,3 → (1,3]; 1024 → (1023, 2047].
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (2047, 1)]);
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            a.record_micros(v);
        }
        for v in [1000u64, 2000] {
            b.record_micros(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert!(a.quantile_upper_micros(0.5) <= 63);
        assert!(a.quantile_upper_micros(1.0) >= 2000);
        let cum = a.cumulative_buckets();
        assert_eq!(cum.last().expect("non-empty").1, 6);
    }

    #[test]
    fn extreme_values_clamp() {
        let mut h = Histogram::new();
        h.record_micros(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_upper_micros(1.0), u64::MAX);
    }
}
