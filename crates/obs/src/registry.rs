//! Metrics registry and exporters.
//!
//! A [`MetricsRegistry`] is a point-in-time snapshot assembled after (or
//! during) a run: named counters, gauges, and [`Histogram`]s. It renders
//! to Prometheus text exposition format and to a JSON document; both
//! renderers are hand-rolled so the export path has no dependency needs.

use crate::hist::Histogram;
use pscc_common::Counters;

/// A snapshot of named metrics.
#[derive(Debug, Default, Clone)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsRegistry {
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds (or accumulates into) a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        if let Some((_, v)) = self.counters.iter_mut().find(|(n, _)| n == name) {
            *v += value;
        } else {
            self.counters.push((name.to_string(), value));
        }
    }

    /// Adds (or overwrites) a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        if let Some((_, v)) = self.gauges.iter_mut().find(|(n, _)| n == name) {
            *v = value;
        } else {
            self.gauges.push((name.to_string(), value));
        }
    }

    /// Adds (or merges into) a histogram.
    pub fn histogram(&mut self, name: &str, hist: &Histogram) {
        if let Some((_, h)) = self.histograms.iter_mut().find(|(n, _)| n == name) {
            h.merge(hist);
        } else {
            self.histograms.push((name.to_string(), hist.clone()));
        }
    }

    /// Adds every [`Counters`] field as a counter under its field name.
    pub fn counters_struct(&mut self, c: &Counters) {
        for (name, value) in c.fields() {
            self.counter(name, value);
        }
    }

    /// Registered counter value (tests/tools).
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Registered gauge value (tests/tools).
    #[must_use]
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Registered histogram (tests/tools).
    #[must_use]
    pub fn histogram_ref(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Number of registered histograms.
    #[must_use]
    pub fn histogram_count(&self) -> usize {
        self.histograms.len()
    }

    /// Renders the snapshot in Prometheus text exposition format. Metric
    /// names get a `pscc_` prefix; histogram bucket bounds are emitted in
    /// microseconds via the `le` label.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!(
                "# TYPE pscc_{n}_total counter\npscc_{n}_total {v}\n"
            ));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE pscc_{n} gauge\npscc_{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE pscc_{n}_micros histogram\n"));
            for (le, cum) in h.cumulative_buckets() {
                out.push_str(&format!("pscc_{n}_micros_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!(
                "pscc_{n}_micros_bucket{{le=\"+Inf\"}} {}\n",
                h.count()
            ));
            out.push_str(&format!("pscc_{n}_micros_sum {}\n", h.sum_micros()));
            out.push_str(&format!("pscc_{n}_micros_count {}\n", h.count()));
        }
        out
    }

    /// Renders the snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {v}", sanitize(name)));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rendered = if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            };
            out.push_str(&format!("\n    \"{}\": {rendered}", sanitize(name)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum_micros\": {}, \"max_micros\": {}, \
                 \"mean_micros\": {:.3}, \"p50_le_micros\": {}, \"p99_le_micros\": {}, \
                 \"buckets\": [",
                sanitize(name),
                h.count(),
                h.sum_micros(),
                h.max_micros(),
                h.mean_micros(),
                h.quantile_upper_micros(0.5),
                h.quantile_upper_micros(0.99),
            ));
            for (j, (le, c)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"le_micros\": {le}, \"count\": {c}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_shape() {
        let mut reg = MetricsRegistry::new();
        reg.counter("commits", 12);
        reg.gauge("timeout_current_micros", 1500.5);
        let mut h = Histogram::new();
        h.record_micros(5);
        h.record_micros(100);
        reg.histogram("lock_wait", &h);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE pscc_commits_total counter"), "{text}");
        assert!(text.contains("pscc_commits_total 12"), "{text}");
        assert!(
            text.contains("pscc_timeout_current_micros 1500.5"),
            "{text}"
        );
        assert!(
            text.contains("pscc_lock_wait_micros_bucket{le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("pscc_lock_wait_micros_count 2"), "{text}");
    }

    #[test]
    fn json_shape_and_counter_merge() {
        let mut reg = MetricsRegistry::new();
        reg.counter("commits", 5);
        reg.counter("commits", 7);
        let mut h = Histogram::new();
        h.record_micros(1);
        reg.histogram("fetch_rtt", &h);
        reg.histogram("fetch_rtt", &h);
        let json = reg.render_json();
        assert!(json.contains("\"commits\": 12"), "{json}");
        assert!(json.contains("\"fetch_rtt\""), "{json}");
        assert!(json.contains("\"count\": 2"), "{json}");
        assert_eq!(reg.counter_value("commits"), Some(12));
        assert_eq!(reg.histogram_count(), 1);
    }

    #[test]
    fn counters_struct_exports_every_field() {
        let c = pscc_common::Counters {
            commits: 3,
            ..Default::default()
        };
        let mut reg = MetricsRegistry::new();
        reg.counters_struct(&c);
        assert_eq!(reg.counter_value("commits"), Some(3));
        let json = reg.render_json();
        for (name, _) in c.fields() {
            assert!(json.contains(&format!("\"{name}\"")), "missing {name}");
        }
    }
}
