//! Lightweight timing spans for the threaded/TCP paths.
//!
//! A [`SpanGuard`] measures the wall-clock duration of a scope and, when
//! the `spans` cargo feature is enabled, prints one line per span to
//! stderr on drop (`span name=... micros=...`). With the feature off the
//! guard still measures (so callers can read [`SpanGuard::elapsed_micros`])
//! but emits nothing — the hot path stays silent. The surface is shaped
//! like `tracing::span!` entry guards so a real subscriber can slot in
//! later without touching call sites.

use std::time::Instant;

/// RAII scope timer; see module docs for emission rules.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Instant,
    emitted: bool,
}

/// Opens a span over the enclosing scope.
#[must_use]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        name,
        start: Instant::now(),
        emitted: false,
    }
}

impl SpanGuard {
    /// Wall-clock microseconds since the span opened.
    #[must_use]
    pub fn elapsed_micros(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Span name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Closes the span now, emitting (at most once) if the feature is on.
    pub fn finish(mut self) {
        self.emit();
    }

    fn emit(&mut self) {
        if self.emitted {
            return;
        }
        self.emitted = true;
        #[cfg(feature = "spans")]
        eprintln!("span name={} micros={}", self.name, self.elapsed_micros());
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_measures_time() {
        let s = span("test_scope");
        assert_eq!(s.name(), "test_scope");
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(s.elapsed_micros() >= 1000);
        s.finish();
    }
}
