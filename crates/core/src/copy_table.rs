//! The server's copy table (paper §4.1): which clients cache which pages
//! (and, for hierarchical locking, which files), plus the per-client ship
//! sequence numbers that defuse purge races (§4.2.4).

use pscc_common::{FileId, PageId, SiteId};
use std::collections::HashMap;

/// Copy table of one owning peer server.
#[derive(Debug, Default)]
pub struct CopyTable {
    /// page -> client -> ship sequence number of the latest copy sent.
    pages: HashMap<PageId, HashMap<SiteId, u64>>,
}

impl CopyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a ship of `page` to `client`, returning the new ship
    /// sequence number to embed in the snapshot.
    pub fn record_ship(&mut self, page: PageId, client: SiteId) -> u64 {
        let e = self
            .pages
            .entry(page)
            .or_default()
            .entry(client)
            .or_insert(0);
        *e += 1;
        *e
    }

    /// Handles a purge notice. Returns `true` if the entry was removed,
    /// `false` if the purge was stale (a newer copy has been shipped
    /// since — the purge race of §4.2.4) or unknown.
    pub fn purge(&mut self, page: PageId, client: SiteId, ship_seq: u64) -> bool {
        let Some(clients) = self.pages.get_mut(&page) else {
            return false;
        };
        match clients.get(&client) {
            Some(cur) if *cur == ship_seq => {
                clients.remove(&client);
                if clients.is_empty() {
                    self.pages.remove(&page);
                }
                true
            }
            _ => false,
        }
    }

    /// Removes the entry unconditionally (page-level callback purged the
    /// page at the client, so the server *knows* it is gone).
    pub fn drop_entry(&mut self, page: PageId, client: SiteId) {
        if let Some(clients) = self.pages.get_mut(&page) {
            clients.remove(&client);
            if clients.is_empty() {
                self.pages.remove(&page);
            }
        }
    }

    /// Clients caching `page`.
    pub fn clients(&self, page: PageId) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self
            .pages
            .get(&page)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Clients caching `page`, excluding `except`.
    pub fn clients_except(&self, page: PageId, except: SiteId) -> Vec<SiteId> {
        self.clients(page)
            .into_iter()
            .filter(|c| *c != except)
            .collect()
    }

    /// Whether anyone besides `except` caches the page.
    pub fn cached_elsewhere(&self, page: PageId, except: SiteId) -> bool {
        !self.clients_except(page, except).is_empty()
    }

    /// Clients caching at least one page of `file` (a file is "cached" at
    /// a client if at least one of its pages is, §4.3.1).
    pub fn file_clients(&self, file: FileId) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self
            .pages
            .iter()
            .filter(|(p, _)| p.file == file)
            .flat_map(|(_, m)| m.keys().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Clients caching at least one page of `vol`.
    pub fn volume_clients(&self, vol: pscc_common::VolId) -> Vec<SiteId> {
        let mut v: Vec<SiteId> = self
            .pages
            .iter()
            .filter(|(p, _)| p.vol() == vol)
            .flat_map(|(_, m)| m.keys().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Drops every entry of `client` for pages of `file` (after a
    /// successful file callback).
    pub fn drop_file_entries(&mut self, file: FileId, client: SiteId) {
        self.pages.retain(|p, clients| {
            if p.file == file {
                clients.remove(&client);
            }
            !clients.is_empty()
        });
    }

    /// Drops every entry of `client` across all pages (the site crashed,
    /// so its cache no longer exists). Returns how many pages lost an
    /// entry.
    pub fn drop_site_entries(&mut self, client: SiteId) -> usize {
        let mut dropped = 0;
        self.pages.retain(|_, clients| {
            if clients.remove(&client).is_some() {
                dropped += 1;
            }
            !clients.is_empty()
        });
        dropped
    }

    /// Every `(client, ship_seq)` entry for `page`, sorted by client —
    /// the retained callback obligations a migration must hand to the
    /// new owner so later writes still call cached copies back.
    pub fn entries(&self, page: PageId) -> Vec<(SiteId, u64)> {
        let mut v: Vec<(SiteId, u64)> = self
            .pages
            .get(&page)
            .map(|m| m.iter().map(|(c, s)| (*c, *s)).collect())
            .unwrap_or_default();
        v.sort();
        v
    }

    /// Restores an entry shipped over from a migrating source, preserving
    /// its ship sequence so in-flight purges still match (§4.2.4). Keeps
    /// whichever sequence is newer if an entry already exists.
    pub fn restore(&mut self, page: PageId, client: SiteId, ship_seq: u64) {
        let e = self
            .pages
            .entry(page)
            .or_default()
            .entry(client)
            .or_insert(0);
        *e = (*e).max(ship_seq);
    }

    /// Drops every entry for pages numbered `[lo, hi)` of the database
    /// file, returning how many `(page, client)` entries went — the
    /// source's side of a committed migration (the destination owns the
    /// obligations now).
    pub fn drop_range(&mut self, lo: u32, hi: u32) -> usize {
        let mut dropped = 0;
        self.pages.retain(|p, clients| {
            if (lo..hi).contains(&p.page) {
                dropped += clients.len();
                false
            } else {
                true
            }
        });
        dropped
    }

    /// Number of (page, client) entries (diagnostics).
    pub fn len(&self) -> usize {
        self.pages.values().map(HashMap::len).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::VolId;

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    #[test]
    fn ship_and_purge_roundtrip() {
        let mut ct = CopyTable::new();
        let s1 = ct.record_ship(pid(1), SiteId(1));
        assert_eq!(s1, 1);
        assert_eq!(ct.clients(pid(1)), vec![SiteId(1)]);
        assert!(ct.purge(pid(1), SiteId(1), s1));
        assert!(ct.is_empty());
    }

    #[test]
    fn stale_purge_ignored() {
        let mut ct = CopyTable::new();
        let s1 = ct.record_ship(pid(1), SiteId(1));
        let s2 = ct.record_ship(pid(1), SiteId(1)); // re-ship (newer copy)
        assert!(s2 > s1);
        // The purge for the *old* copy arrives late: must be ignored.
        assert!(!ct.purge(pid(1), SiteId(1), s1));
        assert_eq!(ct.clients(pid(1)), vec![SiteId(1)]);
        assert!(ct.purge(pid(1), SiteId(1), s2));
    }

    #[test]
    fn clients_except_and_elsewhere() {
        let mut ct = CopyTable::new();
        ct.record_ship(pid(1), SiteId(1));
        ct.record_ship(pid(1), SiteId(2));
        assert_eq!(ct.clients_except(pid(1), SiteId(1)), vec![SiteId(2)]);
        assert!(ct.cached_elsewhere(pid(1), SiteId(1)));
        ct.drop_entry(pid(1), SiteId(2));
        assert!(!ct.cached_elsewhere(pid(1), SiteId(1)));
    }

    #[test]
    fn drop_site_entries_clears_a_crashed_client() {
        let mut ct = CopyTable::new();
        ct.record_ship(pid(1), SiteId(1));
        ct.record_ship(pid(1), SiteId(2));
        ct.record_ship(pid(2), SiteId(1));
        assert_eq!(ct.drop_site_entries(SiteId(1)), 2);
        assert_eq!(ct.clients(pid(1)), vec![SiteId(2)]);
        assert!(ct.clients(pid(2)).is_empty());
        assert_eq!(ct.drop_site_entries(SiteId(1)), 0);
    }

    #[test]
    fn range_transfer_preserves_ship_seqs() {
        let mut ct = CopyTable::new();
        ct.record_ship(pid(1), SiteId(1));
        let s = ct.record_ship(pid(1), SiteId(1)); // seq 2
        ct.record_ship(pid(1), SiteId(2));
        ct.record_ship(pid(5), SiteId(1));
        assert_eq!(ct.entries(pid(1)), vec![(SiteId(1), 2), (SiteId(2), 1)]);

        // Source side: the range [0, 3) leaves.
        assert_eq!(ct.drop_range(0, 3), 2);
        assert!(ct.clients(pid(1)).is_empty());
        assert_eq!(ct.clients(pid(5)), vec![SiteId(1)]);

        // Destination side: restore with the original sequences.
        let mut dst = CopyTable::new();
        dst.restore(pid(1), SiteId(1), s);
        dst.restore(pid(1), SiteId(2), 1);
        // A stale restore never regresses the sequence.
        dst.restore(pid(1), SiteId(1), 1);
        assert!(!dst.purge(pid(1), SiteId(1), 1), "old-seq purge is stale");
        assert!(dst.purge(pid(1), SiteId(1), s));
    }

    #[test]
    fn file_level_queries() {
        let mut ct = CopyTable::new();
        ct.record_ship(pid(1), SiteId(1));
        ct.record_ship(pid(2), SiteId(2));
        let f = FileId::new(VolId(0), 0);
        assert_eq!(ct.file_clients(f), vec![SiteId(1), SiteId(2)]);
        assert_eq!(ct.volume_clients(VolId(0)), vec![SiteId(1), SiteId(2)]);
        ct.drop_file_entries(f, SiteId(1));
        assert_eq!(ct.file_clients(f), vec![SiteId(2)]);
    }
}
