//! Versioned ownership directory: the dynamic successor of the static
//! [`OwnerMap`].
//!
//! The paper fixes data placement at volume-creation time (§5.5); online
//! migration re-homes a page range while the cluster runs. Every site —
//! owner and caching client alike — holds an [`OwnershipDirectory`]: an
//! [`OwnerMap`] stamped with a monotonically increasing **layout
//! version**. A committed migration bumps the version at the source, the
//! destination, and (lazily, via [`Message::WrongOwner`] redirects) at
//! every client that still routes by the old layout.
//!
//! The version is the fence: a request that reaches a site which no
//! longer owns the page is refused with `WrongOwner { layout, new_owner }`
//! carrying the *newer* layout, and the client applies the move locally
//! before re-routing. A `WrongOwner` carrying a layout no newer than the
//! client's own is ignored as stale (the destination has simply not
//! activated yet) and retried with backoff — the directory never moves
//! backwards.
//!
//! [`Message::WrongOwner`]: crate::msg::Message::WrongOwner

use pscc_common::{PageId, SiteId};

use crate::owner_map::{OwnerMap, OwnershipError};

/// The serialized form persisted in WAL checkpoints and shipped in
/// migration records: `(version, ranges)`.
pub type LayoutImage = (u64, Vec<(u32, u32, SiteId)>);

/// An [`OwnerMap`] stamped with a layout version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipDirectory {
    version: u64,
    map: OwnerMap,
}

impl OwnershipDirectory {
    /// Wraps a boot-time placement map as layout version 1.
    pub fn new(map: OwnerMap) -> Self {
        OwnershipDirectory { version: 1, map }
    }

    /// The current layout version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying map (static-placement queries: `pages_of`, …).
    pub fn map(&self) -> &OwnerMap {
        &self.map
    }

    /// The owner of `page`, or a typed refusal if no range covers it.
    pub fn try_owner(&self, page: PageId) -> Result<SiteId, OwnershipError> {
        self.map.owner(page)
    }

    /// The owner of `page`, if any range covers it.
    pub fn owner_of(&self, page: PageId) -> Option<SiteId> {
        self.map.owner(page).ok()
    }

    /// The covering range of `page`: `(lo, hi, owner)`.
    pub fn locate(&self, page: PageId) -> Option<(u32, u32, SiteId)> {
        self.map.locate(page)
    }

    /// All page numbers owned by `site` (database of `total_pages`).
    pub fn pages_of(&self, site: SiteId, total_pages: u32) -> Vec<u32> {
        self.map.pages_of(site, total_pages)
    }

    /// Every owning site.
    pub fn owners(&self) -> Vec<SiteId> {
        self.map.owners()
    }

    /// Applies a committed move: pages `[lo, hi)` re-home to `to`, and
    /// the directory advances to `version`. Ignored (returns `false`) if
    /// `version` is not newer than the current layout — moves are
    /// monotone and idempotent, so replaying a stale or duplicate move
    /// image is harmless.
    pub fn apply_move(&mut self, lo: u32, hi: u32, to: SiteId, version: u64) -> bool {
        if version <= self.version || lo >= hi {
            return false;
        }
        let mut ranges = match &self.map {
            // A single-owner map becomes a ranged one spanning all pages.
            OwnerMap::Single(s) => vec![(0, u32::MAX, *s)],
            OwnerMap::Ranges(rs) => rs.clone(),
        };
        // Subtract the moved span from every overlapping range…
        let mut next: Vec<(u32, u32, SiteId)> = Vec::with_capacity(ranges.len() + 2);
        for (rlo, rhi, owner) in ranges.drain(..) {
            if rhi <= lo || rlo >= hi {
                next.push((rlo, rhi, owner));
                continue;
            }
            if rlo < lo {
                next.push((rlo, lo, owner));
            }
            if rhi > hi {
                next.push((hi, rhi, owner));
            }
        }
        // …then insert it under its new owner and renormalize.
        next.push((lo, hi, to));
        next.sort_by_key(|(rlo, _, _)| *rlo);
        let mut merged: Vec<(u32, u32, SiteId)> = Vec::with_capacity(next.len());
        for r in next {
            match merged.last_mut() {
                Some(last) if last.1 == r.0 && last.2 == r.2 => last.1 = r.1,
                _ => merged.push(r),
            }
        }
        self.map = OwnerMap::Ranges(merged);
        self.version = version;
        true
    }

    /// The serialized layout for WAL checkpoints / migration records.
    pub fn to_image(&self) -> LayoutImage {
        let ranges = match &self.map {
            OwnerMap::Single(s) => vec![(0, u32::MAX, *s)],
            OwnerMap::Ranges(rs) => rs.clone(),
        };
        (self.version, ranges)
    }

    /// Rebuilds a directory from a persisted [`LayoutImage`].
    pub fn from_image(image: &LayoutImage) -> Self {
        OwnershipDirectory {
            version: image.0,
            map: OwnerMap::Ranges(image.1.clone()),
        }
    }

    /// Adopts `image` if it is newer than the current layout.
    pub fn adopt_image(&mut self, image: &LayoutImage) -> bool {
        if image.0 <= self.version {
            return false;
        }
        *self = Self::from_image(image);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    #[test]
    fn boot_directory_is_version_one() {
        let d = OwnershipDirectory::new(OwnerMap::Single(SiteId(3)));
        assert_eq!(d.version(), 1);
        assert_eq!(d.try_owner(pid(7)), Ok(SiteId(3)));
        assert_eq!(d.locate(pid(7)), Some((0, u32::MAX, SiteId(3))));
    }

    #[test]
    fn apply_move_splits_and_bumps() {
        let mut d = OwnershipDirectory::new(OwnerMap::Ranges(vec![
            (0, 100, SiteId(1)),
            (100, 200, SiteId(2)),
        ]));
        assert!(d.apply_move(20, 60, SiteId(2), 2));
        assert_eq!(d.version(), 2);
        assert_eq!(d.owner_of(pid(19)), Some(SiteId(1)));
        assert_eq!(d.owner_of(pid(20)), Some(SiteId(2)));
        assert_eq!(d.owner_of(pid(59)), Some(SiteId(2)));
        assert_eq!(d.owner_of(pid(60)), Some(SiteId(1)));
        assert_eq!(d.owner_of(pid(150)), Some(SiteId(2)));
        // Every page stays covered.
        for p in 0..200 {
            assert!(d.owner_of(pid(p)).is_some(), "page {p} uncovered");
        }
    }

    #[test]
    fn apply_move_merges_adjacent_same_owner() {
        let mut d = OwnershipDirectory::new(OwnerMap::Ranges(vec![
            (0, 100, SiteId(1)),
            (100, 200, SiteId(2)),
        ]));
        assert!(d.apply_move(50, 100, SiteId(2), 2));
        assert_eq!(
            d.map(),
            &OwnerMap::Ranges(vec![(0, 50, SiteId(1)), (50, 200, SiteId(2))])
        );
    }

    #[test]
    fn stale_or_duplicate_moves_are_ignored() {
        let mut d = OwnershipDirectory::new(OwnerMap::Ranges(vec![(0, 10, SiteId(1))]));
        assert!(d.apply_move(0, 5, SiteId(2), 2));
        assert!(!d.apply_move(0, 5, SiteId(2), 2), "duplicate version");
        assert!(!d.apply_move(5, 10, SiteId(2), 1), "older version");
        assert_eq!(d.owner_of(pid(7)), Some(SiteId(1)));
    }

    #[test]
    fn single_map_promotes_to_ranges_on_move() {
        let mut d = OwnershipDirectory::new(OwnerMap::Single(SiteId(0)));
        assert!(d.apply_move(10, 20, SiteId(1), 2));
        assert_eq!(d.owner_of(pid(9)), Some(SiteId(0)));
        assert_eq!(d.owner_of(pid(10)), Some(SiteId(1)));
        assert_eq!(d.owner_of(pid(20)), Some(SiteId(0)));
    }

    #[test]
    fn image_round_trip() {
        let mut d = OwnershipDirectory::new(OwnerMap::Ranges(vec![
            (0, 100, SiteId(1)),
            (100, 200, SiteId(2)),
        ]));
        d.apply_move(0, 30, SiteId(2), 5);
        let img = d.to_image();
        let d2 = OwnershipDirectory::from_image(&img);
        assert_eq!(d, d2);

        let mut stale = OwnershipDirectory::new(OwnerMap::Single(SiteId(1)));
        assert!(stale.adopt_image(&img));
        assert_eq!(stale.version(), 5);
        assert!(!stale.adopt_image(&img), "same version not re-adopted");
    }
}
