//! Static data-placement map: which peer server owns which page.
//!
//! In client-server configuration a single site owns the whole database;
//! in peer-servers configuration the database is partitioned by page
//! number (the paper partitions HOTCOLD by hot range and UNIFORM into ten
//! equal pieces, §5.5).

use pscc_common::{PageId, SiteId};
use serde::{Deserialize, Serialize};

/// A page that no range of the layout covers.
///
/// With static layouts this was a configuration error (and panicked);
/// with online migration an uncovered page is a reachable transient —
/// a stale layout image, a range mid-move — so lookups surface it as a
/// typed error that callers turn into a traced refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnershipError {
    /// The page no range covers.
    pub page: PageId,
}

impl std::fmt::Display for OwnershipError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no owner for page {}", self.page)
    }
}

impl std::error::Error for OwnershipError {}

/// Which site owns each page of the (single, conceptual) database file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OwnerMap {
    /// One site owns everything (client-server configuration).
    Single(SiteId),
    /// Ownership by page-number range: `(start, end_exclusive, owner)`,
    /// sorted, covering the whole database (peer-servers configuration).
    Ranges(Vec<(u32, u32, SiteId)>),
}

impl OwnerMap {
    /// The owner of `page`, or [`OwnershipError`] if no range covers it.
    pub fn owner(&self, page: PageId) -> Result<SiteId, OwnershipError> {
        match self {
            OwnerMap::Single(s) => Ok(*s),
            OwnerMap::Ranges(rs) => rs
                .iter()
                .find(|(lo, hi, _)| (*lo..*hi).contains(&page.page))
                .map(|(_, _, s)| *s)
                .ok_or(OwnershipError { page }),
        }
    }

    /// The covering range of `page`: `(lo, hi, owner)`. `Single` maps
    /// report one range spanning every page number.
    pub fn locate(&self, page: PageId) -> Option<(u32, u32, SiteId)> {
        match self {
            OwnerMap::Single(s) => Some((0, u32::MAX, *s)),
            OwnerMap::Ranges(rs) => rs
                .iter()
                .find(|(lo, hi, _)| (*lo..*hi).contains(&page.page))
                .copied(),
        }
    }

    /// All page numbers owned by `site` within a database of
    /// `total_pages` pages.
    pub fn pages_of(&self, site: SiteId, total_pages: u32) -> Vec<u32> {
        match self {
            OwnerMap::Single(s) if *s == site => (0..total_pages).collect(),
            OwnerMap::Single(_) => Vec::new(),
            OwnerMap::Ranges(rs) => rs
                .iter()
                .filter(|(_, _, o)| *o == site)
                .flat_map(|(lo, hi, _)| *lo..(*hi).min(total_pages))
                .collect(),
        }
    }

    /// Every owning site.
    pub fn owners(&self) -> Vec<SiteId> {
        match self {
            OwnerMap::Single(s) => vec![*s],
            OwnerMap::Ranges(rs) => {
                let mut v: Vec<SiteId> = rs.iter().map(|(_, _, s)| *s).collect();
                v.sort();
                v.dedup();
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    #[test]
    fn single_owner() {
        let m = OwnerMap::Single(SiteId(0));
        assert_eq!(m.owner(pid(123)), Ok(SiteId(0)));
        assert_eq!(m.pages_of(SiteId(0), 5), vec![0, 1, 2, 3, 4]);
        assert!(m.pages_of(SiteId(1), 5).is_empty());
        assert_eq!(m.owners(), vec![SiteId(0)]);
    }

    #[test]
    fn ranged_owners() {
        let m = OwnerMap::Ranges(vec![(0, 10, SiteId(1)), (10, 20, SiteId(2))]);
        assert_eq!(m.owner(pid(0)), Ok(SiteId(1)));
        assert_eq!(m.owner(pid(9)), Ok(SiteId(1)));
        assert_eq!(m.owner(pid(10)), Ok(SiteId(2)));
        assert_eq!(m.pages_of(SiteId(2), 20), (10..20).collect::<Vec<_>>());
        assert_eq!(m.owners(), vec![SiteId(1), SiteId(2)]);
        assert_eq!(m.locate(pid(9)), Some((0, 10, SiteId(1))));
    }

    #[test]
    fn uncovered_page_is_a_typed_error() {
        let m = OwnerMap::Ranges(vec![(0, 10, SiteId(1))]);
        let err = m.owner(pid(10)).unwrap_err();
        assert_eq!(err.page, pid(10));
        assert_eq!(err.to_string(), format!("no owner for page {}", pid(10)));
        assert_eq!(m.locate(pid(10)), None);
    }
}
