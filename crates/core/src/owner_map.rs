//! Static data-placement map: which peer server owns which page.
//!
//! In client-server configuration a single site owns the whole database;
//! in peer-servers configuration the database is partitioned by page
//! number (the paper partitions HOTCOLD by hot range and UNIFORM into ten
//! equal pieces, §5.5).

use pscc_common::{PageId, SiteId};
use serde::{Deserialize, Serialize};

/// Which site owns each page of the (single, conceptual) database file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OwnerMap {
    /// One site owns everything (client-server configuration).
    Single(SiteId),
    /// Ownership by page-number range: `(start, end_exclusive, owner)`,
    /// sorted, covering the whole database (peer-servers configuration).
    Ranges(Vec<(u32, u32, SiteId)>),
}

impl OwnerMap {
    /// The owner of `page`.
    ///
    /// # Panics
    ///
    /// Panics if a ranged map does not cover the page (configuration
    /// error).
    pub fn owner(&self, page: PageId) -> SiteId {
        match self {
            OwnerMap::Single(s) => *s,
            OwnerMap::Ranges(rs) => rs
                .iter()
                .find(|(lo, hi, _)| (*lo..*hi).contains(&page.page))
                .map(|(_, _, s)| *s)
                .unwrap_or_else(|| panic!("no owner for page {page}")),
        }
    }

    /// All page numbers owned by `site` within a database of
    /// `total_pages` pages.
    pub fn pages_of(&self, site: SiteId, total_pages: u32) -> Vec<u32> {
        match self {
            OwnerMap::Single(s) if *s == site => (0..total_pages).collect(),
            OwnerMap::Single(_) => Vec::new(),
            OwnerMap::Ranges(rs) => rs
                .iter()
                .filter(|(_, _, o)| *o == site)
                .flat_map(|(lo, hi, _)| *lo..(*hi).min(total_pages))
                .collect(),
        }
    }

    /// Every owning site.
    pub fn owners(&self) -> Vec<SiteId> {
        match self {
            OwnerMap::Single(s) => vec![*s],
            OwnerMap::Ranges(rs) => {
                let mut v: Vec<SiteId> = rs.iter().map(|(_, _, s)| *s).collect();
                v.sort();
                v.dedup();
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    #[test]
    fn single_owner() {
        let m = OwnerMap::Single(SiteId(0));
        assert_eq!(m.owner(pid(123)), SiteId(0));
        assert_eq!(m.pages_of(SiteId(0), 5), vec![0, 1, 2, 3, 4]);
        assert!(m.pages_of(SiteId(1), 5).is_empty());
        assert_eq!(m.owners(), vec![SiteId(0)]);
    }

    #[test]
    fn ranged_owners() {
        let m = OwnerMap::Ranges(vec![(0, 10, SiteId(1)), (10, 20, SiteId(2))]);
        assert_eq!(m.owner(pid(0)), SiteId(1));
        assert_eq!(m.owner(pid(9)), SiteId(1));
        assert_eq!(m.owner(pid(10)), SiteId(2));
        assert_eq!(m.pages_of(SiteId(2), 20), (10..20).collect::<Vec<_>>());
        assert_eq!(m.owners(), vec![SiteId(1), SiteId(2)]);
    }

    #[test]
    #[should_panic(expected = "no owner")]
    fn uncovered_page_panics() {
        let m = OwnerMap::Ranges(vec![(0, 10, SiteId(1))]);
        let _ = m.owner(pid(10));
    }
}
