//! # pscc-core
//!
//! The primary contribution of *Zaharioudakis & Carey, "Hierarchical,
//! Adaptive Cache Consistency in a Page Server OODBMS"* (ICDCS 1997 /
//! IEEE TC 47(4) 1998), re-implemented from scratch: a page-server
//! OODBMS engine with inter-transaction client caching kept consistent by
//! **callback locking**, at a granularity that adapts between pages and
//! objects.
//!
//! Three protocols are selectable via
//! [`SystemConfig::protocol`](pscc_common::SystemConfig):
//!
//! * **PS** — the basic page server: page-level locking, page-level
//!   callbacks;
//! * **PS-OA** — object-level locking with adaptive callbacks (a callback
//!   invalidates the whole page when nobody at the client uses it, and
//!   deescalates to the single object otherwise);
//! * **PS-AA** — PS-OA plus *adaptive page locks*: in the absence of
//!   conflicts a writer is granted permission to update any object of
//!   the page with no further server interaction, deescalating (and
//!   later re-escalating) as contention appears and dissipates.
//!
//! The engine also implements the paper's hierarchical locking (explicit
//! volume/file/page locks with dummy-object callbacks), the callback /
//! purge / deescalation race handling of §4.2.4, redo-at-server update
//! propagation with two-phase commit, and lock-wait timeouts with the
//! adaptive interval of §5.5.
//!
//! The central type is [`PeerServer`], an event-driven state machine: it
//! consumes [`Input`]s and produces [`Output`]s, so the identical
//! protocol code runs on real threads (see `pscc-net`) and under the
//! discrete-event harness (`pscc-sim`) that regenerates the paper's
//! figures.
//!
//! # Examples
//!
//! A one-site system executing a transaction against its own volume:
//!
//! ```
//! use pscc_core::{AppOp, AppReply, AppRequest, Input, Output, OwnerMap, PeerServer};
//! use pscc_common::{AppId, Oid, PageId, FileId, SiteId, SimTime, SystemConfig, VolId};
//!
//! let cfg = SystemConfig::small();
//! let site = SiteId(0);
//! let mut server = PeerServer::new(site, cfg, OwnerMap::Single(site));
//!
//! // Begin a transaction.
//! let outs = server.handle(SimTime::ZERO, Input::App(AppRequest {
//!     app: AppId(0), txn: None, op: AppOp::Begin,
//! }));
//! let txn = match &outs[0] {
//!     Output::App(AppReply::Started { txn, .. }) => *txn,
//!     other => panic!("unexpected {other:?}"),
//! };
//!
//! // Read object 0 of page 0 (self-owned: no messages, maybe one disk read).
//! let oid = Oid::new(PageId::new(FileId::new(VolId(0), 0), 0), 0);
//! let outs = server.handle(SimTime::ZERO, Input::App(AppRequest {
//!     app: AppId(0), txn: Some(txn), op: AppOp::Read(oid),
//! }));
//! assert!(!outs.is_empty());
//! ```

pub mod cache;
pub mod copy_table;
mod engine;
pub mod msg;
pub mod obs;
pub mod owner_map;
pub mod ownership;
pub mod races;
pub mod residency;
pub mod timeout;
pub mod txn;

pub use engine::large::{decode_header_oid, encode_header_oid};
pub use engine::{DrainPhase, MigrationPhase, PeerServer};
pub use msg::{
    AppOp, AppReply, AppRequest, CbId, CbTarget, DeId, DiskOp, DiskReqId, Input, Message, Output,
    ReqId, TimerId,
};
pub use owner_map::{OwnerMap, OwnershipError};
pub use ownership::{LayoutImage, OwnershipDirectory};
pub use timeout::TimeoutSnapshot;
