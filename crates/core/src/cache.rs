//! The client-role page cache: page copies with per-object availability
//! bits, dirty-object tracking, ship sequence numbers, and LRU
//! replacement (paper §4.1: "a page-based buffer manager [...] extended
//! to keep track of the 'available' objects within each cached page").

use pscc_common::{Oid, PageId, TxnId};
use pscc_storage::{AvailMask, SlottedPage};
use std::collections::HashMap;

/// One cached page copy.
#[derive(Debug, Clone)]
pub struct CachedPage {
    /// The page image (including any local, uncommitted updates).
    pub image: SlottedPage,
    /// Which objects (and the dummy) are available in this copy.
    pub avail: AvailMask,
    /// Uncommitted locally updated slots, with the updating transaction.
    pub dirty: HashMap<u16, TxnId>,
    /// The `ship_seq` of the latest copy received from the owner
    /// (echoed in purge notices, §4.2.4).
    pub ship_seq: u64,
    /// LRU clock: larger = more recently used.
    last_used: u64,
}

/// The client cache of one peer server.
#[derive(Debug, Default)]
pub struct ClientCache {
    pages: HashMap<PageId, CachedPage>,
    capacity: usize,
    tick: u64,
}

impl ClientCache {
    /// Creates a cache holding at most `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        ClientCache {
            pages: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    fn touch(&mut self, page: PageId) {
        self.tick += 1;
        if let Some(cp) = self.pages.get_mut(&page) {
            cp.last_used = self.tick;
        }
    }

    /// Whether the page is cached at all.
    pub fn contains(&self, page: PageId) -> bool {
        self.pages.contains_key(&page)
    }

    /// Whether `oid` is locally cached: its page is cached *and* the
    /// object is marked available (paper §4.1).
    pub fn object_cached(&self, oid: Oid) -> bool {
        self.pages
            .get(&oid.page)
            .is_some_and(|cp| cp.avail.is_available(oid.slot))
    }

    /// Whether the page is *fully* cached — cached with every object and
    /// the dummy available (the §4.3.2 test for local-only SH page
    /// locks).
    pub fn fully_cached(&self, page: PageId) -> bool {
        self.pages.get(&page).is_some_and(|cp| {
            let n = cp.image.slot_count();
            cp.avail.fully_available(n)
        })
    }

    /// Immutable access to a cached page (bumps LRU).
    pub fn get(&mut self, page: PageId) -> Option<&CachedPage> {
        self.touch(page);
        self.pages.get(&page)
    }

    /// Immutable access without the LRU bump (inspection).
    pub fn peek(&self, page: PageId) -> Option<&CachedPage> {
        self.pages.get(&page)
    }

    /// Mutable access to a cached page (bumps LRU).
    pub fn get_mut(&mut self, page: PageId) -> Option<&mut CachedPage> {
        self.touch(page);
        self.pages.get_mut(&page)
    }

    /// Reads object bytes if locally cached.
    pub fn read_object(&mut self, oid: Oid) -> Option<Vec<u8>> {
        self.touch(oid.page);
        let cp = self.pages.get(&oid.page)?;
        if !cp.avail.is_available(oid.slot) {
            return None;
        }
        cp.image.get(oid.slot).map(<[u8]>::to_vec)
    }

    /// Installs or merges an arriving page copy per the paper's §4.2.3
    /// rules. `raced_slots` lists objects with a registered callback
    /// race (their proposed "available" is overridden to unavailable).
    ///
    /// Merge rules, per object:
    /// * already cached & available → stays available, local bytes kept
    ///   for dirty objects (never overwrite uncommitted local updates);
    /// * not cached / unavailable → takes the proposed state, except
    ///   raced slots become unavailable.
    ///
    /// Returns pages evicted to make room (the caller sends purge
    /// notices). The installed page itself is never evicted.
    pub fn install(
        &mut self,
        page: PageId,
        incoming: SlottedPage,
        proposed: AvailMask,
        ship_seq: u64,
        raced_slots: &[u16],
    ) -> Vec<(PageId, CachedPage)> {
        self.tick += 1;
        let tick = self.tick;
        match self.pages.get_mut(&page) {
            Some(cp) => {
                let mut final_avail = proposed;
                for s in raced_slots {
                    final_avail.set_unavailable(*s);
                }
                // Previously available objects stay available...
                let n = incoming.slot_count().max(cp.image.slot_count());
                let mut merged = incoming;
                for slot in 0..n {
                    if cp.avail.is_available(slot) {
                        final_avail.set_available(slot);
                        // ...and dirty local bytes are preserved.
                        if cp.dirty.contains_key(&slot) {
                            if let Some(local) = cp.image.get(slot) {
                                let local = local.to_vec();
                                let _ = merged.update(slot, &local);
                            }
                        }
                    }
                }
                if cp.avail.is_dummy_available() {
                    final_avail.set_available(pscc_common::ids::DUMMY_SLOT);
                }
                cp.image = merged;
                cp.avail = final_avail;
                cp.ship_seq = ship_seq;
                cp.last_used = tick;
                Vec::new()
            }
            None => {
                let mut final_avail = proposed;
                for s in raced_slots {
                    final_avail.set_unavailable(*s);
                }
                self.pages.insert(
                    page,
                    CachedPage {
                        image: incoming,
                        avail: final_avail,
                        dirty: HashMap::new(),
                        ship_seq,
                        last_used: tick,
                    },
                );
                self.evict_over_capacity(page)
            }
        }
    }

    /// Evicts LRU pages beyond capacity, never evicting `keep`. Pages
    /// with dirty objects are *not* skipped — the engine ships their log
    /// records early, as SHORE does (§3.3).
    fn evict_over_capacity(&mut self, keep: PageId) -> Vec<(PageId, CachedPage)> {
        let mut evicted = Vec::new();
        while self.pages.len() > self.capacity {
            let victim = self
                .pages
                .iter()
                .filter(|(p, _)| **p != keep)
                .min_by_key(|(_, cp)| cp.last_used)
                .map(|(p, _)| *p);
            match victim {
                Some(v) => {
                    let cp = self.pages.remove(&v).expect("victim exists");
                    evicted.push((v, cp));
                }
                None => break,
            }
        }
        evicted
    }

    /// Marks one object unavailable (an object-level callback). Returns
    /// `false` if the page is not cached.
    pub fn mark_unavailable(&mut self, oid: Oid) -> bool {
        match self.pages.get_mut(&oid.page) {
            Some(cp) => {
                cp.avail.set_unavailable(oid.slot);
                cp.dirty.remove(&oid.slot);
                true
            }
            None => false,
        }
    }

    /// Removes a page outright (page-level callback or abort purge).
    /// Returns the removed copy.
    pub fn purge(&mut self, page: PageId) -> Option<CachedPage> {
        self.pages.remove(&page)
    }

    /// Applies a local update: installs `bytes` into the object and
    /// marks it dirty for `txn`. Returns the before-image, or `None` if
    /// the (size-growing) update does not fit the page — the caller then
    /// falls back to the §4.4 forwarding path.
    ///
    /// # Panics
    ///
    /// Panics if the object is not locally cached (protocol error: write
    /// permission is only granted for cached objects).
    pub fn apply_update(&mut self, oid: Oid, bytes: &[u8], txn: TxnId) -> Option<Vec<u8>> {
        self.touch(oid.page);
        let cp = self
            .pages
            .get_mut(&oid.page)
            .unwrap_or_else(|| panic!("update of uncached page {}", oid.page));
        assert!(
            cp.avail.is_available(oid.slot),
            "update of unavailable object {oid}"
        );
        let before = cp
            .image
            .get(oid.slot)
            .expect("available object has bytes")
            .to_vec();
        if cp.image.update(oid.slot, bytes).is_err() {
            return None;
        }
        cp.dirty.insert(oid.slot, txn);
        Some(before)
    }

    /// Creates an object on a cached page (requires an explicit EX page
    /// lock by protocol). Returns its slot, or `None` if the page is
    /// uncached or full.
    pub fn apply_create(&mut self, page: PageId, bytes: &[u8], txn: TxnId) -> Option<u16> {
        self.touch(page);
        let cp = self.pages.get_mut(&page)?;
        let slot = cp.image.insert(bytes)?;
        cp.avail.set_available(slot);
        cp.dirty.insert(slot, txn);
        Some(slot)
    }

    /// Deletes an object from a cached page (requires an EX object lock
    /// by protocol). Returns the before-image.
    pub fn apply_delete(&mut self, oid: Oid, txn: TxnId) -> Option<Vec<u8>> {
        self.touch(oid.page);
        let cp = self.pages.get_mut(&oid.page)?;
        if !cp.avail.is_available(oid.slot) {
            return None;
        }
        let before = cp.image.get(oid.slot)?.to_vec();
        cp.image.delete(oid.slot);
        cp.avail.set_unavailable(oid.slot);
        cp.dirty.remove(&oid.slot);
        let _ = txn;
        Some(before)
    }

    /// Clears dirty marks of `txn` (commit: records shipped and durable).
    pub fn clean_txn(&mut self, txn: TxnId) {
        for cp in self.pages.values_mut() {
            cp.dirty.retain(|_, t| *t != txn);
        }
    }

    /// Aborts `txn`'s local updates: marks each of its dirty objects
    /// unavailable (paper §3.3: "purges from the local page cache any
    /// objects that it has updated ... by marking the objects as
    /// 'unavailable'").
    pub fn abort_txn(&mut self, txn: TxnId) -> Vec<Oid> {
        let mut purged = Vec::new();
        for (pid, cp) in self.pages.iter_mut() {
            let slots: Vec<u16> = cp
                .dirty
                .iter()
                .filter(|(_, t)| **t == txn)
                .map(|(s, _)| *s)
                .collect();
            for s in slots {
                cp.dirty.remove(&s);
                cp.avail.set_unavailable(s);
                purged.push(Oid::new(*pid, s));
            }
        }
        purged
    }

    /// All cached pages of `file` (file-level callbacks purge these).
    pub fn pages_of_file(&self, file: pscc_common::FileId) -> Vec<PageId> {
        self.pages
            .keys()
            .filter(|p| p.file == file)
            .copied()
            .collect()
    }

    /// Every cached page id, sorted (rejoin-time self-invalidation
    /// scans these to find pages owned by a suspect server).
    pub fn pages(&self) -> Vec<PageId> {
        let mut v: Vec<PageId> = self.pages.keys().copied().collect();
        v.sort();
        v
    }

    /// All cached pages of `vol`.
    pub fn pages_of_volume(&self, vol: pscc_common::VolId) -> Vec<PageId> {
        self.pages
            .keys()
            .filter(|p| p.vol() == vol)
            .copied()
            .collect()
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, SiteId, VolId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    fn page_with(n_obj: u16) -> SlottedPage {
        let mut p = SlottedPage::new(512);
        for i in 0..n_obj {
            p.insert(&[i as u8; 16]).unwrap();
        }
        p
    }

    fn txn(n: u64) -> TxnId {
        TxnId::new(SiteId(1), n)
    }

    #[test]
    fn install_and_read() {
        let mut c = ClientCache::new(4);
        let ev = c.install(pid(1), page_with(3), AvailMask::all_available(3), 1, &[]);
        assert!(ev.is_empty());
        assert!(c.object_cached(Oid::new(pid(1), 2)));
        assert_eq!(c.read_object(Oid::new(pid(1), 1)), Some(vec![1u8; 16]));
        assert!(c.fully_cached(pid(1)));
    }

    #[test]
    fn unavailable_objects_are_not_cached() {
        let mut c = ClientCache::new(4);
        let mut avail = AvailMask::all_available(3);
        avail.set_unavailable(1);
        c.install(pid(1), page_with(3), avail, 1, &[]);
        assert!(c.object_cached(Oid::new(pid(1), 0)));
        assert!(!c.object_cached(Oid::new(pid(1), 1)));
        assert!(!c.fully_cached(pid(1)));
        assert_eq!(c.read_object(Oid::new(pid(1), 1)), None);
    }

    #[test]
    fn merge_keeps_previously_available_and_dirty() {
        let mut c = ClientCache::new(4);
        c.install(pid(1), page_with(3), AvailMask::all_available(3), 1, &[]);
        // Local dirty update to slot 0.
        let before = c
            .apply_update(Oid::new(pid(1), 0), &[9u8; 16], txn(1))
            .unwrap();
        assert_eq!(before, vec![0u8; 16]);
        // New copy arrives proposing slot 0 unavailable and stale bytes.
        let mut proposed = AvailMask::all_available(3);
        proposed.set_unavailable(0);
        c.install(pid(1), page_with(3), proposed, 2, &[]);
        // Still available (was available before) and still dirty bytes.
        assert!(c.object_cached(Oid::new(pid(1), 0)));
        assert_eq!(c.read_object(Oid::new(pid(1), 0)), Some(vec![9u8; 16]));
    }

    #[test]
    fn raced_slots_forced_unavailable() {
        let mut c = ClientCache::new(4);
        c.install(pid(1), page_with(3), AvailMask::all_available(3), 1, &[2]);
        assert!(!c.object_cached(Oid::new(pid(1), 2)));
        assert!(c.object_cached(Oid::new(pid(1), 0)));
    }

    #[test]
    fn raced_slot_does_not_override_already_cached() {
        // Race entries only apply to not-cached objects (§4.2.3): if the
        // object is already available locally, it stays.
        let mut c = ClientCache::new(4);
        c.install(pid(1), page_with(3), AvailMask::all_available(3), 1, &[]);
        c.install(pid(1), page_with(3), AvailMask::all_available(3), 2, &[1]);
        assert!(c.object_cached(Oid::new(pid(1), 1)));
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        let mut c = ClientCache::new(2);
        c.install(pid(1), page_with(1), AvailMask::all_available(1), 1, &[]);
        c.install(pid(2), page_with(1), AvailMask::all_available(1), 1, &[]);
        // Touch page 1 so page 2 is LRU.
        let _ = c.read_object(Oid::new(pid(1), 0));
        let evicted = c.install(pid(3), page_with(1), AvailMask::all_available(1), 1, &[]);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].0, pid(2));
        assert!(c.contains(pid(1)) && c.contains(pid(3)));
    }

    #[test]
    fn mark_unavailable_and_purge() {
        let mut c = ClientCache::new(4);
        c.install(pid(1), page_with(2), AvailMask::all_available(2), 1, &[]);
        assert!(c.mark_unavailable(Oid::new(pid(1), 0)));
        assert!(!c.object_cached(Oid::new(pid(1), 0)));
        assert!(c.object_cached(Oid::new(pid(1), 1)));
        assert!(c.purge(pid(1)).is_some());
        assert!(!c.contains(pid(1)));
        assert!(!c.mark_unavailable(Oid::new(pid(1), 0)));
    }

    #[test]
    fn abort_marks_dirty_objects_unavailable() {
        let mut c = ClientCache::new(4);
        c.install(pid(1), page_with(3), AvailMask::all_available(3), 1, &[]);
        c.apply_update(Oid::new(pid(1), 0), &[9u8; 16], txn(1))
            .unwrap();
        c.apply_update(Oid::new(pid(1), 1), &[9u8; 16], txn(2))
            .unwrap();
        let purged = c.abort_txn(txn(1));
        assert_eq!(purged, vec![Oid::new(pid(1), 0)]);
        assert!(!c.object_cached(Oid::new(pid(1), 0)));
        assert!(c.object_cached(Oid::new(pid(1), 1)));
        // txn(2)'s dirty object survives and commits clean.
        c.clean_txn(txn(2));
        assert!(c.peek(pid(1)).unwrap().dirty.is_empty());
    }

    #[test]
    fn pages_of_file_and_volume() {
        let mut c = ClientCache::new(8);
        c.install(pid(1), page_with(1), AvailMask::all_available(1), 1, &[]);
        c.install(pid(2), page_with(1), AvailMask::all_available(1), 1, &[]);
        let other = PageId::new(FileId::new(VolId(0), 1), 9);
        c.install(other, page_with(1), AvailMask::all_available(1), 1, &[]);
        assert_eq!(c.pages_of_file(FileId::new(VolId(0), 0)).len(), 2);
        assert_eq!(c.pages_of_volume(VolId(0)).len(), 3);
    }
}
