//! The adaptive lock-wait timeout of paper §5.5: SHORE resolves
//! distributed deadlocks by timing out lock waits, with the interval set
//! to `multiplier × (mean wait + standard deviation)` over observed lock
//! waits — the heuristic of Agrawal, Carey & McVoy (ref. 2), inflated by 1.5
//! to reduce false detections (local deadlocks are caught exactly by the
//! owning server's cycle detector).

use pscc_common::{SimDuration, SystemConfig};

/// Online mean/stddev (Welford) of lock-wait durations plus the derived
/// timeout interval.
#[derive(Debug, Clone)]
pub struct TimeoutEstimator {
    count: u64,
    mean: f64,
    m2: f64,
    multiplier: f64,
    initial: SimDuration,
    floor: SimDuration,
    ceiling: SimDuration,
}

impl TimeoutEstimator {
    /// Builds an estimator from the system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        TimeoutEstimator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            multiplier: cfg.timeout_multiplier,
            initial: cfg.initial_lock_timeout,
            floor: cfg.lock_timeout_floor,
            ceiling: cfg.lock_timeout_ceiling,
        }
    }

    /// Records an observed lock-wait duration (measured when the wait
    /// ends in a grant).
    pub fn record_wait(&mut self, wait: SimDuration) {
        self.count += 1;
        let x = wait.as_secs_f64();
        let d = x - self.mean;
        self.mean += d / self.count as f64;
        self.m2 += d * (x - self.mean);
    }

    /// The current timeout interval: `multiplier × (mean + stddev)`,
    /// clamped, falling back to the configured initial value until ten
    /// waits have been observed.
    pub fn timeout(&self) -> SimDuration {
        if self.count < 10 {
            return self.initial;
        }
        let var = self.m2 / self.count as f64;
        let est = self.multiplier * (self.mean + var.sqrt());
        SimDuration::from_secs_f64(est)
            .max(self.floor)
            .min(self.ceiling)
    }

    /// Observed waits so far.
    pub fn samples(&self) -> u64 {
        self.count
    }

    /// A point-in-time view of the estimator state, in microseconds —
    /// the metrics layer publishes these as gauges so a sweep can show
    /// how the adaptive interval evolved (§5.5).
    pub fn snapshot(&self) -> TimeoutSnapshot {
        let var = if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        };
        TimeoutSnapshot {
            samples: self.count,
            mean_micros: self.mean * 1e6,
            stddev_micros: var.sqrt() * 1e6,
            current_timeout_micros: self.timeout().as_micros(),
        }
    }
}

/// See [`TimeoutEstimator::snapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutSnapshot {
    /// Lock waits observed.
    pub samples: u64,
    /// Mean observed wait.
    pub mean_micros: f64,
    /// Standard deviation of observed waits.
    pub stddev_micros: f64,
    /// The interval the next wait would be armed with.
    pub current_timeout_micros: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est() -> TimeoutEstimator {
        TimeoutEstimator::new(&SystemConfig::paper())
    }

    #[test]
    fn initial_until_enough_samples() {
        let mut e = est();
        let initial = e.timeout();
        for _ in 0..9 {
            e.record_wait(SimDuration::from_millis(1));
        }
        assert_eq!(e.timeout(), initial);
        e.record_wait(SimDuration::from_millis(1));
        assert_ne!(e.timeout(), initial);
    }

    #[test]
    fn constant_waits_give_multiplier_times_mean() {
        let mut e = est();
        for _ in 0..100 {
            e.record_wait(SimDuration::from_millis(100));
        }
        // stddev 0 => 1.5 * 100ms = 150ms.
        let t = e.timeout().as_micros() as f64;
        assert!((t - 150_000.0).abs() < 1_000.0, "got {t}");
    }

    #[test]
    fn variance_raises_timeout() {
        let mut lo = est();
        let mut hi = est();
        for i in 0..100 {
            lo.record_wait(SimDuration::from_millis(100));
            hi.record_wait(SimDuration::from_millis(if i % 2 == 0 { 10 } else { 190 }));
        }
        // Same mean, higher variance => longer timeout.
        assert!(hi.timeout() > lo.timeout());
    }

    #[test]
    fn snapshot_reports_estimator_state() {
        let mut e = est();
        assert_eq!(e.snapshot().samples, 0);
        assert_eq!(e.snapshot().stddev_micros, 0.0);
        for _ in 0..20 {
            e.record_wait(SimDuration::from_millis(100));
        }
        let s = e.snapshot();
        assert_eq!(s.samples, 20);
        assert!((s.mean_micros - 100_000.0).abs() < 1.0, "{s:?}");
        assert!(s.stddev_micros < 1.0, "{s:?}");
        assert_eq!(s.current_timeout_micros, e.timeout().as_micros());
    }

    #[test]
    fn clamped_to_floor_and_ceiling() {
        let cfg = SystemConfig::paper();
        let mut e = est();
        for _ in 0..20 {
            e.record_wait(SimDuration::from_micros(1));
        }
        assert_eq!(e.timeout(), cfg.lock_timeout_floor);
        let mut e = est();
        for _ in 0..20 {
            e.record_wait(SimDuration::from_secs(1000));
        }
        assert_eq!(e.timeout(), cfg.lock_timeout_ceiling);
    }

    #[test]
    fn clamps_follow_config_overrides() {
        let mut cfg = SystemConfig::small();
        cfg.lock_timeout_floor = SimDuration::from_millis(1);
        cfg.lock_timeout_ceiling = SimDuration::from_millis(5);
        let mut e = TimeoutEstimator::new(&cfg);
        for _ in 0..20 {
            e.record_wait(SimDuration::from_micros(1));
        }
        assert_eq!(e.timeout(), SimDuration::from_millis(1));
        for _ in 0..20 {
            e.record_wait(SimDuration::from_secs(100));
        }
        assert_eq!(e.timeout(), SimDuration::from_millis(5));
    }
}
