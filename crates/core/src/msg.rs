//! The engine's event vocabulary: application requests/replies, the
//! peer-to-peer wire protocol, disk and timer events, and the engine's
//! [`Input`]/[`Output`] types.
//!
//! The protocol messages map 1:1 onto the paper's flows: fetch (read)
//! requests and page-shipping replies (§4.1.1), write-permission requests
//! and grants carrying the adaptive bit (§4.1.2), callbacks with their
//! blocked/ok replies (§4.1.1, Fig. 3), lock deescalation (§4.1.2),
//! explicit hierarchical lock requests (§4.3), purge notices with
//! piggybacked lock replication (§4.1.1), and redo-at-server commit
//! traffic with two-phase commit for multi-owner transactions (§3.3).

use pscc_common::{
    AbortReason, AppId, LockMode, LockableId, Oid, PageId, SimDuration, SiteId, TxnId,
};
pub use pscc_common::{SpanId, TraceCtx};
use pscc_storage::{PageSnapshot, SlottedPage};
use pscc_wal::LogRecord;
use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
            Default,
        )]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A request issued by one site to another; echoed in the reply.
    ReqId,
    "req"
);
id_newtype!(
    /// A callback operation at its owning server.
    CbId,
    "cb"
);
id_newtype!(
    /// A deescalation operation at its owning server.
    DeId,
    "de"
);
id_newtype!(
    /// A timer armed by the engine.
    TimerId,
    "tm"
);
id_newtype!(
    /// A disk request issued by the engine.
    DiskReqId,
    "io"
);

/// What a callback asks the receiving client to invalidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CbTarget {
    /// One object (PS-OA / PS-AA). A page's *dummy object* (paper
    /// §4.3.2) travels through the same variant.
    Object(Oid),
    /// A whole page (the PS protocol's page-level callbacks, and
    /// explicit EX page locks).
    PageAll(PageId),
    /// A whole file (explicit EX file locks, §4.3.1).
    File(pscc_common::FileId),
    /// A whole volume (treated like a file, §4.3.1).
    Volume(pscc_common::VolId),
}

impl CbTarget {
    /// The lockable granule the callback ultimately needs in EX.
    pub fn lockable(&self) -> LockableId {
        match *self {
            CbTarget::Object(o) => LockableId::Object(o),
            CbTarget::PageAll(p) => LockableId::Page(p),
            CbTarget::File(f) => LockableId::File(f),
            CbTarget::Volume(v) => LockableId::Volume(v),
        }
    }
}

/// Peer-to-peer protocol messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Client → owner: fetch the page containing `oid` for reading
    /// (object-level protocols). The owner takes an SH object lock on
    /// behalf of `txn` and ships the page.
    ReadObj {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Requesting transaction.
        txn: TxnId,
        /// The needed object.
        oid: Oid,
    },
    /// Client → owner: fetch a whole page under a page-level SH lock
    /// (the PS protocol).
    ReadPage {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Requesting transaction.
        txn: TxnId,
        /// The needed page.
        page: PageId,
    },
    /// Owner → client: the shipped page copy.
    ReadReply {
        /// The request this answers.
        req: ReqId,
        /// The page image plus proposed availability (paper §4.2.3).
        snapshot: PageSnapshot,
    },
    /// Client → owner: request write permission on an object
    /// (object-level protocols; paper Fig. 3).
    WriteObj {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Requesting transaction.
        txn: TxnId,
        /// Object to update.
        oid: Oid,
    },
    /// Client → owner: request a page-level EX lock (the PS protocol's
    /// write request).
    WritePage {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Requesting transaction.
        txn: TxnId,
        /// Page to update.
        page: PageId,
    },
    /// Owner → client: write permission granted; `adaptive` reports
    /// whether an adaptive page lock was granted (PS-AA, §4.1.2).
    WriteGranted {
        /// The request this answers.
        req: ReqId,
        /// Whether the grant is an adaptive page lock.
        adaptive: bool,
    },
    /// Client → owner: explicit hierarchical lock request (file, volume,
    /// or page level; §4.3).
    LockItem {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Requesting transaction.
        txn: TxnId,
        /// The granule.
        item: LockableId,
        /// Requested mode.
        mode: LockMode,
    },
    /// Owner → client: explicit lock granted.
    LockGranted {
        /// The request this answers.
        req: ReqId,
    },
    /// Owner → client: the requesting transaction was chosen as a victim
    /// while its request waited (deadlock or timeout); it must abort.
    ReqDenied {
        /// The denied request.
        req: ReqId,
        /// Why.
        reason: AbortReason,
    },
    /// Owner → caching client: invalidate `target` on behalf of `txn`
    /// (paper Fig. 3).
    Callback {
        /// Callback operation id.
        cb: CbId,
        /// The calling-back transaction (the callback thread at the
        /// client runs on its behalf).
        txn: TxnId,
        /// What to invalidate.
        target: CbTarget,
    },
    /// Client → owner: the callback blocked on local locks; the listed
    /// holders are replicated at the server for deadlock detection
    /// (paper §4.2.1). The callback remains pending at the client.
    CbBlocked {
        /// The blocked callback.
        cb: CbId,
        /// Local holders conflicting with the callback, with the granule
        /// and mode each holds.
        holders: Vec<(TxnId, LockableId, LockMode)>,
    },
    /// Client → owner: callback complete. `purged_page` reports whether
    /// the whole page was invalidated (enables adaptive grants, §4.1.2).
    CbOk {
        /// The completed callback.
        cb: CbId,
        /// Whether the whole page (or file/volume) was purged.
        purged_page: bool,
    },
    /// Client → owner: the callback's local lock wait timed out; the
    /// calling-back transaction should be aborted (SHORE's lock-wait
    /// timeout resolution of distributed deadlocks, §3.3/§5.5).
    CbTimeout {
        /// The timed-out callback.
        cb: CbId,
    },
    /// Owner → client: the calling-back transaction aborted; drop the
    /// pending callback.
    CbCancel {
        /// The cancelled callback.
        cb: CbId,
    },
    /// Owner → client: give up all adaptive page locks on `page` and
    /// report the EX object locks held by local transactions (paper
    /// §4.1.2).
    Deescalate {
        /// Deescalation operation id.
        de: DeId,
        /// The page losing its adaptive locks.
        page: PageId,
    },
    /// Client → owner: deescalation reply.
    DeescalateReply {
        /// The deescalation this answers.
        de: DeId,
        /// The page.
        page: PageId,
        /// EX object locks held by local transactions on the page's
        /// objects; the server replicates them.
        ex_locks: Vec<(TxnId, Oid)>,
    },
    /// Client → owner: `page` was evicted from the client cache. Carries
    /// the ship sequence number for purge-race detection (§4.2.4), any
    /// local locks on the page's granules that must be replicated, and
    /// early-shipped log records for dirty objects (§3.3, §4.1.1).
    Purge {
        /// The client that purged its copy. Carried explicitly (not
        /// inferred from the transport sender) so a stale-routed purge
        /// can be forwarded to the page's post-migration owner intact.
        client: SiteId,
        /// The purged page.
        page: PageId,
        /// The `ship_seq` of the purged copy.
        ship_seq: u64,
        /// Locks held by active local transactions on the page and its
        /// objects, to replicate at the server.
        replicate: Vec<(TxnId, LockableId, LockMode)>,
        /// Log records for dirty objects on the page, shipped early.
        log_records: Vec<LogRecord>,
    },
    /// Client → owner: single-participant commit (prepare+commit in one
    /// round). The owner applies the records (redo-at-server), forces
    /// the log, releases the transaction's locks, and acks.
    CommitReq {
        /// Request id echoed in the reply.
        req: ReqId,
        /// Committing transaction.
        txn: TxnId,
        /// Its remaining log records for data this owner holds.
        records: Vec<LogRecord>,
    },
    /// Owner → client: commit applied and durable.
    CommitOk {
        /// The request this answers.
        req: ReqId,
    },
    /// Coordinator → participant: 2PC phase one (multi-owner
    /// transactions, §3.3).
    Prepare {
        /// Request id echoed in the vote.
        req: ReqId,
        /// The transaction.
        txn: TxnId,
        /// Log records for data this participant owns.
        records: Vec<LogRecord>,
    },
    /// Participant → coordinator: 2PC vote.
    Voted {
        /// The prepare this answers.
        req: ReqId,
        /// The transaction.
        txn: TxnId,
        /// Whether the participant prepared successfully.
        yes: bool,
    },
    /// Coordinator → participant: 2PC decision.
    Decide {
        /// The transaction.
        txn: TxnId,
        /// Commit (`true`) or abort.
        commit: bool,
    },
    /// Participant → coordinator: decision applied.
    Decided {
        /// The transaction.
        txn: TxnId,
    },
    /// Home → owner: abort `txn` (release its locks, undo shipped
    /// updates, cancel its callbacks).
    AbortTxn {
        /// The aborting transaction.
        txn: TxnId,
    },
    /// Owner → home: `txn` was chosen as a victim at this owner; its
    /// home must run the abort procedure.
    TxnAborted {
        /// The victim.
        txn: TxnId,
        /// Why.
        reason: AbortReason,
    },
    /// Any site → any peer it talks to: "I am alive". Sent periodically
    /// when leases are enabled (`SystemConfig::leases_enabled`) so the
    /// receiver can keep the sender's lease from expiring while the
    /// sender is idle. Carries no payload — receipt of *any* message
    /// renews the lease; this one just guarantees a floor on frequency.
    Heartbeat,
    /// Client → owner: fetch one large-object data page (paper §4.4 —
    /// cached large-object pages are valid without locks; the header
    /// lock provides all access protection).
    FetchLargePage {
        /// Request id echoed in the reply.
        req: ReqId,
        /// The data page.
        page: PageId,
    },
    /// Owner → client: a large-object data page.
    LargePageReply {
        /// The request this answers.
        req: ReqId,
        /// The page.
        page: PageId,
        /// Its content.
        bytes: Vec<u8>,
    },
    /// Client → owner: apply a byte-range update to a large object. The
    /// client must hold an EX lock on the header (acquired through the
    /// ordinary PS-AA object path), which serializes all access.
    WriteLargeReq {
        /// Request id echoed in the reply.
        req: ReqId,
        /// The updating transaction.
        txn: TxnId,
        /// The large object's header.
        header: Oid,
        /// Byte offset within the object.
        offset: u64,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Owner → client: the large-object update is applied and all other
    /// cached copies of the touched data pages are invalidated.
    WriteLargeOk {
        /// The request this answers.
        req: ReqId,
    },
    /// Owner → caching client: drop these large-object data pages.
    LargeInval {
        /// Invalidation id (acked).
        inv: ReqId,
        /// Pages to drop.
        pages: Vec<PageId>,
    },
    /// Client → owner: invalidation applied.
    LargeInvalOk {
        /// The invalidation this answers.
        inv: ReqId,
    },
    /// Client → owner: create a large object; its header is stored as a
    /// small object on `header_page` (the client must hold an explicit
    /// EX lock on that page).
    CreateLargeReq {
        /// Request id echoed in the reply.
        req: ReqId,
        /// The creating transaction.
        txn: TxnId,
        /// Page to hold the header object.
        header_page: PageId,
        /// Initial content.
        content: Vec<u8>,
    },
    /// Owner → client: large object created.
    CreateLargeOk {
        /// The request this answers.
        req: ReqId,
        /// The new header's id.
        header: Oid,
    },
    /// Client → owner: point-read an object that has been *forwarded*
    /// off its home page by a size-growing update (paper §4.4). The
    /// owner resolves the tombstone and returns the bytes directly;
    /// forwarded objects are never client-cached (each access round
    /// trips — the usual forwarding penalty).
    ReadForwarded {
        /// Request id echoed in the reply.
        req: ReqId,
        /// The requesting transaction (must hold a lock on the object).
        txn: TxnId,
        /// The object (original, home-page id).
        oid: Oid,
    },
    /// Owner → client: the forwarded object's current bytes (`None` if
    /// it no longer exists).
    ObjectBytes {
        /// The request this answers.
        req: ReqId,
        /// The bytes.
        bytes: Option<Vec<u8>>,
    },

    // Restart recovery and the rejoin/epoch protocol (DESIGN.md §6).
    /// Server → client: the sender will not serve protocol requests
    /// until the client rejoins under the carried epoch — the server
    /// restarted (its copy table is gone) or had declared the client
    /// dead (its registrations were revoked). The fenced request was
    /// dropped; the client must treat its cached pages from this owner
    /// as suspect.
    RejoinRequired {
        /// The server's current epoch.
        epoch: u64,
    },
    /// Client → server: rejoin handshake. The client has invalidated
    /// its cached pages from this owner and aborted the transactions
    /// they supported; register it under `epoch`.
    Rejoin {
        /// The epoch the client is acknowledging (from
        /// [`Message::RejoinRequired`]).
        epoch: u64,
    },
    /// Server → client: rejoin accepted; subsequent requests are
    /// served. Pages are re-fetched lazily on demand.
    RejoinOk {
        /// The epoch the client is now registered under.
        epoch: u64,
    },
    /// Either direction: "what do you know about `txn`'s outcome?".
    /// A recovered participant sends it to the coordinator for each
    /// in-doubt prepared transaction (answered with
    /// [`Message::Decide`], presumed abort when the coordinator has
    /// forgotten the transaction); a coordinator sends it to a restarted
    /// participant whose `CommitOk` was lost (answered with
    /// [`Message::TxnResolved`] from the recovered winner set).
    QueryTxn {
        /// The transaction in question.
        txn: TxnId,
    },
    /// Participant → coordinator: the queried transaction's durable
    /// outcome at the participant.
    TxnResolved {
        /// The transaction queried.
        txn: TxnId,
        /// Whether its commit record survived (`false` means its
        /// effects were never durably applied or were rolled back).
        committed: bool,
    },

    // Overload protection (DESIGN.md §6).
    /// Server → client: the request was *shed* — the server's admitted
    /// in-flight work is at `SystemConfig::admission_cap`. The client
    /// must hold the request and retry after roughly `retry_after`
    /// (exponentially backed off and jittered on repeated sheds). The
    /// request is not failed: shed work must eventually succeed.
    Busy {
        /// The shed request.
        req: ReqId,
        /// Suggested base delay before retrying.
        retry_after: SimDuration,
    },

    // Control plane (DESIGN.md §8).
    /// Supervisor → site: begin a graceful drain. The site stops
    /// admitting *new* remote data requests (they are shed with `Busy`
    /// so clients back off and retry elsewhere/later), lets admitted
    /// work run to its verdict, completes outstanding callbacks and
    /// deescalations, forces its WAL, and then reports `DrainOk`. A
    /// planned restart of a drained site therefore loses zero committed
    /// work and no client ever sees a raw connection drop.
    DrainReq {
        /// Correlates the eventual `DrainOk`.
        req: ReqId,
    },
    /// Site → supervisor: the drain identified by `req` has completed —
    /// no admitted requests, no callbacks or deescalations in flight,
    /// and the log is durable up to the last commit.
    DrainOk {
        /// The completed drain request.
        req: ReqId,
    },
    /// Supervisor → site: cancel a drain (rollback path) or re-open a
    /// site after a completed rolling step. Idempotent.
    UndrainReq {
        /// Correlates the `UndrainOk`.
        req: ReqId,
    },
    /// Site → supervisor: the site is admitting data requests again.
    UndrainOk {
        /// The completed undrain request.
        req: ReqId,
    },

    // Ownership migration (DESIGN.md §10).
    /// Supervisor → source owner: begin migrating the page-number range
    /// `[lo, hi)` to `to`. The source fences new lock grants on the
    /// range (they are shed with `Busy`), lets in-flight work on it
    /// drain, forces a durable `MigrateBegin` record, and answers with
    /// [`Message::MigratePrepared`].
    MigratePrepare {
        /// Correlates the eventual `MigratePrepared`.
        req: ReqId,
        /// First page number of the range (inclusive).
        lo: u32,
        /// One past the last page number (exclusive).
        hi: u32,
        /// The destination owner.
        to: SiteId,
    },
    /// Source → supervisor: the range is quiescent and the migration's
    /// begin record is durable; transfer may start.
    MigratePrepared {
        /// The prepare this answers.
        req: ReqId,
    },
    /// Supervisor → source owner: ship the prepared range to the
    /// destination. The source answers with [`Message::MigrateDone`]
    /// once the destination has activated the new layout.
    MigrateTransfer {
        /// Correlates the eventual `MigrateDone`.
        req: ReqId,
    },
    /// Supervisor → source owner: abandon an in-flight migration. If
    /// the source's `MigrateCommit` record is already durable the
    /// migration is past its commit point and completes forward
    /// instead; the reply reports which way it resolved.
    MigrateAbortReq {
        /// Correlates the `MigrateAborted`.
        req: ReqId,
    },
    /// Source → supervisor: the abort request's resolution.
    MigrateAborted {
        /// The abort request this answers.
        req: ReqId,
        /// `true` if the migration was already committed and completed
        /// forward; `false` if it rolled back and the source is
        /// authoritative again.
        committed: bool,
    },
    /// Source → supervisor: the migration is complete — the destination
    /// owns the range under `layout` and the source's fence is final.
    MigrateDone {
        /// The transfer request this answers.
        req: ReqId,
        /// The layout version that carries the new assignment.
        layout: u64,
    },
    /// Source → destination: the migrating range's page images and
    /// copy-table entries (retained callback obligations travel as the
    /// copy entries that would induce them). Bulk traffic: it is the
    /// one migration message big enough to queue behind ordinary page
    /// ships without harm.
    TransferChunk {
        /// First page number of the range (inclusive).
        lo: u32,
        /// One past the last page number (exclusive).
        hi: u32,
        /// The layout version the commit will install.
        layout: u64,
        /// Page images in the range present at the source.
        pages: Vec<(PageId, SlottedPage)>,
        /// Copy-table entries for the range: who caches each page, at
        /// which ship sequence.
        copies: Vec<(PageId, SiteId, u64)>,
    },
    /// Destination → source: the transferred range is staged durably
    /// (its `MigrateIn` records are forced); the source may commit.
    TransferAck {
        /// Range lo (echoed).
        lo: u32,
        /// Range hi (echoed).
        hi: u32,
    },
    /// Source → destination: the source's `MigrateCommit` record is
    /// durable — install the staged range, adopt `layout`, and start
    /// serving it.
    MigrateActivate {
        /// Range lo.
        lo: u32,
        /// Range hi.
        hi: u32,
        /// The layout version to adopt.
        layout: u64,
    },
    /// Destination → source: the range is installed and served under
    /// `layout`; the source may discard its images.
    MigrateActivated {
        /// Range lo.
        lo: u32,
        /// Range hi.
        hi: u32,
        /// The adopted layout version.
        layout: u64,
    },
    /// Destination → source (recovery): "did the migration of `[lo,hi)`
    /// at `layout` commit?". A destination that restarts with staged
    /// `MigrateIn` records but no `MigrateLand` asks the source which
    /// way to resolve; answered with [`Message::MigrationResolved`].
    QueryMigration {
        /// Range lo.
        lo: u32,
        /// Range hi.
        hi: u32,
        /// The in-doubt layout version.
        layout: u64,
    },
    /// Source → destination: the in-doubt migration's durable outcome
    /// at the source (also sent unsolicited after a source-side
    /// rollback so a waiting destination discards its staging).
    MigrationResolved {
        /// Range lo.
        lo: u32,
        /// Range hi.
        hi: u32,
        /// The layout version queried.
        layout: u64,
        /// Whether the source's commit record survived.
        committed: bool,
    },
    /// Owner → client: the request named a page this site no longer
    /// owns — the range migrated away under `layout`. The client
    /// applies the layout delta, re-routes the retained request to
    /// `new_owner`, and retries; the request is not failed.
    WrongOwner {
        /// The misrouted request.
        req: ReqId,
        /// Migrated range lo.
        lo: u32,
        /// Migrated range hi.
        hi: u32,
        /// The layout version that moved it.
        layout: u64,
        /// Where the range lives now.
        new_owner: SiteId,
    },

    /// Edge → owner: fetch a page image for the lock-free edge cache.
    /// Carries no transaction and takes no locks; the owner answers
    /// with the current committed image. `watch` asks the owner to
    /// (re)subscribe the edge for the page's file under `lease`.
    EdgeFetch {
        /// Echoed in the reply.
        req: ReqId,
        /// The page wanted.
        page: PageId,
        /// Whether to piggyback a watch subscription for the file.
        watch: bool,
        /// Subscription lease duration (ignored unless `watch`).
        lease: SimDuration,
    },
    /// Owner → edge: the committed page image for an [`Message::EdgeFetch`].
    EdgePage {
        /// The fetch answered.
        req: ReqId,
        /// The page shipped.
        page: PageId,
        /// Owner commit version (WAL LSN) the image reflects.
        version: u64,
        /// The owner's current epoch; a bump since the edge's last
        /// contact means invalidations were lost across a restart.
        epoch: u64,
        /// The page image.
        image: SlottedPage,
    },
    /// Owner → edge: pages committed since the subscriber's copies were
    /// shipped, batched per commit. One-way; the edge strikes matching
    /// cache entries and refetches on next read.
    EdgeInvalidate {
        /// `(page, committed version)` pairs.
        pages: Vec<(PageId, u64)>,
    },
    /// Edge → owner: subscribe or renew the invalidation watch for
    /// `files`. Idempotent; replaces the previous subscription.
    EdgeRenew {
        /// Echoed in the reply.
        req: ReqId,
        /// Lease duration from the owner's receipt.
        lease: SimDuration,
        /// File numbers watched.
        files: Vec<u32>,
    },
    /// Owner → edge: the renew is recorded; the watch is live as of the
    /// renew's send time.
    EdgeRenewOk {
        /// The renew answered.
        req: ReqId,
        /// The owner's current epoch (same fencing role as in
        /// [`Message::EdgePage`]).
        epoch: u64,
        /// `true` when this renew *created* coverage instead of
        /// extending it — the previous subscription had lease-expired
        /// (or never existed), so invalidations published during the
        /// gap are lost and the edge must purge its watch-based copies.
        resubscribed: bool,
    },
    /// Supervisor → site: adopt `tier` for file number `file` (an
    /// online tier roll; no downtime).
    SetTierReq {
        /// Echoed in the reply.
        req: ReqId,
        /// The file whose tier changes.
        file: u32,
        /// The tier to adopt.
        tier: pscc_common::ConsistencyTier,
    },
    /// Site → supervisor: the tier change is applied.
    SetTierOk {
        /// The request answered.
        req: ReqId,
    },

    /// A causal-tracing envelope: any message wrapped with the
    /// [`TraceCtx`] of the hop that carries it. Engines wrap outgoing
    /// messages only while tracing is enabled and unwrap on receipt, so
    /// untraced runs never see (or pay for) the envelope. The codec
    /// serializes it like any other variant.
    Traced {
        /// The hop's causal context.
        ctx: TraceCtx,
        /// The wrapped protocol message.
        inner: Box<Message>,
    },
}

impl Message {
    /// Approximate wire size in bytes, for the network cost model. Page
    /// ships dominate; everything else is small and fixed-ish.
    pub fn wire_size(&self) -> usize {
        match self {
            // The envelope itself costs one context's worth of bytes.
            Message::Traced { inner, .. } => 32 + inner.wire_size(),
            Message::ReadReply { snapshot, .. } => snapshot.wire_size(),
            Message::CommitReq { records, .. } | Message::Prepare { records, .. } => {
                64 + records.iter().map(LogRecord::wire_size).sum::<usize>()
            }
            Message::Purge {
                replicate,
                log_records,
                ..
            } => {
                64 + replicate.len() * 24
                    + log_records.iter().map(LogRecord::wire_size).sum::<usize>()
            }
            Message::CbBlocked { holders, .. } => 32 + holders.len() * 24,
            Message::DeescalateReply { ex_locks, .. } => 32 + ex_locks.len() * 24,
            Message::LargePageReply { bytes, .. } => 64 + bytes.len(),
            Message::WriteLargeReq { bytes, .. } => 64 + bytes.len(),
            Message::CreateLargeReq { content, .. } => 64 + content.len(),
            Message::ObjectBytes { bytes, .. } => 64 + bytes.as_ref().map(Vec::len).unwrap_or(0),
            Message::TransferChunk { pages, copies, .. } => {
                64 + pages
                    .iter()
                    .map(|(_, img)| img.as_bytes().len())
                    .sum::<usize>()
                    + copies.len() * 16
            }
            Message::EdgePage { image, .. } => 64 + image.as_bytes().len(),
            Message::EdgeInvalidate { pages } => 32 + pages.len() * 24,
            Message::EdgeRenew { files, .. } => 32 + files.len() * 4,
            _ => 64,
        }
    }

    /// Whether this message is *consistency traffic*: callbacks and
    /// their resolutions, deescalations, commit/2PC control, aborts,
    /// liveness, rejoin/epoch handshakes, and flow-control verdicts.
    /// Transports drain this lane ahead of bulk fetch traffic and never
    /// shed it — dropping any of these can wedge a writer waiting on a
    /// callback or stall 2PC (the §4.2.4 failure mode induced by load).
    pub fn is_consistency(&self) -> bool {
        if let Message::Traced { inner, .. } = self {
            return inner.is_consistency();
        }
        matches!(
            self,
            // Callbacks/deescalations, commit/2PC/abort control,
            // liveness and rejoin/epoch fencing, and flow-control
            // verdicts (a shed `Busy` must not itself be shed).
            Message::Callback { .. }
                | Message::CbBlocked { .. }
                | Message::CbOk { .. }
                | Message::CbTimeout { .. }
                | Message::CbCancel { .. }
                | Message::Deescalate { .. }
                | Message::DeescalateReply { .. }
                | Message::CommitReq { .. }
                | Message::CommitOk { .. }
                | Message::Prepare { .. }
                | Message::Voted { .. }
                | Message::Decide { .. }
                | Message::Decided { .. }
                | Message::AbortTxn { .. }
                | Message::TxnAborted { .. }
                | Message::Heartbeat
                | Message::RejoinRequired { .. }
                | Message::Rejoin { .. }
                | Message::RejoinOk { .. }
                | Message::QueryTxn { .. }
                | Message::TxnResolved { .. }
                | Message::Busy { .. }
                | Message::ReqDenied { .. }
                | Message::DrainReq { .. }
                | Message::DrainOk { .. }
                | Message::UndrainReq { .. }
                | Message::UndrainOk { .. }
                // Migration control and fencing verdicts must never
                // queue behind the bulk lane: a shed WrongOwner wedges
                // the redirected client, a delayed MigrateActivate
                // leaves the range ownerless. Only the page-image
                // TransferChunk is bulk.
                | Message::MigratePrepare { .. }
                | Message::MigratePrepared { .. }
                | Message::MigrateTransfer { .. }
                | Message::MigrateAbortReq { .. }
                | Message::MigrateAborted { .. }
                | Message::MigrateDone { .. }
                | Message::TransferAck { .. }
                | Message::MigrateActivate { .. }
                | Message::MigrateActivated { .. }
                | Message::QueryMigration { .. }
                | Message::MigrationResolved { .. }
                | Message::WrongOwner { .. }
                // The entire edge protocol rides the consistency lane:
                // staleness bounds are proved from per-(from,to,path)
                // FIFO between fetches, renews, and invalidations, so
                // none of them may be shed or queue behind bulk pages.
                | Message::EdgeFetch { .. }
                | Message::EdgePage { .. }
                | Message::EdgeInvalidate { .. }
                | Message::EdgeRenew { .. }
                | Message::EdgeRenewOk { .. }
                | Message::SetTierReq { .. }
                | Message::SetTierOk { .. }
        )
    }

    /// Whether this message is control-plane traffic from/to the cluster
    /// supervisor rather than a peer site. Control messages bypass the
    /// epoch fence (a freshly restarted site must be drainable before it
    /// rejoins) and never arm liveness state for their sender (the
    /// supervisor is not a peer and owns no data).
    pub fn is_control_plane(&self) -> bool {
        if let Message::Traced { inner, .. } = self {
            return inner.is_control_plane();
        }
        matches!(
            self,
            Message::DrainReq { .. }
                | Message::DrainOk { .. }
                | Message::UndrainReq { .. }
                | Message::UndrainOk { .. }
                | Message::MigratePrepare { .. }
                | Message::MigratePrepared { .. }
                | Message::MigrateTransfer { .. }
                | Message::MigrateAbortReq { .. }
                | Message::MigrateAborted { .. }
                | Message::MigrateDone { .. }
                | Message::SetTierReq { .. }
                | Message::SetTierOk { .. }
        )
    }

    /// The transaction this message works on behalf of, when it names
    /// one (used to root a trace span when no incoming context exists).
    pub fn txn_id(&self) -> Option<TxnId> {
        match self {
            Message::Traced { inner, .. } => inner.txn_id(),
            Message::ReadObj { txn, .. }
            | Message::ReadPage { txn, .. }
            | Message::WriteObj { txn, .. }
            | Message::WritePage { txn, .. }
            | Message::LockItem { txn, .. }
            | Message::Callback { txn, .. }
            | Message::CommitReq { txn, .. }
            | Message::Prepare { txn, .. }
            | Message::Voted { txn, .. }
            | Message::Decide { txn, .. }
            | Message::Decided { txn }
            | Message::AbortTxn { txn }
            | Message::TxnAborted { txn, .. }
            | Message::WriteLargeReq { txn, .. }
            | Message::CreateLargeReq { txn, .. }
            | Message::ReadForwarded { txn, .. }
            | Message::QueryTxn { txn }
            | Message::TxnResolved { txn, .. } => Some(*txn),
            _ => None,
        }
    }

    /// For a *request* that will be answered by a reply echoing its
    /// `req`, that id — the tracer parks the request's context under it
    /// so the (possibly much later) reply joins the same span tree.
    pub fn req_of_request(&self) -> Option<ReqId> {
        match self {
            Message::Traced { inner, .. } => inner.req_of_request(),
            Message::ReadObj { req, .. }
            | Message::ReadPage { req, .. }
            | Message::WriteObj { req, .. }
            | Message::WritePage { req, .. }
            | Message::LockItem { req, .. }
            | Message::CommitReq { req, .. }
            | Message::Prepare { req, .. }
            | Message::FetchLargePage { req, .. }
            | Message::WriteLargeReq { req, .. }
            | Message::CreateLargeReq { req, .. }
            | Message::ReadForwarded { req, .. }
            | Message::EdgeFetch { req, .. }
            | Message::EdgeRenew { req, .. }
            | Message::SetTierReq { req, .. } => Some(*req),
            _ => None,
        }
    }

    /// For a *reply*, the request id it answers (the tracer recovers
    /// the parked request context from it).
    pub fn req_of_reply(&self) -> Option<ReqId> {
        match self {
            Message::Traced { inner, .. } => inner.req_of_reply(),
            Message::ReadReply { req, .. }
            | Message::WriteGranted { req, .. }
            | Message::LockGranted { req }
            | Message::ReqDenied { req, .. }
            | Message::CommitOk { req }
            | Message::Voted { req, .. }
            | Message::Busy { req, .. }
            | Message::LargePageReply { req, .. }
            | Message::WriteLargeOk { req }
            | Message::CreateLargeOk { req, .. }
            | Message::ObjectBytes { req, .. }
            | Message::WrongOwner { req, .. }
            | Message::MigratePrepared { req }
            | Message::MigrateDone { req, .. }
            | Message::MigrateAborted { req, .. }
            | Message::EdgePage { req, .. }
            | Message::EdgeRenewOk { req, .. }
            | Message::SetTierOk { req } => Some(*req),
            _ => None,
        }
    }

    /// A short static label for trace events and Perfetto span names.
    pub fn label(&self) -> &'static str {
        match self {
            Message::Traced { inner, .. } => inner.label(),
            Message::ReadObj { .. } => "read_obj",
            Message::ReadPage { .. } => "read_page",
            Message::ReadReply { .. } => "read_reply",
            Message::WriteObj { .. } => "write_obj",
            Message::WritePage { .. } => "write_page",
            Message::WriteGranted { .. } => "write_granted",
            Message::LockItem { .. } => "lock_item",
            Message::LockGranted { .. } => "lock_granted",
            Message::ReqDenied { .. } => "req_denied",
            Message::Callback { .. } => "callback",
            Message::CbBlocked { .. } => "cb_blocked",
            Message::CbOk { .. } => "cb_ok",
            Message::CbTimeout { .. } => "cb_timeout",
            Message::CbCancel { .. } => "cb_cancel",
            Message::Deescalate { .. } => "deescalate",
            Message::DeescalateReply { .. } => "deescalate_reply",
            Message::Purge { .. } => "purge",
            Message::CommitReq { .. } => "commit_req",
            Message::CommitOk { .. } => "commit_ok",
            Message::Prepare { .. } => "prepare",
            Message::Voted { .. } => "voted",
            Message::Decide { .. } => "decide",
            Message::Decided { .. } => "decided",
            Message::AbortTxn { .. } => "abort_txn",
            Message::TxnAborted { .. } => "txn_aborted",
            Message::Heartbeat => "heartbeat",
            Message::FetchLargePage { .. } => "fetch_large_page",
            Message::LargePageReply { .. } => "large_page_reply",
            Message::WriteLargeReq { .. } => "write_large_req",
            Message::WriteLargeOk { .. } => "write_large_ok",
            Message::LargeInval { .. } => "large_inval",
            Message::LargeInvalOk { .. } => "large_inval_ok",
            Message::CreateLargeReq { .. } => "create_large_req",
            Message::CreateLargeOk { .. } => "create_large_ok",
            Message::ReadForwarded { .. } => "read_forwarded",
            Message::ObjectBytes { .. } => "object_bytes",
            Message::RejoinRequired { .. } => "rejoin_required",
            Message::Rejoin { .. } => "rejoin",
            Message::RejoinOk { .. } => "rejoin_ok",
            Message::QueryTxn { .. } => "query_txn",
            Message::TxnResolved { .. } => "txn_resolved",
            Message::Busy { .. } => "busy",
            Message::DrainReq { .. } => "drain_req",
            Message::DrainOk { .. } => "drain_ok",
            Message::UndrainReq { .. } => "undrain_req",
            Message::UndrainOk { .. } => "undrain_ok",
            Message::MigratePrepare { .. } => "migrate_prepare",
            Message::MigratePrepared { .. } => "migrate_prepared",
            Message::MigrateTransfer { .. } => "migrate_transfer",
            Message::MigrateAbortReq { .. } => "migrate_abort_req",
            Message::MigrateAborted { .. } => "migrate_aborted",
            Message::MigrateDone { .. } => "migrate_done",
            Message::TransferChunk { .. } => "transfer_chunk",
            Message::TransferAck { .. } => "transfer_ack",
            Message::MigrateActivate { .. } => "migrate_activate",
            Message::MigrateActivated { .. } => "migrate_activated",
            Message::QueryMigration { .. } => "query_migration",
            Message::MigrationResolved { .. } => "migration_resolved",
            Message::WrongOwner { .. } => "wrong_owner",
            Message::EdgeFetch { .. } => "edge_fetch",
            Message::EdgePage { .. } => "edge_page",
            Message::EdgeInvalidate { .. } => "edge_invalidate",
            Message::EdgeRenew { .. } => "edge_renew",
            Message::EdgeRenewOk { .. } => "edge_renew_ok",
            Message::SetTierReq { .. } => "set_tier_req",
            Message::SetTierOk { .. } => "set_tier_ok",
        }
    }
}

/// Application-level operations, submitted one at a time per transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppOp {
    /// Start a transaction; the engine assigns and returns its id.
    Begin,
    /// Read an object; completes once the object is locked and cached.
    Read(Oid),
    /// Update an object. `bytes: None` asks the engine to bump a version
    /// counter in the object's first 8 bytes (what the workload driver
    /// uses); `Some` installs the given (same-length) payload.
    Write {
        /// The object.
        oid: Oid,
        /// Replacement bytes, or `None` for a synthesized update.
        bytes: Option<Vec<u8>>,
    },
    /// Explicitly lock a granule (hierarchical locking, §4.3).
    Lock {
        /// The granule.
        item: LockableId,
        /// The mode.
        mode: LockMode,
    },
    /// Create a large object (paper §4.4). The transaction must hold an
    /// explicit EX lock on `header_page`. Completes with `Done` whose
    /// `data` is the 14-byte encoded header [`Oid`] (see
    /// `pscc_core::decode_header_oid`).
    CreateLarge {
        /// Page to hold the header object.
        header_page: PageId,
        /// Initial content.
        content: Vec<u8>,
    },
    /// Read a byte range of a large object. The transaction must have
    /// `Read` the header first (SH header lock + cached header).
    ReadLarge {
        /// The header object.
        header: Oid,
        /// Byte offset.
        offset: u64,
        /// Length to read.
        len: u32,
    },
    /// Update a byte range of a large object. The transaction must hold
    /// an EX lock on the header (e.g. via [`AppOp::Lock`]).
    WriteLarge {
        /// The header object.
        header: Oid,
        /// Byte offset.
        offset: u64,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Create a (small) object on a page. The transaction must hold an
    /// explicit EX lock on the page and have it cached. Completes with
    /// `Done` carrying the 14-byte encoded [`Oid`].
    Create {
        /// The page to create on.
        page: PageId,
        /// Initial bytes.
        bytes: Vec<u8>,
    },
    /// Delete an object. The transaction must hold an EX lock on it
    /// (e.g. via [`AppOp::Lock`]) and have it cached.
    Delete(Oid),
    /// Commit the transaction.
    Commit,
    /// Abort the transaction.
    Abort,
}

/// A request from an application to its local peer server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRequest {
    /// The issuing application.
    pub app: AppId,
    /// The transaction (`None` only for [`AppOp::Begin`]).
    pub txn: Option<TxnId>,
    /// The operation.
    pub op: AppOp,
}

/// The engine's answer to an application request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AppReply {
    /// [`AppOp::Begin`] done; here is the transaction id.
    Started {
        /// The application.
        app: AppId,
        /// The new transaction.
        txn: TxnId,
    },
    /// A read/write/lock op completed. For reads, `data` carries the
    /// object bytes.
    Done {
        /// The application.
        app: AppId,
        /// The transaction.
        txn: TxnId,
        /// Object bytes for reads.
        data: Option<Vec<u8>>,
    },
    /// The transaction committed.
    Committed {
        /// The application.
        app: AppId,
        /// The transaction.
        txn: TxnId,
    },
    /// The transaction aborted (the driver re-executes it).
    Aborted {
        /// The application.
        app: AppId,
        /// The transaction.
        txn: TxnId,
        /// Why.
        reason: AbortReason,
    },
}

impl AppReply {
    /// The application this reply addresses.
    pub fn app(&self) -> AppId {
        match self {
            AppReply::Started { app, .. }
            | AppReply::Done { app, .. }
            | AppReply::Committed { app, .. }
            | AppReply::Aborted { app, .. } => *app,
        }
    }
}

/// What a disk request does (for cost accounting; data is in memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskOp {
    /// Read a data page into the buffer.
    ReadPage(PageId),
    /// Write a data page out.
    WritePage(PageId),
    /// Force the log.
    WriteLog,
}

/// An input event delivered to a peer server.
#[derive(Debug, Clone, PartialEq)]
pub enum Input {
    /// A local application request.
    App(AppRequest),
    /// A network message.
    Msg {
        /// Sending site.
        from: SiteId,
        /// The message.
        msg: Message,
    },
    /// A previously issued disk request completed.
    DiskDone {
        /// Which request.
        req: DiskReqId,
    },
    /// A previously armed timer fired.
    TimerFired {
        /// Which timer.
        timer: TimerId,
    },
}

/// An output effect requested by a peer server.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Send a message to another site. (The engine never emits sends to
    /// itself — those loop back internally at zero message cost, which is
    /// how peer servers save messages on locally owned data.)
    Send {
        /// Destination.
        to: SiteId,
        /// The message.
        msg: Message,
    },
    /// Issue a disk request; a [`Input::DiskDone`] must follow.
    Disk {
        /// Request id.
        req: DiskReqId,
        /// What it does.
        op: DiskOp,
    },
    /// Arm a timer; an [`Input::TimerFired`] follows after `delay`
    /// unless the engine has since forgotten the timer (stale fires are
    /// ignored).
    ArmTimer {
        /// Timer id.
        timer: TimerId,
        /// Delay from now.
        delay: SimDuration,
    },
    /// Answer an application.
    App(AppReply),
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};
    use pscc_storage::{AvailMask, SlottedPage};

    #[test]
    fn ids_display() {
        assert_eq!(format!("{}", ReqId(3)), "req3");
        assert_eq!(format!("{}", CbId(4)), "cb4");
        assert_eq!(format!("{}", DeId(5)), "de5");
    }

    #[test]
    fn wire_sizes_reflect_payload() {
        let page = PageId::new(FileId::new(VolId(0), 0), 1);
        let big = Message::ReadReply {
            req: ReqId(1),
            snapshot: PageSnapshot {
                page,
                image: SlottedPage::new(4096),
                avail: AvailMask::all_available(1),
                ship_seq: 1,
            },
        };
        let small = Message::CbOk {
            cb: CbId(1),
            purged_page: true,
        };
        assert!(big.wire_size() > 4000);
        assert!(small.wire_size() <= 64);
    }

    #[test]
    fn consistency_lane_classification() {
        let t = TxnId {
            site: SiteId(1),
            seq: 1,
        };
        // Consistency lane: callbacks, commit control, flow verdicts.
        assert!(Message::CbCancel { cb: CbId(1) }.is_consistency());
        assert!(Message::Decide {
            txn: t,
            commit: true
        }
        .is_consistency());
        assert!(Message::Busy {
            req: ReqId(1),
            retry_after: SimDuration::from_millis(10),
        }
        .is_consistency());
        assert!(Message::Heartbeat.is_consistency());
        // Control-plane drain traffic rides the lossless lane too: a
        // shed DrainReq would wedge the supervisor's step timeout.
        assert!(Message::DrainReq { req: ReqId(7) }.is_consistency());
        assert!(Message::DrainOk { req: ReqId(7) }.is_consistency());
        assert!(Message::UndrainReq { req: ReqId(8) }.is_consistency());
        assert!(Message::UndrainOk { req: ReqId(8) }.is_consistency());
        assert!(Message::DrainReq { req: ReqId(7) }.is_control_plane());
        assert!(!Message::Heartbeat.is_control_plane());
        // Migration control is control-plane *and* consistency; the
        // peer-to-peer handshake is consistency but not control-plane;
        // the page-image chunk is bulk.
        let prep = Message::MigratePrepare {
            req: ReqId(9),
            lo: 0,
            hi: 8,
            to: SiteId(2),
        };
        assert!(prep.is_control_plane());
        assert!(prep.is_consistency());
        let act = Message::MigrateActivate {
            lo: 0,
            hi: 8,
            layout: 2,
        };
        assert!(act.is_consistency());
        assert!(!act.is_control_plane());
        let wrong = Message::WrongOwner {
            req: ReqId(9),
            lo: 0,
            hi: 8,
            layout: 2,
            new_owner: SiteId(2),
        };
        assert!(wrong.is_consistency());
        assert_eq!(wrong.req_of_reply(), Some(ReqId(9)));
        let chunk = Message::TransferChunk {
            lo: 0,
            hi: 8,
            layout: 2,
            pages: vec![(
                PageId::new(FileId::new(VolId(0), 0), 1),
                SlottedPage::new(4096),
            )],
            copies: vec![],
        };
        assert!(!chunk.is_consistency());
        assert!(chunk.wire_size() > 4000);
        // Bulk lane: fetches and write-permission traffic.
        let p = PageId::new(FileId::new(VolId(0), 0), 1);
        assert!(!Message::ReadPage {
            req: ReqId(1),
            txn: t,
            page: p,
        }
        .is_consistency());
        assert!(!Message::WriteObj {
            req: ReqId(1),
            txn: t,
            oid: Oid::new(p, 0),
        }
        .is_consistency());
        // The whole edge protocol is consistency traffic (the staleness
        // bound depends on FIFO between fetches and invalidations), and
        // the tier roll is control-plane like the other supervisor ops.
        let fetch = Message::EdgeFetch {
            req: ReqId(3),
            page: p,
            watch: true,
            lease: SimDuration::from_millis(100),
        };
        assert!(fetch.is_consistency());
        assert!(!fetch.is_control_plane());
        assert_eq!(fetch.req_of_request(), Some(ReqId(3)));
        let epage = Message::EdgePage {
            req: ReqId(3),
            page: p,
            version: 1,
            epoch: 0,
            image: SlottedPage::new(4096),
        };
        assert!(epage.is_consistency());
        assert_eq!(epage.req_of_reply(), Some(ReqId(3)));
        assert!(epage.wire_size() > 4000);
        assert!(Message::EdgeInvalidate {
            pages: vec![(p, 2)]
        }
        .is_consistency());
        let renew = Message::EdgeRenew {
            req: ReqId(4),
            lease: SimDuration::from_millis(100),
            files: vec![0],
        };
        assert!(renew.is_consistency());
        assert_eq!(renew.req_of_request(), Some(ReqId(4)));
        assert!(Message::EdgeRenewOk {
            req: ReqId(4),
            epoch: 0,
            resubscribed: false
        }
        .is_consistency());
        let set = Message::SetTierReq {
            req: ReqId(5),
            file: 0,
            tier: pscc_common::ConsistencyTier::Strict,
        };
        assert!(set.is_control_plane() && set.is_consistency());
        assert!(Message::SetTierOk { req: ReqId(5) }.is_control_plane());
    }

    #[test]
    fn traced_envelope_delegates() {
        let t = TxnId {
            site: SiteId(2),
            seq: 9,
        };
        let inner = Message::Decide {
            txn: t,
            commit: true,
        };
        let wrapped = Message::Traced {
            ctx: TraceCtx {
                txn: t,
                origin: SiteId(2),
                span: SpanId(5),
                parent: SpanId::NONE,
            },
            inner: Box::new(inner.clone()),
        };
        assert!(wrapped.is_consistency());
        assert!(!wrapped.is_control_plane());
        assert_eq!(wrapped.txn_id(), Some(t));
        assert_eq!(wrapped.label(), "decide");
        assert_eq!(wrapped.wire_size(), inner.wire_size() + 32);
        let req = Message::ReadObj {
            req: ReqId(3),
            txn: t,
            oid: Oid::new(PageId::new(FileId::new(VolId(0), 0), 1), 0),
        };
        assert_eq!(req.req_of_request(), Some(ReqId(3)));
        assert_eq!(req.req_of_reply(), None);
        assert_eq!(
            Message::CommitOk { req: ReqId(3) }.req_of_reply(),
            Some(ReqId(3))
        );
    }

    #[test]
    fn traced_envelope_survives_wire_framing() {
        // The trace context must round-trip through the real codec so
        // cross-site spans line up when engines run over TCP.
        let t = TxnId {
            site: SiteId(1),
            seq: 4,
        };
        let msg = Message::Traced {
            ctx: TraceCtx {
                txn: t,
                origin: SiteId(1),
                span: SpanId(0x0100_0000_0007),
                parent: SpanId(0x0200_0000_0003),
            },
            inner: Box::new(Message::Decide {
                txn: t,
                commit: false,
            }),
        };
        let mut buf = bytes::BytesMut::new();
        pscc_net::codec::encode_frame(&msg, &mut buf).expect("encode");
        let got: Message = pscc_net::codec::decode_frame(&mut buf)
            .expect("decode")
            .expect("complete frame");
        match got {
            Message::Traced { ctx, inner } => {
                assert_eq!(ctx.txn, t);
                assert_eq!(ctx.span, SpanId(0x0100_0000_0007));
                assert_eq!(ctx.parent, SpanId(0x0200_0000_0003));
                assert_eq!(inner.label(), "decide");
            }
            other => panic!("expected Traced, got {other:?}"),
        }
    }

    #[test]
    fn cb_target_lockable() {
        let p = PageId::new(FileId::new(VolId(0), 0), 1);
        assert_eq!(CbTarget::PageAll(p).lockable(), LockableId::Page(p));
        let o = Oid::new(p, 2);
        assert_eq!(CbTarget::Object(o).lockable(), LockableId::Object(o));
    }
}
