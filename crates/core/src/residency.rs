//! Server-buffer residency tracking. Page *contents* live in the
//! in-memory [`pscc_storage::Volume`]; this tracker only decides whether
//! touching a page costs a disk read (miss) and whether evicting it costs
//! a disk write (dirty) — the quantities the paper's experiments measure.

use pscc_common::PageId;
use std::collections::HashMap;

/// LRU residency tracker for one server's buffer pool.
#[derive(Debug, Default)]
pub struct Residency {
    resident: HashMap<PageId, Slot>,
    capacity: usize,
    tick: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    last_used: u64,
    dirty: bool,
}

/// Result of touching a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Touch {
    /// The page was not resident: charge one disk read.
    pub miss: bool,
    /// A dirty page was evicted to make room: charge one disk write.
    pub writeback: Option<PageId>,
}

impl Residency {
    /// Creates a tracker with the given capacity in pages.
    pub fn new(capacity: usize) -> Self {
        Residency {
            resident: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Touches `page`, making it resident; reports whether that was a
    /// miss and whether a dirty eviction occurred.
    pub fn touch(&mut self, page: PageId, dirty: bool) -> Touch {
        self.tick += 1;
        let tick = self.tick;
        let mut result = Touch {
            miss: false,
            writeback: None,
        };
        match self.resident.get_mut(&page) {
            Some(s) => {
                s.last_used = tick;
                s.dirty |= dirty;
            }
            None => {
                result.miss = true;
                self.resident.insert(
                    page,
                    Slot {
                        last_used: tick,
                        dirty,
                    },
                );
                if self.resident.len() > self.capacity {
                    let victim = self
                        .resident
                        .iter()
                        .filter(|(p, _)| **p != page)
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(p, s)| (*p, s.dirty));
                    if let Some((v, was_dirty)) = victim {
                        self.resident.remove(&v);
                        if was_dirty {
                            result.writeback = Some(v);
                        }
                    }
                }
            }
        }
        result
    }

    /// Whether the page is currently resident (no LRU bump).
    pub fn is_resident(&self, page: PageId) -> bool {
        self.resident.contains_key(&page)
    }

    /// Marks a resident page clean (its contents were written back).
    pub fn mark_clean(&mut self, page: PageId) {
        if let Some(s) = self.resident.get_mut(&page) {
            s.dirty = false;
        }
    }

    /// Evicts every resident page matching `pred` *without* charging a
    /// writeback, returning how many went. Used when ownership of a page
    /// range migrates away: the images were shipped to the new owner, so
    /// a dirty local copy is no longer this site's to write back.
    pub fn evict_where(&mut self, pred: impl Fn(PageId) -> bool) -> usize {
        let before = self.resident.len();
        self.resident.retain(|p, _| !pred(*p));
        before - self.resident.len()
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    #[test]
    fn first_touch_misses_second_hits() {
        let mut r = Residency::new(4);
        assert!(r.touch(pid(1), false).miss);
        assert!(!r.touch(pid(1), false).miss);
    }

    #[test]
    fn lru_eviction_and_dirty_writeback() {
        let mut r = Residency::new(2);
        r.touch(pid(1), true);
        r.touch(pid(2), false);
        r.touch(pid(1), false); // keep 1 warm; 2 becomes LRU
        let t = r.touch(pid(3), false);
        assert!(t.miss);
        assert_eq!(t.writeback, None, "page 2 was clean");
        assert!(!r.is_resident(pid(2)));
        // Now evict dirty page 1.
        r.touch(pid(2), false); // evicts 1 (LRU since tick for 3, 2 newer)
        assert!(r.is_resident(pid(2)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut r = Residency::new(1);
        r.touch(pid(1), true);
        let t = r.touch(pid(2), false);
        assert_eq!(t.writeback, Some(pid(1)));
    }

    #[test]
    fn evict_where_drops_without_writeback() {
        let mut r = Residency::new(4);
        r.touch(pid(1), true);
        r.touch(pid(2), false);
        r.touch(pid(7), true);
        assert_eq!(r.evict_where(|p| p.page < 3), 2);
        assert!(!r.is_resident(pid(1)));
        assert!(r.is_resident(pid(7)));
    }

    #[test]
    fn mark_clean_suppresses_writeback() {
        let mut r = Residency::new(1);
        r.touch(pid(1), true);
        r.mark_clean(pid(1));
        let t = r.touch(pid(2), false);
        assert_eq!(t.writeback, None);
    }
}
