//! The callback race table (paper §4.2.4, Fig. 5).
//!
//! A callback that completes at a client *while that client has a read
//! request outstanding for the same page* registers a race: the read
//! reply already in flight may propose the called-back object as
//! "available", and the client must override that to "unavailable". Each
//! race entry remembers exactly which outstanding requests it applies to;
//! once all of them have been answered, the entry is deleted.
//!
//! The deescalation race (§4.2.4) is kept in the same structure, keyed by
//! page: while a `Deescalate` for a page has been processed, the
//! `adaptive` bit of any write grant answering a request that was
//! outstanding at that moment must be ignored.

use crate::msg::ReqId;
use pscc_common::PageId;
use std::collections::{HashMap, HashSet};

/// One registered callback race.
#[derive(Debug, Clone)]
struct RaceEntry {
    /// The slot whose "available" proposal must be overridden.
    slot: u16,
    /// The outstanding read requests the override applies to.
    pending: HashSet<ReqId>,
}

/// Client-side race bookkeeping.
#[derive(Debug, Default)]
pub struct RaceTable {
    /// Callback races, per page.
    callback: HashMap<PageId, Vec<RaceEntry>>,
    /// Deescalation races: write requests whose `adaptive` grant bit must
    /// be ignored.
    deescalated: HashSet<ReqId>,
}

impl RaceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a callback race for `slot` of `page`, applying to the
    /// given outstanding read requests. No-op when `pending` is empty.
    pub fn register_callback_race<I: IntoIterator<Item = ReqId>>(
        &mut self,
        page: PageId,
        slot: u16,
        pending: I,
    ) {
        let set: HashSet<ReqId> = pending.into_iter().collect();
        if set.is_empty() {
            return;
        }
        self.callback
            .entry(page)
            .or_default()
            .push(RaceEntry { slot, pending: set });
    }

    /// A read reply for `req` on `page` arrived: returns the slots that
    /// must be treated as unavailable, and retires entries that have no
    /// outstanding requests left.
    pub fn consume(&mut self, page: PageId, req: ReqId) -> Vec<u16> {
        let mut raced = Vec::new();
        if let Some(entries) = self.callback.get_mut(&page) {
            for e in entries.iter_mut() {
                if e.pending.remove(&req) {
                    raced.push(e.slot);
                }
            }
            entries.retain(|e| !e.pending.is_empty());
            if entries.is_empty() {
                self.callback.remove(&page);
            }
        }
        raced.sort_unstable();
        raced.dedup();
        raced
    }

    /// Drops a request from all entries without applying it (the request
    /// was answered by an abort instead of a reply).
    pub fn forget_request(&mut self, req: ReqId) {
        self.callback.retain(|_, entries| {
            for e in entries.iter_mut() {
                e.pending.remove(&req);
            }
            entries.retain(|e| !e.pending.is_empty());
            !entries.is_empty()
        });
        self.deescalated.remove(&req);
    }

    /// Registers a deescalation race for outstanding write requests.
    pub fn register_deescalation<I: IntoIterator<Item = ReqId>>(&mut self, reqs: I) {
        self.deescalated.extend(reqs);
    }

    /// Whether `req`'s adaptive grant bit must be ignored; consumes the
    /// entry.
    pub fn consume_deescalation(&mut self, req: ReqId) -> bool {
        self.deescalated.remove(&req)
    }

    /// Number of live callback race entries (diagnostics/stats).
    pub fn len(&self) -> usize {
        self.callback.values().map(Vec::len).sum()
    }

    /// Whether no races are registered.
    pub fn is_empty(&self) -> bool {
        self.callback.is_empty() && self.deescalated.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::{FileId, VolId};

    fn pid(n: u32) -> PageId {
        PageId::new(FileId::new(VolId(0), 0), n)
    }

    #[test]
    fn race_applies_to_registered_requests_only() {
        let mut rt = RaceTable::new();
        rt.register_callback_race(pid(1), 3, [ReqId(10)]);
        // A different request on the same page: unaffected.
        assert!(rt.consume(pid(1), ReqId(11)).is_empty());
        assert_eq!(rt.consume(pid(1), ReqId(10)), vec![3]);
        // Entry retired.
        assert!(rt.consume(pid(1), ReqId(10)).is_empty());
        assert!(rt.is_empty());
    }

    #[test]
    fn race_with_multiple_pending_requests() {
        let mut rt = RaceTable::new();
        rt.register_callback_race(pid(1), 2, [ReqId(1), ReqId(2)]);
        assert_eq!(rt.consume(pid(1), ReqId(1)), vec![2]);
        assert_eq!(rt.consume(pid(1), ReqId(2)), vec![2]);
        assert!(rt.is_empty());
    }

    #[test]
    fn empty_registration_is_noop() {
        let mut rt = RaceTable::new();
        rt.register_callback_race(pid(1), 2, []);
        assert!(rt.is_empty());
    }

    #[test]
    fn multiple_slots_same_page() {
        let mut rt = RaceTable::new();
        rt.register_callback_race(pid(1), 2, [ReqId(1)]);
        rt.register_callback_race(pid(1), 5, [ReqId(1)]);
        assert_eq!(rt.consume(pid(1), ReqId(1)), vec![2, 5]);
    }

    #[test]
    fn forget_request_cleans_up() {
        let mut rt = RaceTable::new();
        rt.register_callback_race(pid(1), 2, [ReqId(1)]);
        rt.register_deescalation([ReqId(1)]);
        rt.forget_request(ReqId(1));
        assert!(rt.is_empty());
    }

    #[test]
    fn deescalation_race_consumed_once() {
        let mut rt = RaceTable::new();
        rt.register_deescalation([ReqId(7)]);
        assert!(rt.consume_deescalation(ReqId(7)));
        assert!(!rt.consume_deescalation(ReqId(7)));
    }
}
