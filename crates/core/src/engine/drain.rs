//! Graceful drain: the control plane's handshake for taking an owner
//! out of service without losing work (DESIGN.md §8).
//!
//! The supervisor sends [`Message::DrainReq`]; the site then:
//!
//! 1. **Closes admission** — every *new* remote data request is refused
//!    with [`Message::Busy`], exactly as if the PR 4 admission cap were
//!    zero. Clients already know how to back off and retry, so shed work
//!    is deferred, never failed. The consistency lane (callbacks, 2PC,
//!    aborts, rejoin) stays open so admitted transactions can terminate.
//! 2. **Retires in-flight work** — a periodic check (the `DrainCheck`
//!    timer, one `busy_retry_hint` per tick) waits until the admitted
//!    table, callback fan-outs, deescalations, and data-bearing disk
//!    continuations are all empty.
//! 3. **Forces the WAL** — committed work is already durable (commit
//!    forces the log), so this is a belt-and-braces barrier that makes
//!    the drained image self-contained.
//! 4. **Reports** — [`Message::DrainOk`] tells the supervisor the site
//!    can be stopped with zero committed-work loss. The site stays
//!    closed until [`Message::UndrainReq`] (rollback / reopen) or a
//!    restart builds a fresh engine.
//!
//! Everything is idempotent: duplicate `DrainReq`s re-answer a finished
//! drain, `UndrainReq` on an active site simply confirms.

use pscc_common::SiteId;

use super::{DiskCont, PeerServer, TimerKind};
use crate::msg::{DiskOp, Message, Output, ReqId};

/// Where a site stands in the drain lifecycle (a test/metrics probe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainPhase {
    /// Admitting data requests normally.
    Active,
    /// Drain requested; in-flight work is still retiring.
    Draining,
    /// Drain complete (`DrainOk` sent); admission stays closed.
    Drained,
}

/// Book-keeping for an in-progress or completed drain.
#[derive(Debug, Clone)]
pub(crate) struct DrainState {
    /// Who asked (the supervisor; replies go here).
    pub requester: SiteId,
    /// Correlates `DrainOk` with the request.
    pub req: ReqId,
    /// Whether `DrainOk` has been sent.
    pub done: bool,
}

impl PeerServer {
    /// Where this site stands in the drain lifecycle.
    pub fn drain_phase(&self) -> DrainPhase {
        match &self.draining {
            None => DrainPhase::Active,
            Some(d) if d.done => DrainPhase::Drained,
            Some(_) => DrainPhase::Draining,
        }
    }

    /// Handles [`Message::DrainReq`]: begin (or re-answer) a drain.
    pub(crate) fn server_drain_req(&mut self, from: SiteId, req: ReqId) {
        if let Some(d) = &mut self.draining {
            // Duplicate request: re-point the reply and re-answer if the
            // drain already finished (the supervisor may be retrying a
            // step whose DrainOk it never saw).
            d.requester = from;
            d.req = req;
            if d.done {
                self.send(from, Message::DrainOk { req });
            }
            return;
        }
        self.draining = Some(DrainState {
            requester: from,
            req,
            done: false,
        });
        self.stats.drains_started += 1;
        self.obs
            .record(pscc_obs::EventKind::DrainBegin { site: self.site });
        self.arm_drain_check();
        // The drain may already be trivially complete (idle site).
        self.drain_check_fired();
    }

    /// Handles [`Message::UndrainReq`]: reopen admission. Idempotent —
    /// an already-active site (e.g. freshly restarted) just confirms.
    pub(crate) fn server_undrain_req(&mut self, from: SiteId, req: ReqId) {
        if self.draining.take().is_some() {
            self.obs
                .record(pscc_obs::EventKind::Undrained { site: self.site });
        }
        self.send(from, Message::UndrainOk { req });
    }

    /// Whether a drain is closing admission right now (checked by
    /// [`PeerServer::admit`]).
    pub(crate) fn drain_refuses_admission(&self) -> bool {
        self.draining.is_some()
    }

    fn arm_drain_check(&mut self) {
        let timer = self.fresh_timer();
        self.timers.insert(timer, TimerKind::DrainCheck);
        self.out.push(Output::ArmTimer {
            timer,
            delay: self.cfg.busy_retry_hint,
        });
    }

    /// All admitted work has reached a verdict and nothing data-bearing
    /// is still in flight at this site in its owner role.
    fn drain_work_retired(&self) -> bool {
        let io_in_flight = self
            .disk_conts
            .values()
            .any(|c| !matches!(c, DiskCont::Accounted | DiskCont::DrainForced));
        self.admitted.is_empty()
            && self.cb_ops.is_empty()
            && self.de_ops.is_empty()
            && !io_in_flight
    }

    /// The periodic `DrainCheck` tick: finish the drain when the site's
    /// owner-role work has retired, otherwise look again next tick.
    pub(crate) fn drain_check_fired(&mut self) {
        let still_draining = matches!(&self.draining, Some(d) if !d.done);
        if !still_draining {
            return; // stale fire: undrained or already done
        }
        if !self.drain_work_retired() {
            self.arm_drain_check();
            return;
        }
        if self.log.force() {
            self.disk(DiskOp::WriteLog, DiskCont::DrainForced);
        } else {
            self.drain_forced();
        }
    }

    /// The drain's WAL force is durable: report `DrainOk`.
    pub(crate) fn drain_forced(&mut self) {
        let Some(d) = &mut self.draining else {
            return; // undrained while the force was in flight
        };
        if d.done {
            return;
        }
        d.done = true;
        let (requester, req) = (d.requester, d.req);
        self.stats.drains_completed += 1;
        self.obs
            .record(pscc_obs::EventKind::DrainDone { site: self.site });
        self.send(requester, Message::DrainOk { req });
    }
}
