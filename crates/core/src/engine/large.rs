//! Large objects (paper §4.4): objects spanning multiple pages are
//! stored as private page trees reached through a small *header* object.
//! Access control rides entirely on the header's lock, acquired through
//! the ordinary PS-AA object path: SH to read, EX to update. Data pages
//! cached at a client stay valid without locks; an update invalidates
//! all other cached copies of the touched data pages before the write
//! permission is acknowledged, so a later reader (who must first win the
//! header lock) re-fetches fresh pages.
//!
//! Usage contract (enforced with graceful errors, documented in the
//! [`AppOp`] variants):
//! * `CreateLarge` requires an explicit EX lock on the header's page;
//! * `ReadLarge` requires having `Read` the header in this transaction;
//! * `WriteLarge` requires an EX lock on the header (e.g. via
//!   `AppOp::Lock`).

use super::PeerServer;
use crate::msg::{Message, ReqId};
use pscc_common::{LockMode, LockableId, Oid, PageId, SiteId, TxnId};
use pscc_storage::LargeHeader;
use std::collections::HashMap;

/// Encodes a header [`Oid`] into the `Done.data` payload of
/// `CreateLarge`.
pub fn encode_header_oid(oid: Oid) -> Vec<u8> {
    let mut v = Vec::with_capacity(14);
    v.extend_from_slice(&oid.page.file.vol.0.to_le_bytes());
    v.extend_from_slice(&oid.page.file.file.to_le_bytes());
    v.extend_from_slice(&oid.page.page.to_le_bytes());
    v.extend_from_slice(&oid.slot.to_le_bytes());
    v
}

/// Decodes the header [`Oid`] from a `CreateLarge` reply.
pub fn decode_header_oid(bytes: &[u8]) -> Option<Oid> {
    if bytes.len() != 14 {
        return None;
    }
    let vol = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    let file = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    let page = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
    let slot = u16::from_le_bytes(bytes[12..14].try_into().ok()?);
    Some(Oid::new(
        PageId::new(
            pscc_common::FileId::new(pscc_common::VolId(vol), file),
            page,
        ),
        slot,
    ))
}

/// A client-side large-object read in progress: pages still needed, and
/// what to assemble once they arrive.
#[derive(Debug)]
pub(crate) struct LargeRead {
    pub txn: TxnId,
    pub header: LargeHeader,
    pub offset: u64,
    pub len: u32,
    /// Fetch request → page, still outstanding.
    pub pending: HashMap<ReqId, PageId>,
}

impl PeerServer {
    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    pub(crate) fn client_create_large(
        &mut self,
        txn: TxnId,
        header_page: PageId,
        content: Vec<u8>,
    ) {
        // The EX page lock must already be held (explicit Lock op).
        if !self
            .locks
            .held_covers(txn, LockableId::Page(header_page), LockMode::Ex)
        {
            self.complete_op(txn, None);
            return;
        }
        let Some(owner) = self.client_route(txn, header_page) else {
            return;
        };
        let req = self.fresh_req();
        self.large_creates.insert(req, txn);
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.insert(req);
            h.participants.insert(owner);
        }
        self.send(
            owner,
            Message::CreateLargeReq {
                req,
                txn,
                header_page,
                content,
            },
        );
    }

    pub(crate) fn client_create_large_ok(&mut self, req: ReqId, header: Oid) {
        let Some(txn) = self.large_creates.remove(&req) else {
            return;
        };
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.remove(&req);
        }
        if !self.txn_is_running(txn) {
            return;
        }
        self.complete_op(txn, Some(encode_header_oid(header)));
    }

    /// Reads `len` bytes at `offset` of the large object whose header is
    /// `header`. The header must be readable through this transaction's
    /// cache (a prior `Read(header)`).
    pub(crate) fn client_read_large(&mut self, txn: TxnId, header: Oid, offset: u64, len: u32) {
        let header_bytes = match self.cache.read_object(header) {
            Some(b) => b,
            None => {
                // Owner-local fast path: the header lives on our volume.
                match self.volume.read_object(header) {
                    Some(b) if self.owners.owner_of(header.page) == Some(self.site) => b.to_vec(),
                    _ => {
                        self.complete_op(txn, None);
                        return;
                    }
                }
            }
        };
        let Some(hdr) = LargeHeader::decode(&header_bytes) else {
            self.complete_op(txn, None);
            return;
        };
        if offset + len as u64 > hdr.size {
            self.complete_op(txn, None);
            return;
        }
        // Which data pages does the range touch, and which are missing
        // locally? (The owner's own store counts as local.)
        let payload = self.large_payload_per_page(&hdr);
        let first = (offset / payload) as usize;
        let last = ((offset + len.max(1) as u64 - 1) / payload) as usize;
        let Some(owner) = self.client_route(txn, header.page) else {
            return;
        };
        let mut pending = HashMap::new();
        for pg in hdr.pages[first..=last].iter() {
            let have = self.large_cache.contains_key(pg)
                || (owner == self.site && self.large.page(*pg).is_some());
            if !have {
                let req = self.fresh_req();
                pending.insert(req, *pg);
            }
        }
        if pending.is_empty() {
            let data = self.assemble_large(&hdr, offset, len);
            self.complete_op(txn, data);
            return;
        }
        for (req, pg) in &pending {
            self.send(
                owner,
                Message::FetchLargePage {
                    req: *req,
                    page: *pg,
                },
            );
        }
        let op = LargeRead {
            txn,
            header: hdr,
            offset,
            len,
            pending,
        };
        self.large_reads.push(op);
    }

    fn large_payload_per_page(&self, hdr: &LargeHeader) -> u64 {
        // Data pages carry a full page of payload; derive from the first
        // page when cached, else from the configured size.
        let _ = hdr;
        self.cfg.page_size as u64
    }

    fn assemble_large(&mut self, hdr: &LargeHeader, offset: u64, len: u32) -> Option<Vec<u8>> {
        let payload = self.large_payload_per_page(hdr);
        let mut out = Vec::with_capacity(len as usize);
        let mut pos = offset;
        let end = offset + len as u64;
        while pos < end {
            let idx = (pos / payload) as usize;
            let off = (pos % payload) as usize;
            let pg = hdr.pages.get(idx)?;
            let bytes: &[u8] = match self.large_cache.get(pg) {
                Some(b) => b,
                None => self.large.page(*pg)?,
            };
            let take = ((end - pos) as usize).min(bytes.len().saturating_sub(off));
            if take == 0 {
                return None;
            }
            out.extend_from_slice(&bytes[off..off + take]);
            pos += take as u64;
        }
        Some(out)
    }

    pub(crate) fn client_large_page_reply(&mut self, req: ReqId, page: PageId, bytes: Vec<u8>) {
        self.large_cache.insert(page, bytes);
        let mut finished = Vec::new();
        for (i, op) in self.large_reads.iter_mut().enumerate() {
            op.pending.remove(&req);
            if op.pending.is_empty() {
                finished.push(i);
            }
        }
        // Complete finished reads (back to front to keep indices valid).
        for i in finished.into_iter().rev() {
            let op = self.large_reads.remove(i);
            if !self.txn_is_running(op.txn) {
                continue;
            }
            let data = self.assemble_large(&op.header, op.offset, op.len);
            self.complete_op(op.txn, data);
        }
    }

    /// Updates a byte range; requires the EX header lock.
    pub(crate) fn client_write_large(
        &mut self,
        txn: TxnId,
        header: Oid,
        offset: u64,
        bytes: Vec<u8>,
    ) {
        if !self
            .locks
            .held_covers(txn, LockableId::Object(header), LockMode::Ex)
        {
            self.complete_op(txn, None);
            return;
        }
        let Some(owner) = self.client_route(txn, header.page) else {
            return;
        };
        let req = self.fresh_req();
        self.large_writes.insert(req, txn);
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.insert(req);
            h.participants.insert(owner);
        }
        self.send(
            owner,
            Message::WriteLargeReq {
                req,
                txn,
                header,
                offset,
                bytes,
            },
        );
    }

    pub(crate) fn client_write_large_ok(&mut self, req: ReqId) {
        let Some(txn) = self.large_writes.remove(&req) else {
            return;
        };
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.remove(&req);
        }
        if !self.txn_is_running(txn) {
            return;
        }
        self.complete_op(txn, None);
    }

    pub(crate) fn client_large_inval(&mut self, from: SiteId, inv: ReqId, pages: Vec<PageId>) {
        for p in pages {
            self.large_cache.remove(&p);
        }
        self.send(from, Message::LargeInvalOk { inv });
    }

    // ------------------------------------------------------------------
    // Owner side
    // ------------------------------------------------------------------

    pub(crate) fn server_create_large(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        header_page: PageId,
        content: Vec<u8>,
    ) {
        self.txns.spread(txn);
        let file = header_page.file;
        let hdr = self.large.create(file, &content);
        match self.volume.create_object(header_page, &hdr.encode()) {
            Ok(header) => {
                self.touch_resident(header_page, true);
                self.send(from, Message::CreateLargeOk { req, header });
            }
            Err(_) => {
                // Header page full: undo the data pages; the client's op
                // completes empty (graceful error).
                self.large.destroy(&hdr);
                self.send(
                    from,
                    Message::CreateLargeOk {
                        req,
                        header: Oid::new(header_page, u16::MAX - 1),
                    },
                );
            }
        }
    }

    pub(crate) fn server_fetch_large(&mut self, req: ReqId, from: SiteId, page: PageId) {
        let Some(bytes) = self.large.page(page).map(<[u8]>::to_vec) else {
            return;
        };
        // Large pages share the copy table (distinct page-number space).
        self.copy_table.record_ship(page, from);
        self.touch_resident(page, false);
        self.send(from, Message::LargePageReply { req, page, bytes });
    }

    pub(crate) fn server_write_large(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        header: Oid,
        offset: u64,
        bytes: Vec<u8>,
    ) {
        self.txns.spread(txn);
        // The EX header lock must be held at the server by this txn —
        // that is the §4.4 protection.
        if !self
            .locks
            .held_covers(txn, LockableId::Object(header), LockMode::Ex)
        {
            self.send(from, Message::WriteLargeOk { req });
            return;
        }
        let Some(hdr_bytes) = self.volume.read_object(header).map(<[u8]>::to_vec) else {
            self.send(from, Message::WriteLargeOk { req });
            return;
        };
        let Some(hdr) = LargeHeader::decode(&hdr_bytes) else {
            self.send(from, Message::WriteLargeOk { req });
            return;
        };
        if self.large.write(&hdr, offset, &bytes).is_err() {
            self.send(from, Message::WriteLargeOk { req });
            return;
        }
        // Invalidate other cached copies of the touched pages before
        // granting (paper §4.4: the server calls back the page from all
        // other clients caching it, then grants update permission).
        let payload = self.cfg.page_size as u64;
        let first = (offset / payload) as usize;
        let last = ((offset + bytes.len().max(1) as u64 - 1) / payload) as usize;
        let touched: Vec<PageId> = hdr.pages[first..=last.min(hdr.pages.len() - 1)].to_vec();
        let mut targets: Vec<SiteId> = Vec::new();
        for p in &touched {
            for s in self.copy_table.clients_except(*p, from) {
                if s != self.site && !targets.contains(&s) {
                    targets.push(s);
                }
            }
            // Our own cached copy (owner as client) drops synchronously.
            self.large_cache.remove(p);
            self.copy_table.drop_entry(*p, self.site);
            self.touch_resident(*p, true);
        }
        if targets.is_empty() {
            self.send(from, Message::WriteLargeOk { req });
            return;
        }
        let inv = self.fresh_req();
        self.large_invals
            .insert(inv, (from, req, targets.iter().copied().collect()));
        for s in targets {
            for p in &touched {
                self.copy_table.drop_entry(*p, s);
            }
            self.send(
                s,
                Message::LargeInval {
                    inv,
                    pages: touched.clone(),
                },
            );
        }
    }

    pub(crate) fn server_large_inval_ok(&mut self, from: SiteId, inv: ReqId) {
        let done = {
            let Some((_, _, pending)) = self.large_invals.get_mut(&inv) else {
                return;
            };
            pending.remove(&from);
            pending.is_empty()
        };
        if done {
            let Some((to, req, _)) = self.large_invals.remove(&inv) else {
                self.obs.record(pscc_obs::EventKind::StaleDrop {
                    what: "large-object invalidation ack without operation",
                });
                return;
            };
            self.send(to, Message::WriteLargeOk { req });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_oid_roundtrip() {
        let oid = Oid::new(
            PageId::new(pscc_common::FileId::new(pscc_common::VolId(3), 1), 12_345),
            7,
        );
        assert_eq!(decode_header_oid(&encode_header_oid(oid)), Some(oid));
        assert_eq!(decode_header_oid(b"short"), None);
    }
}
