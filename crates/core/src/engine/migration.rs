//! Crash-safe online ownership migration (DESIGN.md §10).
//!
//! A migration re-homes the page-number range `[lo, hi)` from this site
//! (the *source*) to a destination peer while the cluster serves
//! traffic. The supervisor drives it in two control-plane steps —
//! [`Message::MigratePrepare`] then [`Message::MigrateTransfer`] — and
//! every step is fenced by WAL records so a crash at any point resolves
//! to exactly one authoritative owner:
//!
//! 1. **Prepare** — freeze new work on the range (remote requests shed
//!    with `Busy`, owner-local accesses queued), wait for in-flight
//!    work on it to drain (the `MigrationCheck` timer, one
//!    `busy_retry_hint` per tick), force a [`LogPayload::MigrateBegin`]
//!    record, answer [`Message::MigratePrepared`].
//! 2. **Transfer** — ship the range's page images and copy-table
//!    entries in one [`Message::TransferChunk`]. The destination stages
//!    them (not yet installed), forces [`LogPayload::MigrateIn`] +
//!    [`LogPayload::MigrateInEnd`], and acks.
//! 3. **Commit** — on [`Message::TransferAck`] the source forces
//!    [`LogPayload::MigrateCommit`]: the point of no return. The layout
//!    version bumps, the range leaves the copy table and buffer, and
//!    stale requests are refused with [`Message::WrongOwner`] carrying
//!    the new layout (clients re-route and retry; PR 4 backoff absorbs
//!    the race with the destination's activation).
//! 4. **Activate / Cleanup** — the destination installs the staged
//!    pages, adopts the layout, logs [`LogPayload::MigrateLand`] and
//!    checkpoints (the landed images ride the checkpoint base), then
//!    acks; the source logs a lazy [`LogPayload::MigrateEnd`], drops
//!    its images, and reports [`Message::MigrateDone`].
//!
//! Crash matrix (resolved by [`PeerServer::recover_migrations`]):
//!
//! | crash at            | durable state            | resolution          |
//! |---------------------|--------------------------|---------------------|
//! | source, pre-commit  | `MigrateBegin` only      | roll back: append `MigrateRollback`, stay authoritative, tell the destination to discard |
//! | source, post-commit | `MigrateCommit`, no `End`| roll forward: the moved range's residue in the volume re-offers `MigrateActivate` |
//! | dest, staged        | `MigrateInEnd`, no `Land`| in doubt: re-stage from own log, ask the source via `QueryMigration` |
//! | dest, landed        | `MigrateLand`+checkpoint | done: duplicate activates re-ack idempotently |
//!
//! [`Message::QueryMigration`] is answered *statelessly* from the
//! directory (`layout reached` ∧ `range no longer ours` ⇔ committed),
//! so the answer survives checkpoint truncation of the source's log.

use super::{DiskCont, PeerServer, TimerKind};
use crate::msg::{CbTarget, DiskOp, Input, Message, Output, ReqId};
use pscc_common::{LockableId, PageId, SimTime, SiteId, Stage, TxnId};
use pscc_storage::SlottedPage;
use pscc_wal::{LogPayload, LogRecord};

/// The transaction id migration WAL records are stamped with. `seq` is
/// `u64::MAX`, which the per-site allocator never reaches, so the
/// sentinel can never collide with a real transaction.
pub(crate) fn migration_txn(site: SiteId) -> TxnId {
    TxnId::new(site, u64::MAX)
}

/// Where a site stands in an outbound migration (a test/metrics probe;
/// the control plane mirrors it as `MigrationObs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    /// No outbound migration in flight.
    Idle,
    /// Range frozen; waiting for in-flight work on it to drain and the
    /// `MigrateBegin` record to force.
    Preparing,
    /// `MigratePrepared` sent; awaiting the supervisor's transfer step.
    Prepared,
    /// `TransferChunk` shipped; awaiting the destination's durable ack.
    Transferring,
    /// `MigrateCommit` is durable (point of no return); awaiting the
    /// destination's activation.
    Committing,
}

/// Book-keeping for an in-progress outbound migration at the source.
#[derive(Debug)]
pub(crate) struct MigrationState {
    /// The supervisor (step replies go here).
    pub requester: SiteId,
    /// Correlates the current step's reply.
    pub req: ReqId,
    pub lo: u32,
    pub hi: u32,
    pub to: SiteId,
    pub phase: MigrationPhase,
    /// When the range froze (the migration-pause histogram's start).
    pub started: SimTime,
    /// The layout version the commit will publish.
    pub layout: u64,
    /// Owner-local work that arrived for the frozen range; re-driven
    /// after commit (it re-routes) or rollback (it proceeds here).
    pub queued: Vec<Input>,
}

/// A staged (not yet installed) inbound migration at the destination.
#[derive(Debug)]
pub(crate) struct MigrationInbound {
    pub from: SiteId,
    pub lo: u32,
    pub hi: u32,
    pub layout: u64,
    pub pages: Vec<(PageId, SlottedPage)>,
    pub copies: Vec<(PageId, SiteId, u64)>,
    /// Whether the staging force completed and `TransferAck` went out.
    pub acked: bool,
}

impl PeerServer {
    // ------------------------------------------------------------------
    // Probes
    // ------------------------------------------------------------------

    /// The layout version this site routes by.
    pub fn layout_version(&self) -> u64 {
        self.owners.version()
    }

    /// Where this site stands in an outbound migration.
    pub fn migration_phase(&self) -> MigrationPhase {
        self.migrating
            .as_ref()
            .map_or(MigrationPhase::Idle, |m| m.phase)
    }

    /// Whether an inbound migration is staged but not yet landed.
    pub fn migration_inbound(&self) -> bool {
        self.migrating_in.is_some()
    }

    // ------------------------------------------------------------------
    // Source: prepare
    // ------------------------------------------------------------------

    /// Handles [`Message::MigratePrepare`]: freeze the range and start
    /// draining in-flight work on it.
    pub(crate) fn server_migrate_prepare(
        &mut self,
        from: SiteId,
        req: ReqId,
        lo: u32,
        hi: u32,
        to: SiteId,
    ) {
        if let Some(m) = &mut self.migrating {
            if m.lo == lo && m.hi == hi && m.to == to {
                // Duplicate (supervisor retry): re-point the reply and
                // re-answer if the prepare already finished.
                m.requester = from;
                m.req = req;
                if m.phase != MigrationPhase::Preparing {
                    self.send(from, Message::MigratePrepared { req });
                }
            }
            // A different in-flight migration: drop the request; the
            // supervisor runs one move at a time and will retry.
            return;
        }
        let probe = PageId::new(
            pscc_common::FileId::new(pscc_common::VolId(self.site.0), 0),
            lo,
        );
        if self.owners.owner_of(probe) != Some(self.site) {
            // The range already moved (a committed migration this retry
            // crossed): the prepare is trivially satisfied.
            self.send(from, Message::MigratePrepared { req });
            return;
        }
        let layout = self.owners.version() + 1;
        self.migrating = Some(MigrationState {
            requester: from,
            req,
            lo,
            hi,
            to,
            phase: MigrationPhase::Preparing,
            started: self.now,
            layout,
            queued: Vec::new(),
        });
        self.stats.migrations_started += 1;
        self.obs.record(pscc_obs::EventKind::MigrationBegin {
            site: self.site,
            lo,
            hi,
            to,
        });
        // The range may already be trivially quiescent.
        self.migration_check_fired();
    }

    fn arm_migration_check(&mut self) {
        let timer = self.fresh_timer();
        self.timers.insert(timer, TimerKind::MigrationCheck);
        self.out.push(Output::ArmTimer {
            timer,
            delay: self.cfg.busy_retry_hint,
        });
    }

    /// Page ids on this volume whose page number falls in `[lo, hi)`.
    fn range_pages(&self, lo: u32, hi: u32) -> Vec<PageId> {
        self.volume
            .all_pages()
            .map(|(p, _)| *p)
            .filter(|p| (lo..hi).contains(&p.page))
            .collect()
    }

    /// Nothing in flight touches the frozen range: no lock state on its
    /// pages or their objects, no callback/deescalation operation, no
    /// data-bearing disk continuation.
    fn migration_range_quiescent(&self, lo: u32, hi: u32) -> bool {
        let in_range = |p: &PageId| (lo..hi).contains(&p.page);
        for page in self.range_pages(lo, hi) {
            if !self.locks.holders(LockableId::Page(page)).is_empty()
                || !self.locks.object_holders_on_page(page).is_empty()
                || !self.locks.adaptive_holders(page).is_empty()
                || !self.locks.waiters_on_page(page).is_empty()
            {
                return false;
            }
        }
        let cb_touches = |t: &CbTarget| match t {
            CbTarget::Object(oid) => in_range(&oid.page),
            CbTarget::PageAll(p) => in_range(p),
            // Whole-file/volume callbacks are rare; be conservative.
            CbTarget::File(_) | CbTarget::Volume(_) => true,
        };
        if self.cb_ops.values().any(|op| cb_touches(&op.target)) {
            return false;
        }
        if self.de_ops.values().any(|op| in_range(&op.page)) {
            return false;
        }
        !self.disk_conts.values().any(|c| match c {
            DiskCont::Ship { page, .. } => in_range(page),
            // Commit application may touch any page; wait it out.
            DiskCont::CommitApply(_) | DiskCont::CommitForced(_) => true,
            _ => false,
        })
    }

    /// The periodic `MigrationCheck` tick: force the begin record once
    /// the range is quiescent, otherwise look again next tick.
    pub(crate) fn migration_check_fired(&mut self) {
        let Some(m) = &self.migrating else {
            return; // migration aborted while the timer was in flight
        };
        if m.phase != MigrationPhase::Preparing {
            return; // stale fire
        }
        let (lo, hi, to) = (m.lo, m.hi, m.to);
        if !self.migration_range_quiescent(lo, hi) {
            self.arm_migration_check();
            return;
        }
        self.log.append(LogRecord {
            txn: migration_txn(self.site),
            payload: LogPayload::MigrateBegin { lo, hi, to },
        });
        if self.log.force() {
            self.disk(DiskOp::WriteLog, DiskCont::MigratePrepareForced);
        } else {
            self.migrate_prepare_forced();
        }
    }

    /// The `MigrateBegin` force is durable: report `MigratePrepared`.
    pub(crate) fn migrate_prepare_forced(&mut self) {
        let Some(m) = &mut self.migrating else {
            return; // aborted while the force was in flight
        };
        if m.phase != MigrationPhase::Preparing {
            return;
        }
        m.phase = MigrationPhase::Prepared;
        let (requester, req) = (m.requester, m.req);
        self.send(requester, Message::MigratePrepared { req });
    }

    // ------------------------------------------------------------------
    // Source: transfer and commit
    // ------------------------------------------------------------------

    /// Handles [`Message::MigrateTransfer`]: ship the prepared range.
    pub(crate) fn server_migrate_transfer(&mut self, from: SiteId, req: ReqId) {
        let Some(m) = &mut self.migrating else {
            // No migration in flight: a retry that crossed completion
            // (or crash roll-forward). The layout already tells the
            // supervisor everything it needs.
            let layout = self.owners.version();
            self.send(from, Message::MigrateDone { req, layout });
            return;
        };
        m.requester = from;
        m.req = req;
        match m.phase {
            MigrationPhase::Preparing => (), // not ready; supervisor retries
            MigrationPhase::Prepared | MigrationPhase::Transferring => {
                // First transfer, or a retry re-shipping a possibly
                // lost chunk — the destination stages idempotently.
                m.phase = MigrationPhase::Transferring;
                let (lo, hi, to, layout) = (m.lo, m.hi, m.to, m.layout);
                let pages: Vec<(PageId, SlottedPage)> = self
                    .volume
                    .all_pages()
                    .filter(|(p, _)| (lo..hi).contains(&p.page))
                    .map(|(p, img)| (*p, img.clone()))
                    .collect();
                let mut copies: Vec<(PageId, SiteId, u64)> = Vec::new();
                for (p, _) in &pages {
                    for (client, ship_seq) in self.copy_table.entries(*p) {
                        copies.push((*p, client, ship_seq));
                    }
                }
                let chunk = Message::TransferChunk {
                    lo,
                    hi,
                    layout,
                    pages,
                    copies,
                };
                self.stats.transfer_bytes += chunk.wire_size() as u64;
                self.send(to, chunk);
            }
            MigrationPhase::Committing => {
                // Already past the commit point: the chunk may have
                // landed or been lost — re-offer both halves; each is
                // idempotent at the destination.
                let (lo, hi, to, layout) = (m.lo, m.hi, m.to, m.layout);
                self.send(to, Message::MigrateActivate { lo, hi, layout });
            }
            MigrationPhase::Idle => unreachable!("Idle is never stored"),
        }
    }

    /// Handles [`Message::TransferAck`]: the destination staged the
    /// range durably — force the commit record (point of no return).
    pub(crate) fn server_transfer_ack(&mut self, from: SiteId, lo: u32, hi: u32) {
        let Some(m) = &mut self.migrating else {
            // Stale ack: the migration it answers is gone (rolled back,
            // or fully retired). The destination staged a chunk it will
            // never hear an activate for — re-resolve it statelessly
            // from the current directory, exactly as `QueryMigration`
            // would, so a chunk that raced past its own rollback cannot
            // linger staged forever.
            let probe = PageId::new(
                pscc_common::FileId::new(pscc_common::VolId(self.site.0), 0),
                lo,
            );
            let committed = self.owners.owner_of(probe) == Some(from);
            let layout = self.owners.version();
            self.send(
                from,
                Message::MigrationResolved {
                    lo,
                    hi,
                    layout,
                    committed,
                },
            );
            return;
        };
        if m.lo != lo || m.hi != hi || m.to != from {
            return;
        }
        match m.phase {
            MigrationPhase::Transferring => {
                m.phase = MigrationPhase::Committing;
                let (to, layout) = (m.to, m.layout);
                self.log.append(LogRecord {
                    txn: migration_txn(self.site),
                    payload: LogPayload::MigrateCommit { lo, hi, to, layout },
                });
                if self.log.force() {
                    self.disk(DiskOp::WriteLog, DiskCont::MigrateCommitForced);
                } else {
                    self.migrate_commit_forced();
                }
            }
            MigrationPhase::Committing => {
                // Duplicate ack racing the activate: re-offer it.
                let layout = m.layout;
                self.send(from, Message::MigrateActivate { lo, hi, layout });
            }
            _ => (),
        }
    }

    /// The `MigrateCommit` force is durable: publish the new layout,
    /// fence the range here, and offer activation to the destination.
    pub(crate) fn migrate_commit_forced(&mut self) {
        let Some(m) = &mut self.migrating else {
            return;
        };
        if m.phase != MigrationPhase::Committing {
            return;
        }
        let (lo, hi, to, layout, started) = (m.lo, m.hi, m.to, m.layout, m.started);
        self.owners.apply_move(lo, hi, to, layout);
        self.log.set_layout(self.owners.to_image());
        self.copy_table.drop_range(lo, hi);
        self.residency.evict_where(|p| (lo..hi).contains(&p.page));
        if self
            .overflow_page
            .is_some_and(|p| (lo..hi).contains(&p.page))
        {
            self.overflow_page = None;
        }
        self.stats.migrations_committed += 1;
        self.obs.record(pscc_obs::EventKind::MigrationCommitted {
            site: self.site,
            lo,
            hi,
            to,
            layout,
        });
        let pause = self.now.since(started);
        self.obs.migration_pause.record(pause);
        self.obs
            .stage_sample(migration_txn(self.site), Stage::MigrationPause, pause);
        self.migrated_out.push((lo, hi, to, layout));
        self.send(to, Message::MigrateActivate { lo, hi, layout });
    }

    /// Handles [`Message::MigrateActivated`]: the destination serves
    /// the range — discard our images, log the (lazy) end record, and
    /// report `MigrateDone`.
    pub(crate) fn server_migrate_activated(&mut self, from: SiteId, lo: u32, hi: u32, layout: u64) {
        let Some(idx) = self
            .migrated_out
            .iter()
            .position(|&(l, h, to, v)| l == lo && h == hi && to == from && v == layout)
        else {
            return; // stale duplicate
        };
        self.migrated_out.remove(idx);
        self.log.append(LogRecord {
            txn: migration_txn(self.site),
            payload: LogPayload::MigrateEnd { lo, hi },
        });
        for p in self.range_pages(lo, hi) {
            self.volume.remove_page(p);
        }
        if let Some(m) = &self.migrating {
            if m.lo == lo && m.hi == hi {
                let (requester, req) = (m.requester, m.req);
                let queued = self.migrating.take().map(|m| m.queued).unwrap_or_default();
                self.send(requester, Message::MigrateDone { req, layout });
                // Frozen-range work re-routes through the new layout.
                for w in queued {
                    self.internal.push_back(w);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Source: abort
    // ------------------------------------------------------------------

    /// Handles [`Message::MigrateAbortReq`]: roll back if the commit
    /// record is not yet durable, otherwise complete forward.
    pub(crate) fn server_migrate_abort(&mut self, from: SiteId, req: ReqId) {
        match &self.migrating {
            None => {
                // Nothing in flight; report which way the last move (if
                // any) resolved so the supervisor's view converges.
                let committed = !self.migrated_out.is_empty();
                self.send(from, Message::MigrateAborted { req, committed });
            }
            Some(m) if m.phase == MigrationPhase::Committing => {
                // Past the point of no return: the abort loses.
                self.send(
                    from,
                    Message::MigrateAborted {
                        req,
                        committed: true,
                    },
                );
            }
            Some(_) => {
                let m = self.migrating.take().expect("checked above");
                self.log.append(LogRecord {
                    txn: migration_txn(self.site),
                    payload: LogPayload::MigrateRollback { lo: m.lo, hi: m.hi },
                });
                self.stats.migrations_aborted += 1;
                self.obs.record(pscc_obs::EventKind::MigrationAborted {
                    site: self.site,
                    lo: m.lo,
                    hi: m.hi,
                });
                // The destination may hold a staged copy: discard it.
                self.send(
                    m.to,
                    Message::MigrationResolved {
                        lo: m.lo,
                        hi: m.hi,
                        layout: m.layout,
                        committed: false,
                    },
                );
                self.send(
                    from,
                    Message::MigrateAborted {
                        req,
                        committed: false,
                    },
                );
                for w in m.queued {
                    self.internal.push_back(w);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Destination
    // ------------------------------------------------------------------

    /// Handles [`Message::TransferChunk`]: stage the range durably (own
    /// log), then ack. Nothing is installed until activation.
    pub(crate) fn server_transfer_chunk(
        &mut self,
        from: SiteId,
        lo: u32,
        hi: u32,
        layout: u64,
        pages: Vec<(PageId, SlottedPage)>,
        copies: Vec<(PageId, SiteId, u64)>,
    ) {
        if self.owners.version() >= layout {
            // Already landed (duplicate chunk after a lost ack).
            self.send(from, Message::TransferAck { lo, hi });
            return;
        }
        if let Some(inb) = &self.migrating_in {
            if inb.lo == lo && inb.hi == hi && inb.layout == layout {
                if inb.acked {
                    self.send(from, Message::TransferAck { lo, hi });
                }
                return; // staging force still in flight
            }
            // A different staged migration was superseded (its source
            // rolled back and a new move started): replace it.
            self.migrating_in = None;
        }
        for (page, image) in &pages {
            self.log.append(LogRecord {
                txn: migration_txn(self.site),
                payload: LogPayload::MigrateIn {
                    from,
                    page: *page,
                    image: image.clone(),
                },
            });
        }
        let n = pages.len() as u32;
        self.log.append(LogRecord {
            txn: migration_txn(self.site),
            payload: LogPayload::MigrateInEnd {
                from,
                lo,
                hi,
                layout,
                n,
            },
        });
        self.migrating_in = Some(MigrationInbound {
            from,
            lo,
            hi,
            layout,
            pages,
            copies,
            acked: false,
        });
        if self.log.force() {
            self.disk(DiskOp::WriteLog, DiskCont::MigrateInForced);
        } else {
            self.migrate_in_forced();
        }
    }

    /// The staging force is durable: ack the transfer.
    pub(crate) fn migrate_in_forced(&mut self) {
        let Some(inb) = &mut self.migrating_in else {
            return; // discarded while the force was in flight
        };
        if inb.acked {
            return;
        }
        inb.acked = true;
        let (from, lo, hi) = (inb.from, inb.lo, inb.hi);
        self.send(from, Message::TransferAck { lo, hi });
    }

    /// Handles [`Message::MigrateActivate`]: install the staged range
    /// and start serving it.
    pub(crate) fn server_migrate_activate(&mut self, from: SiteId, lo: u32, hi: u32, layout: u64) {
        if self.owners.version() >= layout {
            // Already landed: re-ack (the source's cleanup is pending).
            self.send(from, Message::MigrateActivated { lo, hi, layout });
            return;
        }
        let staged = matches!(
            &self.migrating_in,
            Some(inb) if inb.lo == lo && inb.hi == hi && inb.layout == layout
        );
        if !staged {
            // The staged state is gone (crash before the staging force,
            // or the chunk never arrived): wait — the supervisor's
            // transfer retry re-ships the chunk.
            return;
        }
        self.migrate_land();
    }

    /// Installs the staged inbound migration: pages, copy-table
    /// entries, layout, land record, checkpoint (the landed images ride
    /// the checkpoint base so redo never needs the `MigrateIn`
    /// records), and the activation ack.
    pub(crate) fn migrate_land(&mut self) {
        let Some(inb) = self.migrating_in.take() else {
            return;
        };
        for (page, image) in inb.pages {
            self.volume.install_page(page, image);
        }
        for (page, client, ship_seq) in inb.copies {
            self.copy_table.restore(page, client, ship_seq);
        }
        self.owners
            .apply_move(inb.lo, inb.hi, self.site, inb.layout);
        self.log.set_layout(self.owners.to_image());
        self.log.append(LogRecord {
            txn: migration_txn(self.site),
            payload: LogPayload::MigrateLand {
                from: inb.from,
                lo: inb.lo,
                hi: inb.hi,
                layout: inb.layout,
            },
        });
        self.log.checkpoint(self.volume.clone());
        self.stats.disk_writes += 1;
        self.obs.record(pscc_obs::EventKind::MigrationLanded {
            site: self.site,
            from: inb.from,
            lo: inb.lo,
            hi: inb.hi,
            layout: inb.layout,
        });
        self.send(
            inb.from,
            Message::MigrateActivated {
                lo: inb.lo,
                hi: inb.hi,
                layout: inb.layout,
            },
        );
    }

    /// Handles [`Message::MigrationResolved`]: a restarted destination's
    /// in-doubt query came back, or the source rolled back unsolicited.
    pub(crate) fn server_migration_resolved(
        &mut self,
        from: SiteId,
        lo: u32,
        hi: u32,
        layout: u64,
        committed: bool,
    ) {
        let matches_staged = matches!(
            &self.migrating_in,
            Some(inb) if inb.from == from && inb.lo == lo && inb.hi == hi
        );
        if !matches_staged {
            return;
        }
        if committed {
            // Land under the queried layout (the staging may carry the
            // same version; `apply_move` needs it newer than ours).
            if let Some(inb) = &mut self.migrating_in {
                inb.layout = layout.max(inb.layout);
            }
            self.migrate_land();
        } else {
            self.migrating_in = None;
        }
    }

    /// Handles [`Message::QueryMigration`] at the source — statelessly,
    /// from the directory, so the answer survives log truncation: the
    /// move committed iff the layout reached `layout` and the range is
    /// no longer ours.
    pub(crate) fn server_query_migration(&mut self, from: SiteId, lo: u32, hi: u32, layout: u64) {
        let probe = PageId::new(
            pscc_common::FileId::new(pscc_common::VolId(self.site.0), 0),
            lo,
        );
        let committed =
            self.owners.version() >= layout && self.owners.owner_of(probe) != Some(self.site);
        self.send(
            from,
            Message::MigrationResolved {
                lo,
                hi,
                layout,
                committed,
            },
        );
    }

    // ------------------------------------------------------------------
    // Frozen-range gate (owner-local traffic)
    // ------------------------------------------------------------------

    /// Queues owner-local work for a page in a frozen (migrating) range,
    /// returning `true` if queued. Remote traffic is shed with `Busy`
    /// instead (clients already know how to back off); local work has
    /// no one to shed to, so it parks until the move commits (then
    /// re-routes) or rolls back (then proceeds).
    pub(crate) fn queue_if_migrating(&mut self, page: PageId, work: Input) -> bool {
        match &mut self.migrating {
            Some(m) if (m.lo..m.hi).contains(&page.page) => {
                m.queued.push(work);
                true
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Restart resolution
    // ------------------------------------------------------------------

    /// Resolves in-doubt migrations after restart recovery, from the
    /// durable log image and the volume's residue. Called by
    /// [`PeerServer::recover`] after the directory is rebuilt; returns
    /// nothing — resolution messages ride `self.internal`/`self.out`.
    pub(crate) fn recover_migrations(&mut self, records: &[(pscc_wal::Lsn, LogRecord)]) {
        // Source side: a `MigrateBegin` with no later outcome rolls
        // back (presumed abort — the commit record is the only thing
        // that can move ownership away).
        let mut open: Vec<(u32, u32, SiteId)> = Vec::new();
        // Destination side: staged images per source, and the in-doubt
        // `MigrateInEnd` they belong to.
        let mut staging: std::collections::HashMap<SiteId, Vec<(PageId, SlottedPage)>> =
            std::collections::HashMap::new();
        let mut in_doubt: Option<MigrationInbound> = None;
        for (_, rec) in records {
            match &rec.payload {
                LogPayload::MigrateBegin { lo, hi, to } => open.push((*lo, *hi, *to)),
                LogPayload::MigrateCommit { lo, hi, .. }
                | LogPayload::MigrateRollback { lo, hi } => {
                    open.retain(|&(l, h, _)| !(l == *lo && h == *hi));
                }
                LogPayload::MigrateIn { from, page, image } => {
                    staging
                        .entry(*from)
                        .or_default()
                        .push((*page, image.clone()));
                }
                LogPayload::MigrateInEnd {
                    from,
                    lo,
                    hi,
                    layout,
                    ..
                } => {
                    in_doubt = Some(MigrationInbound {
                        from: *from,
                        lo: *lo,
                        hi: *hi,
                        layout: *layout,
                        pages: staging.remove(from).unwrap_or_default(),
                        copies: Vec::new(),
                        acked: true,
                    });
                }
                LogPayload::MigrateLand { lo, hi, .. }
                    if in_doubt
                        .as_ref()
                        .is_some_and(|inb| inb.lo == *lo && inb.hi == *hi) =>
                {
                    in_doubt = None;
                }
                _ => (),
            }
        }
        for (lo, hi, to) in open {
            self.log.append(LogRecord {
                txn: migration_txn(self.site),
                payload: LogPayload::MigrateRollback { lo, hi },
            });
            self.stats.migrations_aborted += 1;
            self.obs.record(pscc_obs::EventKind::MigrationAborted {
                site: self.site,
                lo,
                hi,
            });
            // The prospective layout at staging time was one past the
            // version the rollback preserves; the destination matches
            // its staged copy by range and source, not version.
            let layout = self.owners.version() + 1;
            self.send(
                to,
                Message::MigrationResolved {
                    lo,
                    hi,
                    layout,
                    committed: false,
                },
            );
        }
        if let Some(inb) = in_doubt {
            let (from, lo, hi, layout) = (inb.from, inb.lo, inb.hi, inb.layout);
            self.migrating_in = Some(inb);
            self.send(from, Message::QueryMigration { lo, hi, layout });
        }
        // Roll forward: pages still on the volume for ranges the
        // directory says moved away are a committed migration whose
        // cleanup never ran — re-offer activation (idempotent at the
        // destination) and let `MigrateActivated` finish the cleanup.
        // Scanning the volume instead of the log survives checkpoint
        // truncation of the `MigrateCommit` record.
        let mut residue: Vec<(u32, u32, SiteId)> = Vec::new();
        for (p, _) in self.volume.all_pages() {
            if let Some((lo, hi, owner)) = self.owners.locate(*p) {
                if owner != self.site && !residue.contains(&(lo, hi, owner)) {
                    residue.push((lo, hi, owner));
                }
            }
        }
        let layout = self.owners.version();
        for (lo, hi, to) in residue {
            self.migrated_out.push((lo, hi, to, layout));
            self.send(to, Message::MigrateActivate { lo, hi, layout });
        }
    }
}
