//! The lock-free edge tier (DESIGN.md §11).
//!
//! Files assigned a non-`Strict` [`ConsistencyTier`] may be read at any
//! site from a local, lock-free page cache instead of the serializable
//! fetch/callback path. The bargain is explicit and bounded: an edge
//! read may return stale data, but never older than the tier's bound —
//! `ttl` for `BoundedStale`, `fallback_ttl` for `WatchBased` (and a
//! watch-based copy is usually far fresher, because the owner streams
//! invalidations to subscribed edges on every commit).
//!
//! Staleness is judged **conservatively from send times on the edge's
//! own clock**: a copy counts as fresh-as-of the instant its
//! `EdgeFetch` departed (the owner read its state strictly later), and
//! a watch as validated-as-of the send instant of the last `EdgeRenew`
//! whose ack arrived (the owner was still streaming to us at that
//! point, and per-lane FIFO means every invalidation published before
//! the ack was delivered before it). No cross-site clock comparison is
//! ever needed.
//!
//! Failure handling is lease-shaped at both ends. A dead edge site
//! stops renewing, so the owner reaps its subscription at the next
//! publish (or immediately via `declare_site_dead`). A dead or
//! restarted owner is detected by the epoch carried in every
//! `EdgePage`/`EdgeRenewOk` and by the `resubscribed` flag on renew
//! acks: either signal means invalidations may have been lost, and the
//! edge purges the affected copies instead of trusting them. A severed
//! watch simply freezes `watch_validated`, so the copies age out
//! `fallback_ttl` later and reads degrade to fetch-through.
//!
//! With no tiers configured (the default), every path in this module is
//! behind an empty-map check and the engine is byte-identical to the
//! strict build.

use super::{DiskCont, PeerServer, TimerKind};
use crate::msg::{DiskOp, Message, Output, ReqId};
use pscc_common::{ConsistencyTier, Oid, PageId, SimDuration, SimTime, SiteId, TxnId};
use pscc_storage::SlottedPage;
use std::collections::BTreeMap;

impl PeerServer {
    // ------------------------------------------------------------------
    // Edge role: the lock-free read path
    // ------------------------------------------------------------------

    /// Tries to serve `txn`'s read of `oid` from the edge tier. Returns
    /// `true` when the edge path took the read — served it from a valid
    /// local copy, or parked it behind an `EdgeFetch` — and `false`
    /// when the caller must run the normal serializable path (`Strict`
    /// file, self-owned page, or no tiers configured at all).
    pub(crate) fn edge_try_read(&mut self, txn: TxnId, oid: Oid) -> bool {
        if self.cfg.edge_tiers.is_empty() {
            return false;
        }
        let tier = self.cfg.tier_of(oid.page.file.file);
        if !tier.edge_cacheable() {
            return false;
        }
        let Some(owner) = self.owners.owner_of(oid.page) else {
            return false;
        };
        if owner == self.site {
            // The owner's own reads stay on the serializable path: they
            // are already local and must see committed truth.
            return false;
        }
        if self.dead_sites.contains(&owner) {
            // A declared-dead owner answers no fetches; the strict path
            // owns the failure story until it is heard from again
            // (rejoin fencing and all).
            return false;
        }
        if self.edge_serve(txn, oid, owner, tier) {
            return true;
        }
        // Miss (uncached, invalidated, or aged past the bound): park the
        // read and fetch through, deduplicating per page.
        self.stats.edge_misses += 1;
        self.obs
            .record(pscc_obs::EventKind::EdgeMiss { page: oid.page });
        self.edge_waiting
            .entry(oid.page)
            .or_default()
            .push((txn, oid));
        if !self.edge_fetching.contains_key(&oid.page) {
            let req = self.fresh_req();
            self.edge_fetching.insert(oid.page, (req, self.now));
            let watch = tier.watch_based();
            if watch {
                self.edge_ensure_watch(owner);
            }
            self.send(
                owner,
                Message::EdgeFetch {
                    req,
                    page: oid.page,
                    watch,
                    lease: self.edge_watch_lease(),
                },
            );
        }
        true
    }

    /// Serves `oid` from the local edge cache if the copy is valid under
    /// `tier` right now. Returns whether it was served.
    fn edge_serve(&mut self, txn: TxnId, oid: Oid, owner: SiteId, tier: ConsistencyTier) -> bool {
        let validated = self
            .edge_watch
            .get(&owner)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let Some(entry) = self.edge_cache.peek(oid.page) else {
            return false;
        };
        if !pscc_edge::entry_valid(tier, entry, validated, self.now) {
            return false;
        }
        // The copy's freshness anchor: fetch send time, advanced by the
        // watch for watch-based tiers.
        let fresh_as_of = match tier {
            ConsistencyTier::WatchBased { .. } => entry.fetched_at.max(validated),
            _ => entry.fetched_at,
        };
        let age = self.now.since(fresh_as_of);
        let bound = tier.bound().unwrap_or(SimDuration::ZERO);
        let version = entry.version;
        let bytes = self.edge_cache.read_object(oid);
        self.stats.edge_hits += 1;
        self.obs.edge_staleness.record(age);
        self.obs.record(pscc_obs::EventKind::EdgeRead {
            page: oid.page,
            version,
            age_us: age.as_micros(),
            bound_us: bound.as_micros(),
        });
        self.complete_op(txn, bytes);
        true
    }

    /// The owner's `EdgePage` reply: install the image (stamped with the
    /// *send* time of our fetch) and serve every read parked on the
    /// page. A reply that arrives too late — delayed past the tier's
    /// bound, e.g. across a partition — is not served; its waiters fall
    /// back to the serializable path instead.
    pub(crate) fn edge_page(
        &mut self,
        from: SiteId,
        req: ReqId,
        page: PageId,
        version: u64,
        epoch: u64,
        image: SlottedPage,
    ) {
        self.edge_note_owner_epoch(from, epoch);
        match self.edge_fetching.get(&page) {
            Some((r, _)) if *r == req => {}
            _ => return, // superseded or cancelled fetch: drop
        }
        let (_, sent) = self.edge_fetching.remove(&page).expect("checked above");
        let tier = self.cfg.tier_of(page.file.file);
        // `version == 0` is the owner's can't-serve sentinel (page not in
        // its volume, e.g. mid-migration); an un-cacheable tier means a
        // `SetTier` roll landed while the fetch was in flight.
        if version > 0 && tier.edge_cacheable() {
            self.edge_cache.install(page, image, version, sent);
        }
        let waiters = self.edge_waiting.remove(&page).unwrap_or_default();
        for (txn, oid) in waiters {
            if !self.txn_is_running(txn) {
                continue;
            }
            if !self.edge_serve(txn, oid, from, tier) {
                // Degrade to fetch-through: the strict path serves this
                // read with locks and full consistency.
                self.client_access(txn, oid, false, None);
            }
        }
    }

    /// The owner's invalidation stream: strike every cached copy older
    /// than the committed version. Uncached pages are skipped — on a
    /// FIFO lane any copy fetched after this message was sent already
    /// reflects the commit.
    pub(crate) fn edge_invalidate(&mut self, pages: Vec<(PageId, u64)>) {
        for (page, version) in pages {
            if self.edge_cache.invalidate(page, version) {
                self.stats.edge_invalidations += 1;
            }
        }
    }

    /// Ensures watch state and the periodic renew timer exist for
    /// `owner`.
    pub(crate) fn edge_ensure_watch(&mut self, owner: SiteId) {
        if self.edge_watch.contains_key(&owner) {
            return;
        }
        self.edge_watch.insert(owner, SimTime::ZERO);
        self.edge_arm_renew(owner);
    }

    fn edge_arm_renew(&mut self, owner: SiteId) {
        let timer = self.fresh_timer();
        self.timers.insert(timer, TimerKind::EdgeRenew { owner });
        self.edge_renew_timer.insert(owner, timer);
        let lease = self.edge_watch_lease();
        self.out.push(Output::ArmTimer {
            timer,
            delay: SimDuration::from_micros((lease.as_micros() / 2).max(1)),
        });
    }

    /// The subscription lease the edge asks owners for: the smallest
    /// watch-based fallback TTL. Renews go out at half this interval,
    /// so a healthy lane keeps the owner's lease continuously covered.
    fn edge_watch_lease(&self) -> SimDuration {
        self.cfg
            .edge_tiers
            .iter()
            .filter_map(|t| match t.tier {
                ConsistencyTier::WatchBased { fallback_ttl } => Some(fallback_ttl),
                _ => None,
            })
            .min()
            .unwrap_or(SimDuration::from_millis(100))
    }

    /// File numbers under a watch-based tier, sorted (the renew's watch
    /// list).
    fn edge_watch_files(&self) -> Vec<u32> {
        let mut files: Vec<u32> = self
            .cfg
            .edge_tiers
            .iter()
            .filter(|t| t.tier.watch_based())
            .map(|t| t.file)
            .collect();
        files.sort_unstable();
        files.dedup();
        files
    }

    /// The periodic renew tick for `owner`: send a renew (recording its
    /// send time — the instant a future ack will validate the watch as
    /// of) and re-arm. A fire with no watch state left, or from a timer
    /// that has been superseded, is stale and arms nothing.
    pub(crate) fn edge_renew_fired(&mut self, timer: crate::msg::TimerId, owner: SiteId) {
        if self.edge_renew_timer.get(&owner) != Some(&timer) {
            return; // superseded (owner died and watch was recreated)
        }
        if !self.edge_watch.contains_key(&owner) {
            self.edge_renew_timer.remove(&owner);
            return;
        }
        let files = self.edge_watch_files();
        if files.is_empty() {
            // Every watch-based tier was rolled away: retire the watch.
            self.edge_watch.remove(&owner);
            self.edge_renew_timer.remove(&owner);
            return;
        }
        let req = self.fresh_req();
        self.edge_renews.insert(req, (owner, self.now));
        self.send(
            owner,
            Message::EdgeRenew {
                req,
                lease: self.edge_watch_lease(),
                files,
            },
        );
        self.edge_arm_renew(owner);
    }

    /// The owner acknowledged a renew: advance the watch's validation
    /// instant to the renew's send time — unless coverage lapsed
    /// (`resubscribed`) or the owner restarted (epoch bump), in which
    /// case the affected copies are purged first.
    pub(crate) fn edge_renew_ok(
        &mut self,
        from: SiteId,
        req: ReqId,
        epoch: u64,
        resubscribed: bool,
    ) {
        let Some((owner, sent)) = self.edge_renews.remove(&req) else {
            return;
        };
        debug_assert_eq!(owner, from, "renew ack from the wrong site");
        self.edge_note_owner_epoch(from, epoch);
        if resubscribed {
            self.edge_purge_watch_files(from, "watch coverage lapsed");
        }
        if let Some(v) = self.edge_watch.get_mut(&from) {
            *v = (*v).max(sent);
        }
    }

    /// Records the owner's epoch; a bump since last contact means it
    /// restarted and invalidations were lost — purge its watch-based
    /// copies. (`BoundedStale` copies are untouched: their validity
    /// rests on their own fetch time, not on the invalidation stream.)
    fn edge_note_owner_epoch(&mut self, owner: SiteId, epoch: u64) {
        match self.edge_owner_epoch.insert(owner, epoch) {
            Some(prev) if prev != epoch => {
                self.edge_purge_watch_files(owner, "owner epoch bump");
            }
            _ => {}
        }
    }

    /// Drops every watch-based cached copy owned by `owner` and resets
    /// the watch validation clock (new coverage starts from the next
    /// acked renew).
    fn edge_purge_watch_files(&mut self, owner: SiteId, _why: &str) {
        let files = self.edge_watch_files();
        let mut purged = 0usize;
        for page in self.edge_cache.pages() {
            if files.contains(&page.file.file) && self.owners.owner_of(page) == Some(owner) {
                self.edge_cache.remove(page);
                purged += 1;
            }
        }
        if let Some(v) = self.edge_watch.get_mut(&owner) {
            *v = SimTime::ZERO;
        }
        if purged > 0 {
            self.obs.record(pscc_obs::EventKind::EdgePurgedOwner {
                owner,
                pages: purged,
            });
        }
    }

    // ------------------------------------------------------------------
    // Owner role: serving fetches, watches, and publishing commits
    // ------------------------------------------------------------------

    /// An edge site wants a page image (lock-free; no admission slot, no
    /// credit, no locks). Optionally piggybacks a watch subscription for
    /// the page's file.
    pub(crate) fn server_edge_fetch(
        &mut self,
        from: SiteId,
        req: ReqId,
        page: PageId,
        watch: bool,
        lease: SimDuration,
    ) {
        if watch {
            self.edge_subs
                .merge(from, self.now, lease, [page.file.file]);
            self.obs.record(pscc_obs::EventKind::EdgeSubscribed {
                site: from,
                files: 1,
            });
        }
        if self.touch_resident(page, false) {
            self.server_edge_ship(req, from, page);
        } else {
            self.disk(
                DiskOp::ReadPage(page),
                DiskCont::EdgeShip {
                    req,
                    to: from,
                    page,
                },
            );
        }
    }

    /// Ships the current committed image to an edge site. A page this
    /// site cannot serve (not in its volume — unmapped or migrated away)
    /// is answered with the `version == 0` sentinel so the edge's parked
    /// readers degrade to the serializable path instead of hanging.
    pub(crate) fn server_edge_ship(&mut self, req: ReqId, to: SiteId, page: PageId) {
        let (version, image) = match self.volume.page(page) {
            Some(img) => {
                let v = self
                    .edge_versions
                    .get(&page)
                    .copied()
                    .unwrap_or_else(|| self.log.durable_lsn().0.max(1));
                (v, img.clone())
            }
            None => (0, SlottedPage::new(self.cfg.page_size)),
        };
        self.send(
            to,
            Message::EdgePage {
                req,
                page,
                version,
                epoch: self.epoch,
                image,
            },
        );
    }

    /// An explicit watch renew. The `resubscribed` flag in the ack tells
    /// the edge whether coverage was continuous.
    pub(crate) fn server_edge_renew(
        &mut self,
        from: SiteId,
        req: ReqId,
        lease: SimDuration,
        files: Vec<u32>,
    ) {
        let resubscribed = !self.edge_subs.is_live(from, self.now);
        let n = files.len();
        self.edge_subs.upsert(from, self.now, lease, files);
        self.obs.record(pscc_obs::EventKind::EdgeSubscribed {
            site: from,
            files: n,
        });
        self.send(
            from,
            Message::EdgeRenewOk {
                req,
                epoch: self.epoch,
                resubscribed,
            },
        );
    }

    /// Publishes a commit to the edge tier: records per-page versions
    /// (ground truth for later fetches and the auditor), reaps
    /// lease-expired subscriptions, and streams batched invalidations to
    /// the live subscribers of each touched file. Called from
    /// `commit_forced` with the committed pages; `version` is the WAL's
    /// durable LSN at that instant, which is monotone across restarts.
    pub(crate) fn edge_publish_commit(&mut self, pages: Vec<PageId>) {
        if self.cfg.edge_tiers.is_empty() {
            return;
        }
        let mut tiered: Vec<PageId> = pages
            .into_iter()
            .filter(|p| self.cfg.tier_of(p.file.file).edge_cacheable())
            .collect();
        tiered.sort_unstable();
        tiered.dedup();
        if tiered.is_empty() {
            return;
        }
        let version = self.log.durable_lsn().0.max(1);
        for site in self.edge_subs.reap_expired(self.now) {
            self.stats.edge_subs_reaped += 1;
            self.obs.record(pscc_obs::EventKind::EdgeSubReaped { site });
        }
        let mut per_sub: BTreeMap<SiteId, Vec<(PageId, u64)>> = BTreeMap::new();
        for page in &tiered {
            self.edge_versions.insert(*page, version);
            self.obs.record(pscc_obs::EventKind::EdgePageCommitted {
                page: *page,
                version,
            });
            for site in self.edge_subs.subscribers_of(page.file.file, self.now) {
                per_sub.entry(site).or_default().push((*page, version));
            }
        }
        for (site, batch) in per_sub {
            self.obs.record(pscc_obs::EventKind::EdgeInvalidated {
                to: site,
                pages: batch.len(),
            });
            self.send(site, Message::EdgeInvalidate { pages: batch });
        }
    }

    // ------------------------------------------------------------------
    // Online tier rolls (control plane)
    // ------------------------------------------------------------------

    /// Adopts `tier` for file number `file` — the reconciler's
    /// zero-downtime tier roll. Both roles adjust conservatively: the
    /// edge purges its copies of the file (they were judged under the
    /// old tier), the owner side just lets its published state stand
    /// (publishing consults the new tier from now on).
    pub(crate) fn handle_set_tier(
        &mut self,
        from: SiteId,
        req: ReqId,
        file: u32,
        tier: ConsistencyTier,
    ) {
        self.cfg.edge_tiers.retain(|t| t.file != file);
        if !matches!(tier, ConsistencyTier::Strict) {
            self.cfg
                .edge_tiers
                .push(pscc_common::EdgeTierSpec { file, tier });
        }
        self.edge_cache.purge_file(file);
        self.send(from, Message::SetTierOk { req });
    }

    // ------------------------------------------------------------------
    // Failure handling
    // ------------------------------------------------------------------

    /// Cleanup for a site declared dead, both roles. Owner role: drop
    /// its subscription so it stops attracting invalidation traffic
    /// (the satellite fix — previously only lease reaping collected
    /// it). Edge role: a dead *owner* orphans our watch and every copy
    /// it shipped; purge them and abort the reads parked on its pages —
    /// their fetches will never be answered.
    pub(crate) fn edge_site_dead(&mut self, dead: SiteId) {
        // Owner role.
        if self.edge_subs.drop_site(dead) {
            self.stats.edge_subs_reaped += 1;
            self.obs
                .record(pscc_obs::EventKind::EdgeSubReaped { site: dead });
        }

        // Edge role.
        self.edge_watch.remove(&dead);
        self.edge_renew_timer.remove(&dead);
        self.edge_owner_epoch.remove(&dead);
        self.edge_renews.retain(|_, (s, _)| *s != dead);
        let mut purged = 0usize;
        for page in self.edge_cache.pages() {
            if self.owners.owner_of(page) == Some(dead) {
                self.edge_cache.remove(page);
                purged += 1;
            }
        }
        if purged > 0 {
            self.obs.record(pscc_obs::EventKind::EdgePurgedOwner {
                owner: dead,
                pages: purged,
            });
        }
        let dead_pages: Vec<PageId> = self
            .edge_fetching
            .keys()
            .copied()
            .filter(|p| self.owners.owner_of(*p) == Some(dead))
            .collect();
        for page in dead_pages {
            self.edge_fetching.remove(&page);
            let waiters = self.edge_waiting.remove(&page).unwrap_or_default();
            for (txn, _) in waiters {
                if self.txn_is_running(txn) {
                    self.home_abort(txn, pscc_common::AbortReason::Internal);
                }
            }
        }
    }
}
