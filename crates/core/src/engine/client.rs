//! Client-role logic: object accesses through the local cache, fetches,
//! write-permission requests, adaptive write grants, callback threads,
//! deescalation handling, and cache eviction with purge notices.

use super::{CbCtx, CbKey, LockCont, PeerServer, ReqCont, TimerKind};
use crate::msg::{AppReply, CbId, CbTarget, DeId, Message, ReqId};
use pscc_common::{
    AbortReason, FileId, LockMode, LockableId, Oid, PageId, Protocol, SiteId, Stage, TxnId, VolId,
};
use pscc_lockmgr::Acquire;
use pscc_storage::PageSnapshot;
use pscc_wal::LogRecord;

impl PeerServer {
    // ------------------------------------------------------------------
    // Object access entry points
    // ------------------------------------------------------------------

    /// An application read or write of `oid` by `txn` (paper §4.1.1:
    /// "its master thread first obtains a local lock on the object").
    pub(crate) fn client_access(
        &mut self,
        txn: TxnId,
        oid: Oid,
        write: bool,
        bytes: Option<Vec<u8>>,
    ) {
        // An owner-local access acquires its lock directly in the shared
        // table, so it must pass the migration and deescalation gates
        // *first* — a frozen range must quiesce (no new local locks on
        // it), and another client's adaptive page lock makes the server
        // copy stale and must be deescalated before any lock on the page
        // is taken.
        if self.owners.owner_of(oid.page) == Some(self.site) {
            let app = match self.txns.home.get(&txn) {
                Some(h) => h.app,
                None => return,
            };
            let op = if write {
                crate::msg::AppOp::Write {
                    oid,
                    bytes: bytes.clone(),
                }
            } else {
                crate::msg::AppOp::Read(oid)
            };
            let work = crate::msg::Input::App(crate::msg::AppRequest {
                app,
                txn: Some(txn),
                op,
            });
            if self.queue_if_migrating(oid.page, work.clone()) {
                return;
            }
            if self.queue_if_deescalating(oid.page, work.clone()) {
                return;
            }
            if self.start_deescalation_if_needed(oid.page, txn, work) {
                return;
            }
        }
        if self.cfg.protocol == Protocol::Ps {
            // Pure page server: lock at page granularity.
            let mode = if write { LockMode::Ex } else { LockMode::Sh };
            let (a, _) = self.locks.acquire(txn, LockableId::Page(oid.page), mode);
            match a {
                Acquire::Granted => self.client_ps_locked(txn, oid, write, bytes),
                Acquire::Wait(t) => {
                    self.lock_conts.insert(
                        t,
                        LockCont::LocalPage {
                            txn,
                            oid,
                            write,
                            bytes,
                        },
                    );
                    self.arm_lock_timer(t, txn);
                    self.check_deadlocks();
                }
            }
            return;
        }
        let mode = if write { LockMode::Ex } else { LockMode::Sh };
        let (a, _) = self.locks.acquire(txn, LockableId::Object(oid), mode);
        match a {
            Acquire::Granted => self.client_access_locked(txn, oid, write, bytes),
            Acquire::Wait(t) => {
                self.lock_conts.insert(
                    t,
                    LockCont::LocalAccess {
                        txn,
                        oid,
                        write,
                        bytes,
                    },
                );
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    /// Local object lock held; consult the cache / adaptive state.
    pub(crate) fn client_access_locked(
        &mut self,
        txn: TxnId,
        oid: Oid,
        write: bool,
        bytes: Option<Vec<u8>>,
    ) {
        if !self.txn_is_running(txn) {
            return;
        }
        if !write {
            match self.cache.read_object(oid) {
                Some(data) => {
                    self.stats.cache_hits += 1;
                    self.finish_read(txn, oid, Some(data));
                }
                None => {
                    self.stats.cache_misses += 1;
                    self.fetch(txn, oid, None);
                }
            }
            return;
        }
        // Write path. The page copy is needed to install the update.
        // (`cache_hits`/`cache_misses` count object *reads* only — the
        // fetch below is still visible through `read_requests`.)
        if !self.cache.object_cached(oid) {
            self.fetch(txn, oid, Some(bytes));
            return;
        }
        // Adaptive page lock held by *this* transaction? Then the update
        // needs no server interaction at all (paper §4.1.2).
        let adaptive = self
            .txns
            .home
            .get(&txn)
            .is_some_and(|h| h.adaptive_pages.contains(&oid.page));
        if adaptive {
            self.stats.adaptive_hits += 1;
            self.finish_write(txn, oid, bytes);
            return;
        }
        let Some(owner) = self.client_route(txn, oid.page) else {
            return;
        };
        let req = self.fresh_req();
        self.stats.write_requests += 1;
        self.req_conts
            .insert(req, ReqCont::Write { txn, oid, bytes });
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.insert(req);
            h.participants.insert(owner);
        }
        self.send(owner, Message::WriteObj { req, txn, oid });
    }

    /// PS path with the page lock held.
    pub(crate) fn client_ps_locked(
        &mut self,
        txn: TxnId,
        oid: Oid,
        write: bool,
        bytes: Option<Vec<u8>>,
    ) {
        if !self.txn_is_running(txn) {
            return;
        }
        let page = oid.page;
        if !write {
            // An aborted transaction's updated objects are unavailable
            // even under PS, so the object (not just the page) must be
            // readable; otherwise re-fetch the page.
            match self.cache.read_object(oid) {
                Some(data) => {
                    self.stats.cache_hits += 1;
                    self.finish_read(txn, oid, Some(data));
                }
                None => {
                    self.stats.cache_misses += 1;
                    self.fetch_page(txn, oid, None);
                }
            }
            return;
        }
        let granted = self
            .txns
            .home
            .get(&txn)
            .is_some_and(|h| h.page_write_grants.contains(&page));
        if granted && self.cache.object_cached(oid) {
            self.stats.adaptive_hits += 1; // server-free write under the page grant
            self.finish_write(txn, oid, bytes);
            return;
        }
        if !self.cache.object_cached(oid) {
            // A write needing the page is not a read miss (see
            // `client_access_locked`); `read_requests` counts the fetch.
            self.fetch_page(txn, oid, Some((oid, bytes)));
            return;
        }
        let Some(owner) = self.client_route(txn, page) else {
            return;
        };
        let req = self.fresh_req();
        self.stats.write_requests += 1;
        self.req_conts.insert(
            req,
            ReqCont::WritePage {
                txn,
                page,
                oid,
                bytes,
            },
        );
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.insert(req);
            h.participants.insert(owner);
        }
        self.send(owner, Message::WritePage { req, txn, page });
    }

    fn fetch(&mut self, txn: TxnId, oid: Oid, then_write: Option<Option<Vec<u8>>>) {
        let Some(owner) = self.client_route(txn, oid.page) else {
            return;
        };
        let req = self.fresh_req();
        self.stats.read_requests += 1;
        self.req_conts.insert(
            req,
            ReqCont::Fetch {
                txn,
                oid,
                then_write,
            },
        );
        self.pending_fetches
            .entry(oid.page)
            .or_default()
            .insert(req);
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.insert(req);
            h.participants.insert(owner);
        }
        self.obs.fetch_sent(req, txn, self.now);
        self.obs.record(pscc_obs::EventKind::FetchSent {
            to: owner,
            item: LockableId::Object(oid),
        });
        self.send(owner, Message::ReadObj { req, txn, oid });
    }

    fn fetch_page(&mut self, txn: TxnId, oid: Oid, then_write: Option<(Oid, Option<Vec<u8>>)>) {
        let page = oid.page;
        let Some(owner) = self.client_route(txn, page) else {
            return;
        };
        let req = self.fresh_req();
        self.stats.read_requests += 1;
        self.req_conts.insert(
            req,
            ReqCont::FetchPage {
                txn,
                oid,
                then_write,
            },
        );
        self.pending_fetches.entry(page).or_default().insert(req);
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.outstanding_reqs.insert(req);
            h.participants.insert(owner);
        }
        self.obs.fetch_sent(req, txn, self.now);
        self.obs.record(pscc_obs::EventKind::FetchSent {
            to: owner,
            item: LockableId::Page(page),
        });
        self.send(owner, Message::ReadPage { req, txn, page });
    }

    // ------------------------------------------------------------------
    // Explicit hierarchical locks (paper §4.3)
    // ------------------------------------------------------------------

    /// An explicit `Lock` op: acquire locally first, then propagate per
    /// §4.3 (file/volume locks always; page SH only if not fully cached).
    pub(crate) fn client_explicit(&mut self, txn: TxnId, item: LockableId, mode: LockMode) {
        let (a, _) = self.locks.acquire(txn, item, mode);
        match a {
            Acquire::Granted => self.client_explicit_locked(txn, item, mode),
            Acquire::Wait(t) => {
                self.lock_conts
                    .insert(t, LockCont::LocalExplicit { txn, item, mode });
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    /// Local explicit lock held; decide whether to propagate.
    pub(crate) fn client_explicit_locked(&mut self, txn: TxnId, item: LockableId, mode: LockMode) {
        if !self.txn_is_running(txn) {
            return;
        }
        // Page SH locks stay local when the page is fully cached
        // (§4.3.2); everything else is propagated to the owner(s).
        if let LockableId::Page(p) = item {
            if mode == LockMode::Sh && self.cache.fully_cached(p) {
                self.complete_op(txn, None);
                return;
            }
            if mode == LockMode::Is {
                // A pure IS page intention never conflicts with anything
                // the server tracks beyond what object reads acquire.
                // (IX, in contrast, must reach the server so that
                // dummy-object callbacks revoke local-only SH page
                // coverage at other clients, §4.3.2.)
                self.complete_op(txn, None);
                return;
            }
        }
        // Page- and object-granularity locks go to the page's current
        // owner; file/volume locks must reach every owning site.
        let sites = match item {
            LockableId::Page(p) => match self.client_route(txn, p) {
                Some(s) => vec![s],
                None => return,
            },
            LockableId::Object(o) => match self.client_route(txn, o.page) {
                Some(s) => vec![s],
                None => return,
            },
            LockableId::File(_) | LockableId::Volume(_) => self.owners.owners(),
        };
        if !self.txns.home.contains_key(&txn) {
            return;
        }
        for site in sites {
            let req = self.fresh_req();
            self.req_conts.insert(req, ReqCont::Lock { txn });
            if let Some(h) = self.txns.home.get_mut(&txn) {
                h.outstanding_reqs.insert(req);
                h.participants.insert(site);
            }
            self.send(
                site,
                Message::LockItem {
                    req,
                    txn,
                    item,
                    mode,
                },
            );
        }
    }

    /// A `LockGranted` reply: the op completes when no requests remain.
    pub(crate) fn client_lock_granted(&mut self, req: ReqId) {
        let Some(ReqCont::Lock { txn }) = self.req_conts.remove(&req) else {
            return;
        };
        let done = {
            let Some(h) = self.txns.home.get_mut(&txn) else {
                return;
            };
            h.outstanding_reqs.remove(&req);
            // Other explicit-lock requests may still be outstanding.
            !h.outstanding_reqs
                .iter()
                .any(|r| matches!(self.req_conts.get(r), Some(ReqCont::Lock { .. })))
        };
        if done {
            self.complete_op(txn, None);
        }
    }

    // ------------------------------------------------------------------
    // Replies
    // ------------------------------------------------------------------

    /// A shipped page arrived (paper §4.2.3 merge rules + §4.2.4 race
    /// table).
    pub(crate) fn client_read_reply(&mut self, req: ReqId, snapshot: PageSnapshot) {
        let cont = self.req_conts.remove(&req);
        let page = snapshot.page;
        self.obs.fetch_done(req, self.now);
        self.obs.record(pscc_obs::EventKind::FetchDone {
            from: self.owners.owner_of(page).unwrap_or(self.site),
            item: LockableId::Page(page),
        });
        if let Some(p) = self.pending_fetches.get_mut(&page) {
            p.remove(&req);
            if p.is_empty() {
                self.pending_fetches.remove(&page);
            }
        }
        let raced = self.races.consume(page, req);
        if !raced.is_empty() {
            self.stats.callback_races += 1;
            self.obs.record(pscc_obs::EventKind::Race {
                item: LockableId::Page(page),
                kind: pscc_obs::event::RaceKind::CallbackLock,
            });
        }
        let evicted = self.cache.install(
            page,
            snapshot.image,
            snapshot.avail,
            snapshot.ship_seq,
            &raced,
        );
        self.send_purges(evicted);

        match cont {
            Some(ReqCont::Fetch {
                txn,
                oid,
                then_write,
            }) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.remove(&req);
                }
                if !self.txn_is_running(txn) {
                    return;
                }
                match then_write {
                    None => {
                        // `None` here legitimately means the object was
                        // deleted (its slot is dead on the shipped page).
                        let data = self.cache.read_object(oid);
                        self.finish_read(txn, oid, data);
                    }
                    Some(bytes) => self.client_access_locked(txn, oid, true, bytes),
                }
            }
            Some(ReqCont::FetchPage {
                txn,
                oid,
                then_write,
            }) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.remove(&req);
                }
                if !self.txn_is_running(txn) {
                    return;
                }
                match then_write {
                    None => {
                        let data = self.cache.read_object(oid);
                        self.finish_read(txn, oid, data);
                    }
                    Some((woid, bytes)) => self.client_ps_locked(txn, woid, true, bytes),
                }
            }
            _ => {}
        }
    }

    /// Write permission arrived; apply the update. A deescalation race
    /// (§4.2.4) voids the adaptive bit.
    pub(crate) fn client_write_granted(&mut self, req: ReqId, adaptive: bool) {
        let deescalated = self.races.consume_deescalation(req);
        match self.req_conts.remove(&req) {
            Some(ReqCont::Write { txn, oid, bytes }) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.remove(&req);
                }
                if !self.txn_is_running(txn) {
                    return;
                }
                if adaptive && !deescalated {
                    if let Some(h) = self.txns.home.get_mut(&txn) {
                        h.adaptive_pages.insert(oid.page);
                    }
                }
                // The page may have been evicted while the request was in
                // flight; re-fetch before applying.
                if !self.cache.object_cached(oid) {
                    self.fetch(txn, oid, Some(bytes));
                    return;
                }
                self.finish_write(txn, oid, bytes);
            }
            Some(ReqCont::WritePage {
                txn,
                page,
                oid,
                bytes,
            }) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.remove(&req);
                    h.page_write_grants.insert(page);
                }
                if !self.txn_is_running(txn) {
                    return;
                }
                let _ = page;
                if !self.cache.object_cached(oid) {
                    self.fetch_page(txn, oid, Some((oid, bytes)));
                    return;
                }
                self.finish_write(txn, oid, bytes);
            }
            _ => {}
        }
    }

    /// The owner denied a request because the transaction was chosen as
    /// a victim: abort it here at its home.
    pub(crate) fn client_req_denied(&mut self, req: ReqId, reason: AbortReason) {
        let txn = match self.req_conts.remove(&req) {
            Some(
                ReqCont::Fetch { txn, .. }
                | ReqCont::FetchPage { txn, .. }
                | ReqCont::Write { txn, .. }
                | ReqCont::WritePage { txn, .. }
                | ReqCont::Lock { txn }
                | ReqCont::ForwardRead { txn }
                | ReqCont::ForwardWrite { txn, .. },
            ) => txn,
            _ => return,
        };
        self.races.forget_request(req);
        self.obs.fetch_drop(req);
        self.obs.queue_drop(req);
        self.abort_txn_here(txn, reason);
    }

    /// The owner reports our transaction was aborted as a victim there.
    pub(crate) fn client_txn_aborted(&mut self, txn: TxnId, reason: AbortReason) {
        self.abort_txn_here(txn, reason);
    }

    // ------------------------------------------------------------------
    // Routing and migration redirects (DESIGN.md §10)
    // ------------------------------------------------------------------

    /// Routes a client-role request by the local ownership directory:
    /// the current owner of `page`, or `None` after refusing an unmapped
    /// page (no site can ever serve it, so the transaction aborts rather
    /// than retry forever).
    pub(crate) fn client_route(&mut self, txn: TxnId, page: PageId) -> Option<SiteId> {
        match self.owners.try_owner(page) {
            Ok(owner) => Some(owner),
            Err(_) => {
                self.obs
                    .record(pscc_obs::EventKind::OwnershipRefused { page });
                self.abort_txn_here(txn, AbortReason::Internal);
                None
            }
        }
    }

    /// The owner this request reached no longer holds its page: range
    /// `[lo, hi)` migrated away under `layout`. Apply the move if it is
    /// news, re-point the retained in-flight copy, and retry —
    /// immediately when the redirect taught us something (a newer layout
    /// or a destination other than the refusing site), with backoff when
    /// it did not (the destination simply has not activated yet; blind
    /// immediate retries would ping-pong between disagreeing sites).
    pub(crate) fn client_wrong_owner(
        &mut self,
        from: SiteId,
        req: ReqId,
        lo: u32,
        hi: u32,
        layout: u64,
        new_owner: SiteId,
    ) {
        self.stats.wrong_owner_redirects += 1;
        if !self.req_conts.contains_key(&req) {
            // The transaction ended while the redirect was in flight.
            self.inflight.remove(&req);
            self.migration_waits.remove(&req);
            return;
        }
        let fresh = self.owners.apply_move(lo, hi, new_owner, layout);
        let dest = if fresh {
            new_owner
        } else {
            // Stale redirect: our directory is at least as new — route
            // by it. (`lo` names a page in the moved range; the file id
            // is irrelevant to range lookups.)
            let probe = PageId::new(FileId::new(VolId(self.site.0), 0), lo);
            self.owners.owner_of(probe).unwrap_or(new_owner)
        };
        let Some((site, msg, _)) = self.inflight.get_mut(&req) else {
            return;
        };
        *site = dest;
        let msg = msg.clone();
        if let Some(txn) = msg.txn_id() {
            // The re-routed request will take locks at `dest`; commit
            // must release them there.
            if let Some(h) = self.txns.home.get_mut(&txn) {
                h.participants.insert(dest);
            }
        }
        if fresh || dest != from {
            // The stall this migration imposed on the request ends now.
            if let Some(t0) = self.migration_waits.remove(&req) {
                if let Some(txn) = msg.txn_id() {
                    self.obs
                        .stage_sample(txn, Stage::MigrationPause, self.now.since(t0));
                }
            }
            self.send(dest, msg);
        } else {
            self.migration_waits.entry(req).or_insert(self.now);
            self.client_busy(from, req, self.cfg.busy_retry_hint);
        }
    }

    // ------------------------------------------------------------------
    // Overload protection: Busy refusals and backoff (DESIGN.md §6)
    // ------------------------------------------------------------------

    /// An overloaded owner refused a data request with `Busy`: back off
    /// exponentially (with deterministic jitter derived from the request
    /// id) and arm a retry timer. The retained in-flight copy keeps the
    /// request replayable; its continuation stays installed, so the
    /// eventual reply resumes it exactly as a first-try reply would.
    pub(crate) fn client_busy(
        &mut self,
        from: SiteId,
        req: ReqId,
        retry_after: pscc_common::SimDuration,
    ) {
        if !self.req_conts.contains_key(&req) {
            // The transaction ended (aborted) while the refusal was in
            // flight; nothing left to retry.
            self.inflight.remove(&req);
            self.migration_waits.remove(&req);
            return;
        }
        let Some((_, retained, attempt)) = self.inflight.get_mut(&req) else {
            return;
        };
        *attempt = attempt.saturating_add(1);
        let attempt = *attempt;
        if let Some(txn) = retained.txn_id() {
            // Busy backoff is queue time from the request's view; the
            // interval closes when the retry finally departs.
            self.obs.queue_begin(req, txn, self.now);
        }
        let base = retry_after.as_micros().max(1);
        let backoff = base.saturating_mul(1 << attempt.min(6) as u64);
        // Deterministic jitter (no RNG in the engine): spread retries of
        // different requests by up to a quarter of the backoff.
        let jitter = req.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (backoff / 4 + 1);
        let delay = (backoff + jitter).min(self.cfg.lock_timeout_ceiling.as_micros());
        let timer = self.fresh_timer();
        self.timers.insert(timer, TimerKind::BusyRetry { req });
        self.out.push(crate::msg::Output::ArmTimer {
            timer,
            delay: pscc_common::SimDuration::from_micros(delay),
        });
        self.obs.record(pscc_obs::EventKind::BusyBackoff {
            peer: from,
            attempt,
        });
    }

    /// A Busy-retry timer fired: re-send the retained request if its
    /// transaction still wants it (the send re-enters credit-based flow
    /// control, so it may queue locally instead of going out).
    pub(crate) fn busy_retry_fired(&mut self, req: ReqId) {
        if !self.req_conts.contains_key(&req) {
            self.inflight.remove(&req);
            self.migration_waits.remove(&req);
            return;
        }
        let Some((site, msg, _)) = self.inflight.get(&req).cloned() else {
            return;
        };
        // A retry departing after a migration stall closes its pause
        // interval (re-stamped if the destination refuses again).
        if let Some(t0) = self.migration_waits.remove(&req) {
            if let Some(txn) = msg.txn_id() {
                self.obs
                    .stage_sample(txn, Stage::MigrationPause, self.now.since(t0));
            }
        }
        self.stats.busy_retries += 1;
        self.obs
            .record(pscc_obs::EventKind::BusyRetry { peer: site });
        self.send(site, msg);
    }

    // ------------------------------------------------------------------
    // Local updates and op completion
    // ------------------------------------------------------------------

    /// Completes a write whose permission is held: installs the update
    /// into the cached copy and logs it. `bytes: None` bumps a version
    /// counter in the object's first 8 bytes. Handles the two §4.4
    /// size-change paths: objects already *forwarded* off their home page
    /// are read-modified at the owner, and size-growing updates that no
    /// longer fit the page are early-shipped (the owner installs them
    /// with forwarding).
    pub(crate) fn finish_write(&mut self, txn: TxnId, oid: Oid, bytes: Option<Vec<u8>>) {
        let Some(cur) = self.cache.read_object(oid) else {
            // Permission granted but the copy vanished (e.g. eviction
            // race): refuse gracefully; the caller may retry.
            self.complete_op(txn, None);
            return;
        };
        if pscc_storage::forward_target(&cur).is_some() {
            // Forwarded object: fetch the current bytes from the owner,
            // then log the update against them (never client-cached).
            let Some(owner) = self.client_route(txn, oid.page) else {
                return;
            };
            let req = self.fresh_req();
            self.req_conts
                .insert(req, ReqCont::ForwardWrite { txn, oid, bytes });
            if let Some(h) = self.txns.home.get_mut(&txn) {
                h.outstanding_reqs.insert(req);
                h.participants.insert(owner);
            }
            self.send(owner, Message::ReadForwarded { req, txn, oid });
            return;
        }
        let new_bytes = bytes.unwrap_or_else(|| bump_version(cur.clone()));
        match self.cache.apply_update(oid, &new_bytes, txn) {
            Some(before) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.updated.insert(oid);
                }
                self.log_cache
                    .append(LogRecord::update(txn, oid, before, new_bytes));
                self.complete_op(txn, None);
            }
            None => {
                // Size-growing update that overflows the page (§4.4):
                // log it, then early-ship the page's records by purging
                // the copy — the owner installs the update, forwarding
                // the object to an overflow page if needed.
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.updated.insert(oid);
                }
                self.log_cache
                    .append(LogRecord::update(txn, oid, cur, new_bytes));
                if let Some(cp) = self.cache.purge(oid.page) {
                    self.send_purges(vec![(oid.page, cp)]);
                }
                self.complete_op(txn, None);
            }
        }
    }

    /// Completes a read, following a §4.4 forwarding tombstone to the
    /// owner when needed.
    pub(crate) fn finish_read(&mut self, txn: TxnId, oid: Oid, data: Option<Vec<u8>>) {
        if let Some(d) = &data {
            if pscc_storage::forward_target(d).is_some() {
                let Some(owner) = self.client_route(txn, oid.page) else {
                    return;
                };
                let req = self.fresh_req();
                self.req_conts.insert(req, ReqCont::ForwardRead { txn });
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.insert(req);
                    h.participants.insert(owner);
                }
                self.send(owner, Message::ReadForwarded { req, txn, oid });
                return;
            }
        }
        self.complete_op(txn, data);
    }

    /// The owner answered a forwarded-object point read.
    pub(crate) fn client_object_bytes(&mut self, req: ReqId, data: Option<Vec<u8>>) {
        match self.req_conts.remove(&req) {
            Some(ReqCont::ForwardRead { txn }) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.remove(&req);
                }
                if !self.txn_is_running(txn) {
                    return;
                }
                self.complete_op(txn, data);
            }
            Some(ReqCont::ForwardWrite { txn, oid, bytes }) => {
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.outstanding_reqs.remove(&req);
                }
                if !self.txn_is_running(txn) {
                    return;
                }
                let Some(before) = data else {
                    self.complete_op(txn, None);
                    return;
                };
                let new_bytes = bytes.unwrap_or_else(|| bump_version(before.clone()));
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.updated.insert(oid);
                }
                self.log_cache
                    .append(LogRecord::update(txn, oid, before, new_bytes));
                self.complete_op(txn, None);
            }
            _ => {}
        }
    }

    /// Creates an object on a cached page (paper §4.4 size-changing
    /// scope: creation). Requires an explicit EX page lock and the page
    /// cached; refuses (empty `Done`) otherwise.
    pub(crate) fn client_create(&mut self, txn: TxnId, page: PageId, bytes: Vec<u8>) {
        use pscc_common::LockMode;
        if !self
            .locks
            .held_covers(txn, pscc_common::LockableId::Page(page), LockMode::Ex)
            || !self.cache.contains(page)
        {
            self.complete_op(txn, None);
            return;
        }
        let Some(slot) = self.cache.apply_create(page, &bytes, txn) else {
            self.complete_op(txn, None); // page full
            return;
        };
        let oid = Oid::new(page, slot);
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.updated.insert(oid);
        }
        self.log_cache.append(pscc_wal::LogRecord {
            txn,
            payload: pscc_wal::LogPayload::Create { oid, body: bytes },
        });
        self.complete_op(txn, Some(crate::engine::large::encode_header_oid(oid)));
    }

    /// Deletes an object. Requires an EX lock on it and the copy cached;
    /// completes with the deleted bytes, or empty on refusal.
    pub(crate) fn client_delete(&mut self, txn: TxnId, oid: Oid) {
        use pscc_common::LockMode;
        if !self
            .locks
            .held_covers(txn, pscc_common::LockableId::Object(oid), LockMode::Ex)
        {
            self.complete_op(txn, None);
            return;
        }
        let Some(before) = self.cache.apply_delete(oid, txn) else {
            self.complete_op(txn, None);
            return;
        };
        if let Some(h) = self.txns.home.get_mut(&txn) {
            h.updated.insert(oid);
        }
        self.log_cache.append(pscc_wal::LogRecord {
            txn,
            payload: pscc_wal::LogPayload::Delete {
                oid,
                before: before.clone(),
            },
        });
        self.complete_op(txn, Some(before));
    }

    /// Answers the application for the transaction's current op.
    pub(crate) fn complete_op(&mut self, txn: TxnId, data: Option<Vec<u8>>) {
        let Some(h) = self.txns.home.get_mut(&txn) else {
            return;
        };
        let app = h.app;
        h.current_op = None;
        self.reply_app(AppReply::Done { app, txn, data });
    }

    pub(crate) fn txn_is_running(&self, txn: TxnId) -> bool {
        self.txns
            .home
            .get(&txn)
            .is_some_and(|h| h.status == crate::txn::TxnStatus::Active)
    }

    // ------------------------------------------------------------------
    // Eviction / purge notices
    // ------------------------------------------------------------------

    /// Sends purge notices for evicted pages, replicating locks held by
    /// active local transactions and shipping dirty objects' log records
    /// early (paper §4.1.1 / §3.3).
    pub(crate) fn send_purges(&mut self, evicted: Vec<(PageId, crate::cache::CachedPage)>) {
        for (page, copy) in evicted {
            self.stats.pages_purged += 1;
            let Some(owner) = self.owners.owner_of(page) else {
                // Unmapped page (should not occur): the copy dies with
                // its locks unreplicated; the refusal is traced.
                self.obs
                    .record(pscc_obs::EventKind::OwnershipRefused { page });
                continue;
            };
            // Locks to replicate: page- and object-level locks held by
            // transactions homed here.
            let mut replicate: Vec<(TxnId, LockableId, LockMode)> = Vec::new();
            for (t, m) in self.locks.holders(LockableId::Page(page)) {
                if t.site == self.site && self.txn_is_running(t) {
                    replicate.push((t, LockableId::Page(page), m));
                }
            }
            for (t, o, m) in self.locks.object_holders_on_page(page) {
                if t.site == self.site && self.txn_is_running(t) {
                    replicate.push((t, LockableId::Object(o), m));
                }
            }
            for (t, _, _) in &replicate {
                if let Some(h) = self.txns.home.get_mut(t) {
                    h.participants.insert(owner);
                }
            }
            let log_records = self.log_cache.drain_page(page);
            // Losing the page loses any adaptive grants on it.
            for h in self.txns.home.values_mut() {
                h.adaptive_pages.remove(&page);
                h.page_write_grants.remove(&page);
            }
            self.send(
                owner,
                Message::Purge {
                    client: self.site,
                    page,
                    ship_seq: copy.ship_seq,
                    replicate,
                    log_records,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Callback threads (paper Fig. 3; §4.1.1, §4.3.2)
    // ------------------------------------------------------------------

    /// A callback request arrived: allocate a callback thread and run the
    /// three-case protocol.
    pub(crate) fn client_callback(&mut self, from: SiteId, cb: CbId, txn: TxnId, target: CbTarget) {
        let key: CbKey = (from, cb);
        let mut ctx = CbCtx {
            txn,
            target,
            held: Vec::new(),
            waiting: None,
            timer: None,
        };
        match target {
            CbTarget::Object(oid) => {
                let page = LockableId::Page(oid.page);
                // Case 1: nobody here uses the page — purge it outright.
                if self.locks.try_acquire_single(txn, page, LockMode::Ex) {
                    ctx.held.push(page);
                    self.cb_ctxs.insert(key, ctx);
                    self.finish_cb_whole(key, CbTarget::PageAll(oid.page), true);
                    return;
                }
                // Hierarchical path: IX on the page (may block on a
                // local-only SH page lock, §4.3.2), then EX on the object.
                let (a, _) = self.locks.acquire_single(txn, page, LockMode::Ix);
                match a {
                    Acquire::Granted => {
                        ctx.held.push(page);
                        self.cb_ctxs.insert(key, ctx);
                        self.cb_ctx_page_locked(key, txn, oid);
                    }
                    Acquire::Wait(t) => {
                        ctx.waiting = Some(t);
                        self.cb_ctxs.insert(key, ctx);
                        self.lock_conts
                            .insert(t, LockCont::CbCtxPage { key, txn, oid });
                        self.cb_blocked_report(key, LockableId::Page(oid.page), LockMode::Ix, txn);
                        self.arm_cb_timer(key, txn);
                    }
                }
            }
            CbTarget::PageAll(p) => {
                let item = LockableId::Page(p);
                self.cb_whole_acquire(key, ctx, txn, item, target);
            }
            CbTarget::File(f) => {
                let item = LockableId::File(f);
                self.cb_whole_acquire(key, ctx, txn, item, target);
            }
            CbTarget::Volume(v) => {
                let item = LockableId::Volume(v);
                self.cb_whole_acquire(key, ctx, txn, item, target);
            }
        }
    }

    fn cb_whole_acquire(
        &mut self,
        key: CbKey,
        mut ctx: CbCtx,
        txn: TxnId,
        item: LockableId,
        target: CbTarget,
    ) {
        let (a, _) = self.locks.acquire_single(txn, item, LockMode::Ex);
        match a {
            Acquire::Granted => {
                ctx.held.push(item);
                self.cb_ctxs.insert(key, ctx);
                self.finish_cb_whole(key, target, true);
            }
            Acquire::Wait(t) => {
                ctx.waiting = Some(t);
                self.cb_ctxs.insert(key, ctx);
                self.lock_conts
                    .insert(t, LockCont::CbCtxWhole { key, txn, target });
                self.cb_blocked_report(key, item, LockMode::Ex, txn);
                self.arm_cb_timer(key, txn);
            }
        }
    }

    /// Reports a blocked callback to the owner with the conflicting local
    /// holders (paper §4.1.1: "sends the server a list of all local
    /// transactions holding locks on X").
    fn cb_blocked_report(&mut self, key: CbKey, item: LockableId, mode: LockMode, txn: TxnId) {
        self.stats.callbacks_blocked += 1;
        let holders: Vec<(TxnId, LockableId, LockMode)> = self
            .locks
            .conflicting_holders(item, mode, txn)
            .into_iter()
            // Local, still-active transactions only: a committing
            // holder's locks are about to be released everywhere, and
            // replicating them after its commit reached the owner would
            // strand them there forever.
            .filter(|(t, _)| t.site == self.site && self.txn_is_running(*t))
            .map(|(t, m)| (t, item, m))
            .collect();
        let (owner, cb) = key;
        // The reported holders' locks are about to be replicated at the
        // owner; their commits must release them there, so the owner
        // becomes a participant of each.
        for (t, _, _) in &holders {
            if let Some(h) = self.txns.home.get_mut(t) {
                h.participants.insert(owner);
            }
        }
        self.send(owner, Message::CbBlocked { cb, holders });
    }

    fn arm_cb_timer(&mut self, key: CbKey, txn: TxnId) {
        let timer = self.fresh_timer();
        let delay = self.timeout_est.timeout();
        self.timers.insert(timer, TimerKind::CbWait { key, txn });
        if let Some(ctx) = self.cb_ctxs.get_mut(&key) {
            ctx.timer = Some(timer);
        }
        self.out.push(crate::msg::Output::ArmTimer { timer, delay });
    }

    /// IX page lock acquired; proceed to the object EX (§4.3.2).
    pub(crate) fn cb_ctx_page_locked(&mut self, key: CbKey, txn: TxnId, oid: Oid) {
        let Some(ctx) = self.cb_ctxs.get_mut(&key) else {
            return;
        };
        ctx.waiting = None;
        ctx.held.push(LockableId::Page(oid.page));
        let item = LockableId::Object(oid);
        let (a, _) = self.locks.acquire_single(txn, item, LockMode::Ex);
        match a {
            Acquire::Granted => self.cb_ctx_obj_locked(key, txn, oid),
            Acquire::Wait(t) => {
                if let Some(ctx) = self.cb_ctxs.get_mut(&key) {
                    ctx.waiting = Some(t);
                }
                self.lock_conts
                    .insert(t, LockCont::CbCtxObj { key, txn, oid });
                self.cb_blocked_report(key, item, LockMode::Ex, txn);
                self.arm_cb_timer(key, txn);
            }
        }
    }

    /// Object EX acquired: register races, invalidate, acknowledge.
    pub(crate) fn cb_ctx_obj_locked(&mut self, key: CbKey, _txn: TxnId, oid: Oid) {
        let Some(ctx) = self.cb_ctxs.get_mut(&key) else {
            return;
        };
        ctx.waiting = None;
        ctx.held.push(LockableId::Object(oid));
        // Callback race (paper §4.2.4 / Fig. 5): a read reply for this
        // page may be in flight; it must not resurrect this object.
        let pending: Vec<ReqId> = self
            .pending_fetches
            .get(&oid.page)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        self.races
            .register_callback_race(oid.page, oid.slot, pending);
        self.cache.mark_unavailable(oid);
        self.stats.callbacks_object_only += 1;
        self.finish_cb(key, false);
    }

    /// Whole-granule EX acquired: purge and acknowledge.
    pub(crate) fn cb_ctx_whole_locked(&mut self, key: CbKey, txn: TxnId, target: CbTarget) {
        let Some(ctx) = self.cb_ctxs.get_mut(&key) else {
            return;
        };
        ctx.waiting = None;
        ctx.held.push(target.lockable());
        let _ = txn;
        self.finish_cb_whole(key, target, false);
    }

    /// Purges the target granule and completes the callback thread.
    /// `fast` marks the immediate whole-page grab of case 1.
    fn finish_cb_whole(&mut self, key: CbKey, target: CbTarget, fast: bool) {
        match target {
            CbTarget::PageAll(p) => {
                if self.cache.purge(p).is_some() {
                    self.stats.pages_purged += 1;
                }
                // Any adaptive grants on the page die with it.
                for h in self.txns.home.values_mut() {
                    h.adaptive_pages.remove(&p);
                    h.page_write_grants.remove(&p);
                }
            }
            CbTarget::File(f) => {
                for p in self.cache.pages_of_file(f) {
                    self.cache.purge(p);
                    self.stats.pages_purged += 1;
                    for h in self.txns.home.values_mut() {
                        h.adaptive_pages.remove(&p);
                        h.page_write_grants.remove(&p);
                    }
                }
            }
            CbTarget::Volume(v) => {
                for p in self.cache.pages_of_volume(v) {
                    self.cache.purge(p);
                    self.stats.pages_purged += 1;
                    for h in self.txns.home.values_mut() {
                        h.adaptive_pages.remove(&p);
                        h.page_write_grants.remove(&p);
                    }
                }
            }
            CbTarget::Object(_) => unreachable!("objects use finish_cb"),
        }
        if fast {
            self.stats.callbacks_purged_page += 1;
        }
        self.finish_cb(key, true);
    }

    /// Releases the callback thread's locks and acks the owner (paper
    /// footnote 2: "any locks that have been acquired by the callback
    /// thread are released and the callback thread itself is
    /// deallocated").
    fn finish_cb(&mut self, key: CbKey, purged_page: bool) {
        let Some(ctx) = self.cb_ctxs.remove(&key) else {
            return;
        };
        if let Some(t) = ctx.timer {
            self.timers.remove(&t);
        }
        let mut grants = Vec::new();
        for item in ctx.held.iter().rev() {
            grants.extend(self.locks.release_one(ctx.txn, *item));
        }
        if !ctx.held.is_empty() {
            self.obs
                .record(pscc_obs::EventKind::LocksReleased { txn: ctx.txn });
        }
        let (owner, cb) = key;
        self.send(owner, Message::CbOk { cb, purged_page });
        self.process_grants(grants);
    }

    /// Drops a callback thread without acknowledging (owner cancelled it
    /// or its wait timed out).
    pub(crate) fn cancel_cb_ctx(&mut self, key: CbKey) {
        let Some(ctx) = self.cb_ctxs.remove(&key) else {
            return;
        };
        if let Some(t) = ctx.timer {
            self.timers.remove(&t);
        }
        let mut grants = Vec::new();
        if let Some(ticket) = ctx.waiting {
            self.lock_conts.remove(&ticket);
            grants.extend(self.locks.cancel(ticket));
        }
        for item in ctx.held.iter().rev() {
            grants.extend(self.locks.release_one(ctx.txn, *item));
        }
        if !ctx.held.is_empty() {
            self.obs
                .record(pscc_obs::EventKind::LocksReleased { txn: ctx.txn });
        }
        self.process_grants(grants);
    }

    // ------------------------------------------------------------------
    // Deescalation, client side (paper §4.1.2)
    // ------------------------------------------------------------------

    /// The owner asks this client to give up its adaptive locks on
    /// `page` and report local EX object locks.
    pub(crate) fn client_deescalate(&mut self, from: SiteId, de: DeId, page: PageId) {
        // All local transactions lose their adaptive grants on the page.
        let mut revoked: Vec<TxnId> = Vec::new();
        for (t, h) in &mut self.txns.home {
            if h.adaptive_pages.remove(&page) {
                revoked.push(*t);
            }
        }
        for t in revoked {
            self.obs.record(pscc_obs::EventKind::AdaptiveRevoke {
                txn: t,
                item: LockableId::Page(page),
            });
        }
        // Deescalation race: in-flight write requests for this page may
        // come back with a stale adaptive bit — void it (§4.2.4).
        let outstanding: Vec<ReqId> = self
            .req_conts
            .iter()
            .filter_map(|(r, c)| match c {
                ReqCont::Write { oid, .. } if oid.page == page => Some(*r),
                _ => None,
            })
            .collect();
        self.races.register_deescalation(outstanding);
        let ex_locks: Vec<(TxnId, Oid)> = self
            .locks
            .ex_object_holders_on_page(page)
            .into_iter()
            .filter(|(t, _)| t.site == self.site && self.txn_is_running(*t))
            .collect();
        // The replicated locks must be released at the owner when their
        // transactions end.
        for (t, _) in &ex_locks {
            if let Some(h) = self.txns.home.get_mut(t) {
                h.participants.insert(from);
            }
        }
        self.send(from, Message::DeescalateReply { de, page, ex_locks });
    }
}

/// Synthesized update: bump a little-endian counter in the first 8 bytes.
fn bump_version(mut bytes: Vec<u8>) -> Vec<u8> {
    if bytes.len() >= 8 {
        let mut v = u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"));
        v = v.wrapping_add(1);
        bytes[0..8].copy_from_slice(&v.to_le_bytes());
    } else if !bytes.is_empty() {
        bytes[0] = bytes[0].wrapping_add(1);
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::bump_version;

    #[test]
    fn bump_version_increments_counter() {
        let b = bump_version(vec![0u8; 16]);
        assert_eq!(u64::from_le_bytes(b[0..8].try_into().unwrap()), 1);
        let b2 = bump_version(b);
        assert_eq!(u64::from_le_bytes(b2[0..8].try_into().unwrap()), 2);
    }

    #[test]
    fn bump_version_short_objects() {
        assert_eq!(bump_version(vec![7u8, 1]), vec![8u8, 1]);
        assert_eq!(bump_version(vec![]), Vec::<u8>::new());
    }
}
