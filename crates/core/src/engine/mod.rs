//! The peer-server engine: a deterministic state machine implementing the
//! paper's hierarchical, adaptive cache-consistency protocols (PS, PS-OA,
//! PS-AA) over the substrates (lock table, storage, WAL, copy table).
//!
//! One [`PeerServer`] instance is one site of Fig. 1. It plays both
//! roles: *owner* of the pages its volume holds, and *client* for
//! everything else. Inputs (application requests, messages, disk
//! completions, timer fires) are handled synchronously; every suspension
//! point (a lock wait, a callback fan-out, a disk read) is a continuation
//! keyed by the event that resumes it. Messages a site sends to itself —
//! a peer server operating on its own data — are processed in the same
//! `handle` call at zero message cost, which is precisely how the
//! peer-servers architecture saves messages on locally owned data
//! (paper §5.5).

mod client;
mod commit;
pub mod drain;
mod edge;
pub mod large;
mod liveness;
pub mod migration;
mod recovery;
mod server;

pub use drain::DrainPhase;
pub use migration::MigrationPhase;

use crate::cache::ClientCache;
use crate::copy_table::CopyTable;
use crate::msg::{
    AppOp, AppReply, CbId, CbTarget, DeId, DiskOp, DiskReqId, Input, Message, Output, ReqId,
    TimerId,
};
use crate::owner_map::OwnerMap;
use crate::ownership::OwnershipDirectory;
use crate::races::RaceTable;
use crate::residency::Residency;
use crate::timeout::TimeoutEstimator;
use crate::txn::{HomeTxn, TxnRegistry, TxnStatus};
use pscc_common::{
    AbortReason, Counters, LockMode, LockableId, Oid, PageId, SimTime, SiteId, SpanId, Stage,
    SystemConfig, TraceCtx, TxnId,
};
use pscc_lockmgr::{LockTable, Ticket};
use pscc_storage::Volume;
use pscc_wal::{LogCache, ServerLog};
use std::collections::{HashMap, HashSet, VecDeque};

/// How many recently-aborted remote transactions a server remembers for
/// straggler refusal (see [`PeerServer::tombstone_txn`]). Transaction
/// ids are never reused, so the only cost of forgetting one early is a
/// reopened (tiny) race window; 4096 outlasts any realistic reorder.
const DEAD_TXN_MEMORY: usize = 4096;

/// How many parked request-contexts the tracer retains (see
/// [`PeerServer::trace_wrap`]). Entries normally retire when the reply
/// departs; a request that dies replyless (abort, crash) would leak its
/// entry, so the table is FIFO-bounded like the tombstone memory.
const REQ_CTX_MEMORY: usize = 4096;

/// What resumes when a lock ticket is granted.
#[derive(Debug, Clone)]
pub(crate) enum LockCont {
    /// Client role: local lock for an object access acquired; continue
    /// the read/write.
    LocalAccess {
        txn: TxnId,
        oid: Oid,
        write: bool,
        bytes: Option<Vec<u8>>,
    },
    /// Client role (PS): local page lock acquired; continue the access.
    LocalPage {
        txn: TxnId,
        oid: Oid,
        write: bool,
        bytes: Option<Vec<u8>>,
    },
    /// Client role: local lock for an explicit `Lock` op acquired.
    LocalExplicit {
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    },
    /// Owner role: SH object lock granted; ship the page.
    ServerRead {
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        oid: Oid,
    },
    /// Owner role (PS): SH page lock granted; ship the page.
    ServerReadPage {
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
    },
    /// Owner role: EX object lock granted; start the callback operation.
    ServerWrite {
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        oid: Oid,
    },
    /// Owner role (PS / explicit EX page): EX page lock granted.
    ServerWritePage {
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
    },
    /// Owner role: explicit lock granted at the server.
    ServerExplicit {
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    },
    /// Owner role: EX re-upgrade after a callback-blocked replication
    /// (paper §4.2.1) or during a callback redo (§4.3.2).
    CbUpgrade { cb: CbId },
    /// Client role, callback thread: page-level lock acquired; proceed to
    /// the object lock (hierarchical callbacks, §4.3.2).
    CbCtxPage { key: CbKey, txn: TxnId, oid: Oid },
    /// Client role, callback thread: object EX acquired; invalidate and
    /// acknowledge.
    CbCtxObj { key: CbKey, txn: TxnId, oid: Oid },
    /// Client role, callback thread: EX on a whole page/file/volume
    /// acquired; purge and acknowledge.
    CbCtxWhole {
        key: CbKey,
        txn: TxnId,
        target: CbTarget,
    },
}

/// Client-side key of a callback operation (callback ids are only unique
/// per issuing owner).
pub(crate) type CbKey = (SiteId, CbId);

/// What resumes when a request's reply arrives.
#[derive(Debug, Clone)]
pub(crate) enum ReqCont {
    /// A page fetch for `oid`; optionally continue into a write.
    Fetch {
        txn: TxnId,
        oid: Oid,
        then_write: Option<Option<Vec<u8>>>,
    },
    /// A PS page fetch for reading `oid`; optionally continue into a
    /// write instead.
    FetchPage {
        txn: TxnId,
        oid: Oid,
        then_write: Option<(Oid, Option<Vec<u8>>)>,
    },
    /// A write-permission request.
    Write {
        txn: TxnId,
        oid: Oid,
        bytes: Option<Vec<u8>>,
    },
    /// A PS page write-permission request (carrying the triggering
    /// object update).
    WritePage {
        txn: TxnId,
        page: PageId,
        oid: Oid,
        bytes: Option<Vec<u8>>,
    },
    /// An explicit lock request.
    Lock { txn: TxnId },
    /// A point-read of a forwarded object; completes the current op.
    ForwardRead { txn: TxnId },
    /// A point-read of a forwarded object that precedes an update of it
    /// (the before-image is needed for the log record).
    ForwardWrite {
        txn: TxnId,
        oid: Oid,
        bytes: Option<Vec<u8>>,
    },
    /// Single-participant commit awaiting `CommitOk`.
    Commit { txn: TxnId },
    /// 2PC prepare awaiting `Voted`.
    Prepare { txn: TxnId, site: SiteId },
}

/// What resumes when a disk request completes.
#[derive(Debug, Clone)]
pub(crate) enum DiskCont {
    /// Ship `page` to the requester (read-path buffer miss at the owner).
    Ship {
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
        requested: Option<Oid>,
    },
    /// Continue applying commit/prepare records (redo-at-server re-read,
    /// §3.3).
    CommitApply(commit::CommitApply),
    /// The log force at the end of commit application completed.
    CommitForced(commit::CommitApply),
    /// The WAL force at the end of a graceful drain completed; report
    /// `DrainOk` to the control plane (engine/drain.rs).
    DrainForced,
    /// A migration's `MigrateBegin` force completed at the source;
    /// report `MigratePrepared` (engine/migration.rs).
    MigratePrepareForced,
    /// A migration's `MigrateCommit` force completed at the source;
    /// publish the new layout and offer activation.
    MigrateCommitForced,
    /// A migration's staging force (`MigrateIn*`) completed at the
    /// destination; ack the transfer.
    MigrateInForced,
    /// Ship `page` to edge site `to` (edge-fetch buffer miss at the
    /// owner, DESIGN.md §11).
    EdgeShip {
        req: ReqId,
        to: SiteId,
        page: PageId,
    },
    /// Pure accounting (dirty-page writeback); nothing resumes.
    Accounted,
}

/// Why a timer was armed.
#[derive(Debug, Clone)]
pub(crate) enum TimerKind {
    /// A lock wait (any role) by `txn`; firing aborts the waiter (the
    /// SHORE timeout mechanism, §3.3/§5.5).
    LockWait { ticket: Ticket, txn: TxnId },
    /// A callback thread's lock wait at a client; firing notifies the
    /// owner to abort the calling-back transaction.
    CbWait { key: CbKey, txn: TxnId },
    /// A per-peer lease at a server (leases enabled only). Firing with no
    /// message heard from `site` for a full `lease_duration` declares the
    /// site crashed and triggers orphan cleanup; otherwise it re-arms for
    /// the remaining lease time.
    Lease { site: SiteId },
    /// The periodic client-side heartbeat tick (leases enabled only);
    /// firing sends [`Message::Heartbeat`] to every contacted peer and
    /// re-arms.
    Heartbeat,
    /// Bound on a callback fan-out's response time (leases or the
    /// slow-peer bypass enabled). Firing while the operation still has
    /// pending clients declares those clients crashed — they may be
    /// heartbeating but wedged mid-callback.
    CbResponse { cb: CbId },
    /// Backoff before re-sending a request an overloaded owner refused
    /// with [`Message::Busy`] (admission control, DESIGN.md §6).
    BusyRetry { req: ReqId },
    /// Periodic check of a graceful drain's completion condition
    /// (engine/drain.rs); re-arms until the drain finishes or cancels.
    DrainCheck,
    /// Periodic check of a migrating range's quiescence during the
    /// prepare step (engine/migration.rs).
    MigrationCheck,
    /// The edge site's periodic watch renew toward `owner` (DESIGN.md
    /// §11); re-arms itself while any watch-based tier is configured.
    EdgeRenew { owner: SiteId },
}

/// State of a client-side callback thread (the per-callback thread of
/// paper Fig. 3, footnote 2).
#[derive(Debug)]
#[allow(dead_code)]
pub(crate) struct CbCtx {
    pub txn: TxnId,
    pub target: CbTarget,
    /// Locks this thread has acquired (released when it completes).
    pub held: Vec<LockableId>,
    /// Ticket it is currently waiting on, if blocked.
    pub waiting: Option<Ticket>,
    /// Timer guarding the current wait.
    pub timer: Option<TimerId>,
}

/// State of a callback operation at its owning server.
#[derive(Debug)]
pub(crate) struct CbOp {
    pub txn: TxnId,
    pub target: CbTarget,
    /// Clients whose acknowledgment is still pending.
    pub pending: HashSet<SiteId>,
    /// Whether every acked client purged the whole page (pre-condition
    /// for an adaptive grant, §4.1.2).
    pub all_purged: bool,
    /// Second-objective violation detected (§4.3.2): the called-back
    /// object was handed to another client mid-operation; the callback
    /// must be redone.
    pub violated: bool,
    /// Outstanding EX re-upgrade at the server, if any.
    pub upgrade: Option<Ticket>,
    /// What to do when the operation completes.
    pub done: CbDone,
}

/// Completion action of a callback operation.
#[derive(Debug, Clone)]
pub(crate) enum CbDone {
    /// Grant object write permission (`WriteGranted`).
    Write { req: ReqId, to: SiteId, oid: Oid },
    /// Grant page write permission (PS protocol).
    WritePage { req: ReqId, to: SiteId },
    /// Grant an explicit lock.
    Lock { req: ReqId, to: SiteId },
}

/// A deescalation operation at the owner (§4.1.2).
#[derive(Debug)]
pub(crate) struct DeOp {
    pub page: PageId,
    /// The adaptive-lock holder the request was sent to; if it crashes,
    /// the operation completes with no reported locks.
    pub client: SiteId,
    /// Work that arrived for this page while deescalation was in flight
    /// (remote requests and owner-local application accesses);
    /// re-processed afterwards.
    pub queued: Vec<Input>,
}

/// One peer server of the system.
///
/// Drive it by calling [`PeerServer::handle`] with each input event and
/// executing the returned outputs (sending messages, arming timers,
/// performing "disk" waits). Both the threaded harness and the
/// discrete-event simulator do exactly this.
#[derive(Debug)]
pub struct PeerServer {
    pub(crate) site: SiteId,
    pub(crate) cfg: SystemConfig,
    pub(crate) owners: OwnershipDirectory,
    pub(crate) now: SimTime,

    // One lock table serves both roles: at the owner of a granule, a
    // local transaction's lock *is* its server lock (the peer-servers
    // unification of §3.3).
    pub(crate) locks: LockTable,
    pub(crate) txns: TxnRegistry,

    // Owner role.
    pub(crate) volume: Volume,
    pub(crate) residency: Residency,
    pub(crate) copy_table: CopyTable,
    pub(crate) log: ServerLog,
    pub(crate) cb_ops: HashMap<CbId, CbOp>,
    pub(crate) cb_by_object: HashMap<Oid, CbId>,
    pub(crate) de_ops: HashMap<DeId, DeOp>,
    pub(crate) de_by_page: HashMap<PageId, DeId>,
    /// Current overflow page for §4.4 forwarding.
    pub(crate) overflow_page: Option<PageId>,

    // Client role.
    pub(crate) cache: ClientCache,
    pub(crate) log_cache: LogCache,
    pub(crate) races: RaceTable,
    pub(crate) pending_fetches: HashMap<PageId, HashSet<ReqId>>,
    pub(crate) cb_ctxs: HashMap<CbKey, CbCtx>,

    // Large objects (paper §4.4).
    pub(crate) large: pscc_storage::LargeObjectStore,
    pub(crate) large_cache: HashMap<PageId, Vec<u8>>,
    pub(crate) large_reads: Vec<large::LargeRead>,
    pub(crate) large_writes: HashMap<ReqId, TxnId>,
    pub(crate) large_creates: HashMap<ReqId, TxnId>,
    pub(crate) large_invals: HashMap<ReqId, (SiteId, ReqId, HashSet<SiteId>)>,

    // Continuations.
    pub(crate) lock_conts: HashMap<Ticket, LockCont>,
    pub(crate) req_conts: HashMap<ReqId, ReqCont>,
    pub(crate) disk_conts: HashMap<DiskReqId, DiskCont>,
    pub(crate) timers: HashMap<TimerId, TimerKind>,
    pub(crate) ticket_timers: HashMap<Ticket, (TimerId, SimTime)>,

    // Timeout estimation (§5.5).
    pub(crate) timeout_est: TimeoutEstimator,

    // Crash detection (leases enabled only).
    /// When each remote peer was last heard from; a lease timer is
    /// armed for every entry.
    pub(crate) lease_heard: HashMap<SiteId, SimTime>,
    /// Remote peers this site has sent to (heartbeat recipients).
    pub(crate) hb_peers: std::collections::BTreeSet<SiteId>,
    /// Whether the periodic heartbeat timer is armed.
    pub(crate) hb_armed: bool,
    /// Peers already declared crashed (makes the declaration idempotent;
    /// a later message from the peer means it restarted and clears it).
    pub(crate) dead_sites: HashSet<SiteId>,

    // Restart recovery and the rejoin/epoch protocol (server role).
    /// This server's epoch: 1 at first boot, bumped by every restart
    /// recovery. Carried in the rejoin handshake to fence stale clients.
    pub(crate) epoch: u64,
    /// Epoch each peer last joined under. A value of `0` (never a real
    /// epoch) marks a peer that was declared dead here and must rejoin
    /// before new protocol work is served.
    pub(crate) joined: HashMap<SiteId, u64>,
    /// Set by restart recovery: the copy table is gone, so *every* peer
    /// must rejoin — first contact no longer joins implicitly.
    pub(crate) require_rejoin: bool,
    /// Client role: the epoch this site last completed a rejoin
    /// handshake under, per owner.
    pub(crate) peer_epochs: HashMap<SiteId, u64>,

    // Overload protection (DESIGN.md §6).
    /// Server role: remote data requests currently admitted, keyed by
    /// requester and request id. Bounded by `cfg.admission_cap`; a
    /// request arriving over the cap is refused with [`Message::Busy`].
    pub(crate) admitted: HashMap<(SiteId, ReqId), TxnId>,
    /// High-water mark of `admitted` (exported as a gauge).
    pub(crate) admitted_peak: usize,
    /// Client role: remaining request credits per owner (lazily seeded
    /// with `cfg.fetch_credits`).
    pub(crate) credits: HashMap<SiteId, u32>,
    /// Client role: data requests queued locally until a credit for
    /// their owner is returned by a reply.
    pub(crate) credit_waiters: HashMap<SiteId, VecDeque<Message>>,
    /// Client role: retained copies of in-flight data requests, so a
    /// `Busy` refusal can re-send them after backoff. Value is
    /// `(owner, message, busy-attempt count)`.
    pub(crate) inflight: HashMap<ReqId, (SiteId, Message, u32)>,
    /// Server role: remote transactions recently aborted here. Data
    /// requests and abort notices travel on different transport lanes,
    /// so a request can arrive *after* the abort that killed its
    /// transaction; admitting it would acquire locks nothing will ever
    /// release. Bounded FIFO memory (`DEAD_TXN_MEMORY`).
    pub(crate) dead_txns: HashSet<TxnId>,
    /// Insertion order of `dead_txns`, for FIFO eviction.
    pub(crate) dead_txns_order: VecDeque<TxnId>,

    // Control plane (DESIGN.md §8).
    /// In-progress or completed graceful drain, if any. While set, new
    /// remote data requests are refused with `Busy` (engine/drain.rs).
    pub(crate) draining: Option<drain::DrainState>,

    // Ownership migration (DESIGN.md §10).
    /// In-progress outbound migration at this site as the source.
    pub(crate) migrating: Option<migration::MigrationState>,
    /// Staged (not yet landed) inbound migration at this site as the
    /// destination.
    pub(crate) migrating_in: Option<migration::MigrationInbound>,
    /// Committed-away ranges `(lo, hi, to, layout)` whose destination
    /// has not yet acknowledged activation; cleanup (`MigrateEnd`,
    /// image discard) runs when `MigrateActivated` arrives.
    pub(crate) migrated_out: Vec<(u32, u32, SiteId, u64)>,
    /// Client role: when each redirect-stalled request first hit a
    /// stale `WrongOwner` (the `MigrationPause` stage's start stamp).
    pub(crate) migration_waits: HashMap<ReqId, SimTime>,

    // Edge tier (DESIGN.md §11). All empty unless `cfg.edge_tiers` is
    // non-empty — strict-only runs never touch any of it.
    /// Edge role: the lock-free page store.
    pub(crate) edge_cache: pscc_edge::EdgeCache,
    /// Edge role: per owner, the send time of the last acked watch
    /// renew (`SimTime::ZERO` = never validated). Presence of a key
    /// means the renew loop is running for that owner.
    pub(crate) edge_watch: HashMap<SiteId, SimTime>,
    /// Edge role: the current renew timer per owner (identity check for
    /// stale fires).
    pub(crate) edge_renew_timer: HashMap<SiteId, crate::msg::TimerId>,
    /// Edge role: outstanding renews awaiting their ack, with send time.
    pub(crate) edge_renews: HashMap<ReqId, (SiteId, SimTime)>,
    /// Edge role: last epoch seen from each owner (restart detection).
    pub(crate) edge_owner_epoch: HashMap<SiteId, u64>,
    /// Edge role: reads parked behind an in-flight edge fetch.
    pub(crate) edge_waiting: HashMap<PageId, Vec<(TxnId, Oid)>>,
    /// Edge role: the in-flight fetch per page `(req, send time)`.
    pub(crate) edge_fetching: HashMap<PageId, (ReqId, SimTime)>,
    /// Owner role: edge watch subscriptions (lease-reaped).
    pub(crate) edge_subs: pscc_edge::SubscriptionTable,
    /// Owner role: last published commit version per tiered page.
    pub(crate) edge_versions: HashMap<PageId, u64>,

    // Causal tracing (DESIGN.md §9). All empty/unused unless tracing
    // is enabled — untraced runs pay nothing on the hot path.
    /// The context of the traced message currently being handled, if
    /// any; outgoing sends become its children.
    pub(crate) cur_ctx: Option<TraceCtx>,
    /// Last span seen (or root span allocated) per transaction, the
    /// parent fallback for sends outside any message context.
    pub(crate) txn_spans: HashMap<TxnId, (SiteId, SpanId)>,
    /// Parked contexts of traced requests awaiting their reply, keyed
    /// by (requester, request id); FIFO-bounded by `REQ_CTX_MEMORY`.
    pub(crate) req_ctx: HashMap<(SiteId, ReqId), TraceCtx>,
    /// Insertion order of `req_ctx`, for FIFO eviction.
    pub(crate) req_ctx_order: VecDeque<(SiteId, ReqId)>,
    /// Span id allocator (site id packed into the high bits).
    next_span: u64,

    // Id allocation.
    next_req: u64,
    next_cb: u64,
    next_de: u64,
    next_timer: u64,
    next_disk: u64,

    // Self-addressed messages processed within the current handle call.
    pub(crate) internal: VecDeque<Input>,
    pub(crate) out: Vec<Output>,

    /// Event counters.
    pub stats: Counters,

    /// Latency histograms and the (optional) protocol event trace.
    pub obs: crate::obs::SiteObs,
}

impl PeerServer {
    /// Creates a peer server owning the pages `owners` assigns to `site`.
    ///
    /// The volume holds only this site's partition; the client cache is
    /// sized per the configuration (`client_buf_frac` for a pure client,
    /// `peer_buf_frac` when the site owns data — pass the fraction
    /// through `cfg`).
    pub fn new(site: SiteId, cfg: SystemConfig, owners: OwnerMap) -> Self {
        let my_pages = owners.pages_of(site, cfg.database_pages);
        let volume = Volume::create_partition(pscc_common::VolId(site.0), &cfg, &my_pages);
        let owns_data = !my_pages.is_empty();
        let cache_pages = if owns_data && matches!(owners, OwnerMap::Ranges(_)) {
            cfg.peer_buf_pages() as usize
        } else {
            cfg.client_buf_pages() as usize
        };
        let residency_pages = if matches!(owners, OwnerMap::Ranges(_)) {
            cfg.peer_buf_pages() as usize
        } else {
            cfg.server_buf_pages() as usize
        };
        let timeout_est = TimeoutEstimator::new(&cfg);
        PeerServer {
            site,
            owners: OwnershipDirectory::new(owners),
            now: SimTime::ZERO,
            locks: LockTable::new(),
            txns: TxnRegistry::new(),
            volume,
            residency: Residency::new(residency_pages.max(1)),
            copy_table: CopyTable::new(),
            log: ServerLog::new(),
            cb_ops: HashMap::new(),
            cb_by_object: HashMap::new(),
            de_ops: HashMap::new(),
            de_by_page: HashMap::new(),
            overflow_page: None,
            cache: ClientCache::new(cache_pages.max(1)),
            large: pscc_storage::LargeObjectStore::new(cfg.page_size),
            large_cache: HashMap::new(),
            large_reads: Vec::new(),
            large_writes: HashMap::new(),
            large_creates: HashMap::new(),
            large_invals: HashMap::new(),
            log_cache: LogCache::new(),
            races: RaceTable::new(),
            pending_fetches: HashMap::new(),
            cb_ctxs: HashMap::new(),
            lock_conts: HashMap::new(),
            req_conts: HashMap::new(),
            disk_conts: HashMap::new(),
            timers: HashMap::new(),
            ticket_timers: HashMap::new(),
            timeout_est,
            lease_heard: HashMap::new(),
            hb_peers: std::collections::BTreeSet::new(),
            hb_armed: false,
            dead_sites: HashSet::new(),
            epoch: 1,
            joined: HashMap::new(),
            require_rejoin: false,
            peer_epochs: HashMap::new(),
            admitted: HashMap::new(),
            admitted_peak: 0,
            credits: HashMap::new(),
            credit_waiters: HashMap::new(),
            inflight: HashMap::new(),
            dead_txns: HashSet::new(),
            dead_txns_order: VecDeque::new(),
            draining: None,
            migrating: None,
            migrating_in: None,
            migrated_out: Vec::new(),
            migration_waits: HashMap::new(),
            edge_cache: pscc_edge::EdgeCache::new(cache_pages.max(1)),
            edge_watch: HashMap::new(),
            edge_renew_timer: HashMap::new(),
            edge_renews: HashMap::new(),
            edge_owner_epoch: HashMap::new(),
            edge_waiting: HashMap::new(),
            edge_fetching: HashMap::new(),
            edge_subs: pscc_edge::SubscriptionTable::new(),
            edge_versions: HashMap::new(),
            cur_ctx: None,
            txn_spans: HashMap::new(),
            req_ctx: HashMap::new(),
            req_ctx_order: VecDeque::new(),
            next_span: 0,
            next_req: 0,
            next_cb: 0,
            next_de: 0,
            next_timer: 0,
            next_disk: 0,
            internal: VecDeque::new(),
            out: Vec::new(),
            stats: Counters::default(),
            obs: crate::obs::SiteObs::default(),
            cfg,
        }
    }

    /// Turns protocol event tracing on (ring of `cap` events per site)
    /// and returns the handle the harness keeps for snapshots. The lock
    /// table shares the handle so lock events are stamped consistently.
    pub fn enable_trace(&mut self, cap: usize) -> pscc_obs::event::TraceHandle {
        let h = self.obs.enable_trace(self.site, cap);
        self.locks.set_trace(Some(h.clone()));
        h
    }

    /// This site's id.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The adaptive lock-wait timeout estimator's current state (§5.5),
    /// for export as gauges.
    pub fn timeout_snapshot(&self) -> crate::timeout::TimeoutSnapshot {
        self.timeout_est.snapshot()
    }

    /// The configured protocol.
    pub fn protocol(&self) -> pscc_common::Protocol {
        self.cfg.protocol
    }

    /// Read-only access to the site's volume (tests and examples).
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// Transactions holding `id` in EX mode in this site's lock table.
    /// Chaos harnesses sum this across sites to check the one-exclusive-
    /// copy invariant while faults are in flight.
    pub fn ex_holders(&self, id: LockableId) -> Vec<TxnId> {
        self.locks
            .holders(id)
            .into_iter()
            .filter(|(_, m)| *m == LockMode::Ex)
            .map(|(t, _)| t)
            .collect()
    }

    /// Asserts that no transaction state lingers: empty lock table, no
    /// callback/deescalation operations, no suspended continuations, no
    /// live transactions. Test harnesses call this after draining a
    /// workload — any leftover is a protocol leak.
    ///
    /// # Panics
    ///
    /// Panics with a description of the leaked state.
    pub fn assert_quiescent(&self) {
        assert!(
            self.locks.is_empty(),
            "site {}: lock table not empty ({} granules)",
            self.site,
            self.locks.len()
        );
        assert!(
            self.cb_ops.is_empty(),
            "site {}: callback ops leak",
            self.site
        );
        assert!(
            self.cb_ctxs.is_empty(),
            "site {}: callback ctx leak",
            self.site
        );
        assert!(
            self.de_ops.is_empty(),
            "site {}: deescalation leak",
            self.site
        );
        assert!(
            self.lock_conts.is_empty(),
            "site {}: lock continuation leak",
            self.site
        );
        assert!(
            self.req_conts.is_empty(),
            "site {}: request continuation leak",
            self.site
        );
        assert!(
            self.txns.home.is_empty() && self.txns.remote.is_empty(),
            "site {}: live transactions remain",
            self.site
        );
        assert!(
            self.pending_fetches.is_empty(),
            "site {}: pending fetches leak",
            self.site
        );
        assert!(
            self.admitted.is_empty(),
            "site {}: admitted requests leak ({} slots)",
            self.site,
            self.admitted.len()
        );
        assert!(
            self.inflight.is_empty(),
            "site {}: in-flight request copies leak",
            self.site
        );
        assert!(
            self.credit_waiters.values().all(VecDeque::is_empty),
            "site {}: credit-stalled requests leak",
            self.site
        );
        assert!(
            self.migrating.is_none(),
            "site {}: outbound migration still in flight",
            self.site
        );
        assert!(
            self.migrating_in.is_none(),
            "site {}: staged inbound migration leak",
            self.site
        );
        assert!(
            self.migrated_out.is_empty(),
            "site {}: unacknowledged migrated-out ranges leak",
            self.site
        );
        assert!(
            self.edge_waiting.is_empty(),
            "site {}: reads parked on edge fetches leak",
            self.site
        );
        assert!(
            self.edge_fetching.is_empty(),
            "site {}: in-flight edge fetches leak",
            self.site
        );
        self.locks.assert_consistent();
    }

    /// Detailed dump of live transactions and their locks (diagnostics).
    pub fn debug_txns(&self) -> String {
        let mut out = String::new();
        for t in self.txns.remote.keys() {
            out.push_str(&format!(
                "  remote {t}: locks {:?}\n",
                self.locks.locks_of(*t)
            ));
        }
        for t in self.txns.home.keys() {
            out.push_str(&format!(
                "  home {t}: locks {:?}\n",
                self.locks.locks_of(*t)
            ));
        }
        out
    }

    /// A one-line state summary for diagnosing stuck systems.
    pub fn debug_summary(&self) -> String {
        format!(
            "site {}: locks={} home={} remote={} cb_ops={} cb_ctxs={} de_ops={}              lock_conts={} req_conts={} fetches={} waiting={:?}",
            self.site,
            self.locks.len(),
            self.txns.home.len(),
            self.txns.remote.len(),
            self.cb_ops.len(),
            self.cb_ctxs.len(),
            self.de_ops.len(),
            self.lock_conts.len(),
            self.req_conts.len(),
            self.pending_fetches.len(),
            self.locks.waiting_txns(),
        )
    }

    /// Handles one input event at virtual time `now`, returning the
    /// output effects. Self-addressed messages are processed within this
    /// call (zero message cost — the peer-servers local fast path).
    pub fn handle(&mut self, now: SimTime, input: Input) -> Vec<Output> {
        debug_assert!(now >= self.now, "time went backwards");
        self.now = now;
        self.obs.set_now(now);
        self.internal.push_back(input);
        while let Some(ev) = self.internal.pop_front() {
            self.dispatch(ev);
        }
        std::mem::take(&mut self.out)
    }

    fn dispatch(&mut self, input: Input) {
        // Each input establishes its own causal context; a traced
        // message re-sets it in `handle_msg`.
        self.cur_ctx = None;
        match input {
            Input::App(req) => self.handle_app(req),
            Input::Msg { from, msg } => self.handle_msg(from, msg),
            Input::DiskDone { req } => self.handle_disk_done(req),
            Input::TimerFired { timer } => self.handle_timer(timer),
        }
    }

    // ------------------------------------------------------------------
    // Effect helpers
    // ------------------------------------------------------------------

    /// Sends `msg` to `to`; a self-send loops back internally for free.
    ///
    /// Remote sends run the overload-protection bookkeeping (DESIGN.md
    /// §6): a departing request verdict retires its admission slot, and
    /// an outgoing data request spends one of the owner's credits — or
    /// waits locally when the credits are exhausted.
    pub(crate) fn send(&mut self, to: SiteId, msg: Message) {
        if to == self.site {
            self.internal.push_back(Input::Msg {
                from: self.site,
                msg,
            });
            return;
        }
        match &msg {
            Message::ReadReply { req, .. }
            | Message::WriteGranted { req, .. }
            | Message::LockGranted { req }
            | Message::ReqDenied { req, .. }
            | Message::WrongOwner { req, .. } => {
                self.admitted.remove(&(to, *req));
            }
            _ => {}
        }
        if let Some((req, txn)) = credit_request(&msg) {
            let cap = self.cfg.fetch_credits.max(1);
            let c = self.credits.entry(to).or_insert(cap);
            if *c == 0 {
                self.stats.credits_stalled += 1;
                self.obs
                    .record(pscc_obs::EventKind::CreditStalled { peer: to });
                self.obs.queue_begin(req, txn, self.now);
                self.credit_waiters.entry(to).or_default().push_back(msg);
                return;
            }
            *c -= 1;
            // A request departing after a credit stall or busy backoff
            // closes its queue-wait interval.
            self.obs.queue_end(req, self.now);
            self.inflight
                .entry(req)
                .or_insert_with(|| (to, msg.clone(), 0));
        }
        let msg = self.trace_wrap(to, msg);
        self.stats.msgs_sent += 1;
        // Control-plane replies go to the supervisor, which is not a
        // peer: never start heartbeating it.
        let control = msg.is_control_plane();
        self.out.push(Output::Send { to, msg });
        if self.cfg.leases_enabled && !control {
            self.note_contact(to);
        }
    }

    // ------------------------------------------------------------------
    // Causal tracing (DESIGN.md §9)
    // ------------------------------------------------------------------

    fn fresh_span(&mut self) -> SpanId {
        self.next_span += 1;
        SpanId((u64::from(self.site.0) << 40) | self.next_span)
    }

    /// Wraps a departing message in a [`Message::Traced`] envelope when
    /// tracing is enabled and a causal parent can be established:
    /// the context being handled right now, the parked context of the
    /// request this message replies to, or the transaction's own span
    /// chain (allocating a root span for a fresh home transaction).
    fn trace_wrap(&mut self, to: SiteId, msg: Message) -> Message {
        if self.obs.trace_handle().is_none() || matches!(msg, Message::Traced { .. }) {
            return msg;
        }
        let msg_txn = msg.txn_id();
        let parked = msg
            .req_of_reply()
            .and_then(|req| self.req_ctx.remove(&(to, req)));
        let (txn, origin, parent) = if let Some(c) = self.cur_ctx {
            // A message for a *different* transaction sent from this
            // context is a real causal edge (e.g. a commit's release
            // unblocking another transaction's grant) — keep the edge,
            // attribute the hop to the message's own transaction.
            let txn = msg_txn.unwrap_or(c.txn);
            let origin = if txn == c.txn { c.origin } else { txn.site };
            (txn, origin, c.span)
        } else if let Some(c) = parked {
            (c.txn, c.origin, c.span)
        } else if let Some(t) = msg_txn {
            let fresh = self.fresh_span();
            let (origin, parent) = *self
                .txn_spans
                .entry(t)
                .or_insert_with(|| (t.site, SpanId::NONE));
            let _ = fresh; // root span id reserved even when reused
            (t, origin, parent)
        } else {
            return msg; // no causal anchor: send untraced
        };
        let ctx = TraceCtx {
            txn,
            origin,
            span: self.fresh_span(),
            parent,
        };
        // The span just sent becomes the transaction's latest local
        // anchor, so follow-up sends outside any message context (disk
        // continuations, timer fires) chain rather than re-rooting.
        self.txn_spans.insert(txn, (origin, ctx.span));
        self.obs.record(pscc_obs::EventKind::MsgSend {
            ctx,
            to,
            label: msg.label(),
        });
        Message::Traced {
            ctx,
            inner: Box::new(msg),
        }
    }

    /// Books an arriving traced context: it becomes the current causal
    /// context, the transaction's latest span anchor, and — for a
    /// request expecting a reply — the parked context its (possibly
    /// asynchronous) reply will resume.
    fn trace_note_recv(&mut self, from: SiteId, ctx: TraceCtx, inner: &Message) {
        self.cur_ctx = Some(ctx);
        self.txn_spans.insert(ctx.txn, (ctx.origin, ctx.span));
        if let Some(req) = inner.req_of_request() {
            if self.req_ctx.insert((from, req), ctx).is_none() {
                self.req_ctx_order.push_back((from, req));
                while self.req_ctx_order.len() > REQ_CTX_MEMORY {
                    if let Some(old) = self.req_ctx_order.pop_front() {
                        self.req_ctx.remove(&old);
                    }
                }
            }
        }
        self.obs.record(pscc_obs::EventKind::MsgRecv {
            ctx,
            from,
            label: inner.label(),
        });
    }

    /// Drops a finished transaction's span anchor (commit or abort).
    pub(crate) fn trace_txn_done(&mut self, txn: TxnId) {
        self.txn_spans.remove(&txn);
    }

    /// Returns one credit for `site` (capped at the configured pool) and
    /// releases the oldest request waiting on it, if any.
    pub(crate) fn credit_release(&mut self, site: SiteId) {
        let cap = self.cfg.fetch_credits.max(1);
        let c = self.credits.entry(site).or_insert(cap);
        *c = (*c + 1).min(cap);
        let next = self
            .credit_waiters
            .get_mut(&site)
            .and_then(std::collections::VecDeque::pop_front);
        if self
            .credit_waiters
            .get(&site)
            .is_some_and(VecDeque::is_empty)
        {
            self.credit_waiters.remove(&site);
        }
        if let Some(msg) = next {
            self.send(site, msg);
        }
    }

    /// Remembers a remote transaction aborted at this server, so a data
    /// request of its that was reordered behind the abort (the lanes
    /// differ: aborts ride the priority lane, data the bulk lane) is
    /// refused at admission instead of acquiring lock state nothing
    /// will ever release.
    pub(crate) fn tombstone_txn(&mut self, txn: TxnId) {
        if txn.site == self.site || !self.dead_txns.insert(txn) {
            return;
        }
        self.obs.record(pscc_obs::EventKind::TxnTombstoned { txn });
        self.dead_txns_order.push_back(txn);
        while self.dead_txns_order.len() > DEAD_TXN_MEMORY {
            if let Some(old) = self.dead_txns_order.pop_front() {
                self.dead_txns.remove(&old);
            }
        }
    }

    /// Tombstones currently remembered for aborted remote transactions
    /// (occupancy of the bounded dead-transaction filter).
    pub fn dead_txn_count(&self) -> usize {
        self.dead_txns.len()
    }

    /// Admits a remote data request, or refuses it with `Busy` when the
    /// server already has `admission_cap` requests in progress. Work
    /// re-driven from a deescalation queue is already admitted and
    /// passes unconditionally.
    pub(crate) fn admit(&mut self, from: SiteId, req: ReqId, txn: TxnId) -> bool {
        if self.dead_txns.contains(&txn) {
            // The home already aborted this transaction; the request
            // overtook nothing — its abort overtook *it*. Refusing with
            // the abort verdict (rather than `Busy`) stops the client
            // from retrying a transaction it has already forgotten.
            self.stats.stale_requests_refused += 1;
            self.send(
                from,
                Message::TxnAborted {
                    txn,
                    reason: AbortReason::Internal,
                },
            );
            return false;
        }
        if self.admitted.contains_key(&(from, req)) {
            return true;
        }
        if self.drain_refuses_admission() || self.admitted.len() >= self.cfg.admission_cap as usize
        {
            self.stats.requests_shed += 1;
            self.obs
                .record(pscc_obs::EventKind::RequestShed { peer: from });
            self.send(
                from,
                Message::Busy {
                    req,
                    retry_after: self.cfg.busy_retry_hint,
                },
            );
            return false;
        }
        self.admitted.insert((from, req), txn);
        self.admitted_peak = self.admitted_peak.max(self.admitted.len());
        true
    }

    /// Server role: remote data requests currently admitted (the
    /// engine-level queue depth, exported as a gauge).
    pub fn queue_depth(&self) -> usize {
        self.admitted.len()
    }

    /// High-water mark of [`Self::queue_depth`] over the site's life.
    pub fn queue_depth_peak(&self) -> usize {
        self.admitted_peak
    }

    /// Fingerprint of this site's live non-Strict edge-tier map
    /// (DESIGN.md §11), exported so the control plane can watch a tier
    /// rollout converge.
    pub fn tiers_fingerprint(&self) -> u64 {
        self.cfg.tiers_fingerprint()
    }

    pub(crate) fn reply_app(&mut self, reply: AppReply) {
        self.out.push(Output::App(reply));
    }

    pub(crate) fn fresh_req(&mut self) -> ReqId {
        self.next_req += 1;
        ReqId(self.next_req)
    }

    pub(crate) fn fresh_cb(&mut self) -> CbId {
        self.next_cb += 1;
        CbId(self.next_cb)
    }

    pub(crate) fn fresh_de(&mut self) -> DeId {
        self.next_de += 1;
        DeId(self.next_de)
    }

    pub(crate) fn fresh_timer(&mut self) -> TimerId {
        self.next_timer += 1;
        TimerId(self.next_timer)
    }

    pub(crate) fn disk(&mut self, op: DiskOp, cont: DiskCont) {
        self.next_disk += 1;
        let req = DiskReqId(self.next_disk);
        match op {
            DiskOp::ReadPage(_) => self.stats.disk_reads += 1,
            DiskOp::WritePage(_) | DiskOp::WriteLog => self.stats.disk_writes += 1,
        }
        self.disk_conts.insert(req, cont);
        self.out.push(Output::Disk { req, op });
    }

    /// Touches a page in the owner-role buffer, charging writeback I/O
    /// for dirty evictions. Returns `true` if the page was resident (no
    /// read needed).
    pub(crate) fn touch_resident(&mut self, page: PageId, dirty: bool) -> bool {
        let t = self.residency.touch(page, dirty);
        if let Some(victim) = t.writeback {
            self.disk(DiskOp::WritePage(victim), DiskCont::Accounted);
        }
        !t.miss
    }

    /// Arms the adaptive lock-wait timeout for a blocked ticket.
    pub(crate) fn arm_lock_timer(&mut self, ticket: Ticket, txn: TxnId) {
        let timer = self.fresh_timer();
        let delay = self.timeout_est.timeout();
        self.timers
            .insert(timer, TimerKind::LockWait { ticket, txn });
        self.ticket_timers.insert(ticket, (timer, self.now));
        self.stats.lock_waits += 1;
        self.out.push(Output::ArmTimer { timer, delay });
    }

    /// Records the end of a lock wait (grant or cancel) and retires its
    /// timer.
    pub(crate) fn finish_wait(&mut self, ticket: Ticket, record: bool) {
        if let Some((timer, armed_at)) = self.ticket_timers.remove(&ticket) {
            let kind = self.timers.remove(&timer);
            if record {
                let waited = self.now.since(armed_at);
                self.timeout_est.record_wait(waited);
                self.obs.lock_wait.record(waited);
                if let Some(TimerKind::LockWait { txn, .. }) = kind {
                    self.obs.stage_sample(txn, Stage::LockWait, waited);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Grant processing and deadlock handling
    // ------------------------------------------------------------------

    /// Dispatches lock grants produced by any lock-table mutation.
    pub(crate) fn process_grants(&mut self, grants: Vec<pscc_lockmgr::Grant>) {
        for g in grants {
            self.finish_wait(g.ticket, true);
            let Some(cont) = self.lock_conts.remove(&g.ticket) else {
                continue;
            };
            self.resume_lock(cont);
        }
    }

    /// Runs one granted continuation.
    pub(crate) fn resume_lock(&mut self, cont: LockCont) {
        match cont {
            LockCont::LocalAccess {
                txn,
                oid,
                write,
                bytes,
            } => self.client_access_locked(txn, oid, write, bytes),
            LockCont::LocalPage {
                txn,
                oid,
                write,
                bytes,
            } => self.client_ps_locked(txn, oid, write, bytes),
            LockCont::LocalExplicit { txn, item, mode } => {
                self.client_explicit_locked(txn, item, mode)
            }
            LockCont::ServerRead {
                req,
                from,
                txn,
                oid,
            } => self.server_read_locked(req, from, txn, oid),
            LockCont::ServerReadPage {
                req,
                from,
                txn,
                page,
            } => self.server_read_page_locked(req, from, txn, page),
            LockCont::ServerWrite {
                req,
                from,
                txn,
                oid,
            } => self.server_write_locked(req, from, txn, oid),
            LockCont::ServerWritePage {
                req,
                from,
                txn,
                page,
            } => self.server_write_page_locked(req, from, txn, page),
            LockCont::ServerExplicit {
                req,
                from,
                txn,
                item,
                mode,
            } => self.server_explicit_locked(req, from, txn, item, mode),
            LockCont::CbUpgrade { cb } => self.server_cb_upgrade_done(cb),
            LockCont::CbCtxPage { key, txn, oid } => self.cb_ctx_page_locked(key, txn, oid),
            LockCont::CbCtxObj { key, txn, oid } => self.cb_ctx_obj_locked(key, txn, oid),
            LockCont::CbCtxWhole { key, txn, target } => self.cb_ctx_whole_locked(key, txn, target),
        }
    }

    /// After any request blocks, check for deadlocks and abort the
    /// youngest member of each cycle (paper §4.2.1: the deadlock
    /// detector runs at the server holding the lock state).
    pub(crate) fn check_deadlocks(&mut self) {
        let cycles = self.locks.detect_deadlocks();
        for cycle in cycles {
            // Youngest = max (seq, site).
            if let Some(victim) = cycle.iter().max_by_key(|t| (t.seq, t.site.0)).copied() {
                self.stats.deadlock_aborts += 1;
                self.abort_txn_here(victim, AbortReason::Deadlock);
            }
        }
    }

    fn handle_timer(&mut self, timer: TimerId) {
        let Some(kind) = self.timers.remove(&timer) else {
            return; // stale fire
        };
        match kind {
            TimerKind::LockWait { ticket, txn } => {
                if self.locks.ticket_info(ticket).is_none() {
                    return; // already granted/cancelled
                }
                self.ticket_timers.remove(&ticket);
                self.stats.timeout_aborts += 1;
                self.abort_txn_here(txn, AbortReason::LockTimeout);
            }
            TimerKind::CbWait { key, txn } => {
                let still_waiting = self.cb_ctxs.get(&key).is_some_and(|c| c.waiting.is_some());
                if !still_waiting {
                    return;
                }
                // Notify the owner so the calling-back transaction gets
                // aborted; drop the local callback thread.
                self.cancel_cb_ctx(key);
                self.stats.timeout_aborts += 1;
                let (owner, cb) = key;
                self.send(owner, Message::CbTimeout { cb });
                let _ = txn;
            }
            TimerKind::Lease { site } => self.lease_fired(site),
            TimerKind::Heartbeat => self.heartbeat_fired(),
            TimerKind::CbResponse { cb } => self.cb_response_fired(cb),
            TimerKind::BusyRetry { req } => self.busy_retry_fired(req),
            TimerKind::DrainCheck => self.drain_check_fired(),
            TimerKind::MigrationCheck => self.migration_check_fired(),
            TimerKind::EdgeRenew { owner } => self.edge_renew_fired(timer, owner),
        }
    }

    fn handle_disk_done(&mut self, req: DiskReqId) {
        let Some(cont) = self.disk_conts.remove(&req) else {
            return;
        };
        match cont {
            DiskCont::Ship {
                req,
                from,
                txn,
                page,
                requested,
            } => self.server_ship(req, from, txn, page, requested),
            DiskCont::CommitApply(state) => self.commit_apply_step(state),
            DiskCont::CommitForced(state) => self.commit_forced(state),
            DiskCont::DrainForced => self.drain_forced(),
            DiskCont::MigratePrepareForced => self.migrate_prepare_forced(),
            DiskCont::MigrateCommitForced => self.migrate_commit_forced(),
            DiskCont::MigrateInForced => self.migrate_in_forced(),
            DiskCont::EdgeShip { req, to, page } => self.server_edge_ship(req, to, page),
            DiskCont::Accounted => {}
        }
    }

    // ------------------------------------------------------------------
    // Input routing
    // ------------------------------------------------------------------

    fn handle_app(&mut self, req: crate::msg::AppRequest) {
        match (req.txn, req.op) {
            (None, AppOp::Begin) => {
                let txn = self.txns.next_txn_id(self.site);
                self.txns.home.insert(txn, HomeTxn::new(txn, req.app));
                self.obs.txn_begin(txn, self.now);
                self.reply_app(AppReply::Started { app: req.app, txn });
            }
            (Some(txn), op) => {
                let Some(home) = self.txns.home.get_mut(&txn) else {
                    return; // unknown (e.g. already aborted): drop
                };
                if home.status != TxnStatus::Active {
                    return;
                }
                home.current_op = Some(op.clone());
                match op {
                    AppOp::Begin => {}
                    AppOp::Read(oid) => {
                        // Tiered files may serve from the lock-free edge
                        // cache (DESIGN.md §11); everything else runs the
                        // serializable path.
                        if !self.edge_try_read(txn, oid) {
                            self.client_access(txn, oid, false, None)
                        }
                    }
                    AppOp::Write { oid, bytes } => self.client_access(txn, oid, true, bytes),
                    AppOp::Lock { item, mode } => self.client_explicit(txn, item, mode),
                    AppOp::Create { page, bytes } => self.client_create(txn, page, bytes),
                    AppOp::Delete(oid) => self.client_delete(txn, oid),
                    AppOp::CreateLarge {
                        header_page,
                        content,
                    } => self.client_create_large(txn, header_page, content),
                    AppOp::ReadLarge {
                        header,
                        offset,
                        len,
                    } => self.client_read_large(txn, header, offset, len),
                    AppOp::WriteLarge {
                        header,
                        offset,
                        bytes,
                    } => self.client_write_large(txn, header, offset, bytes),
                    AppOp::Commit => self.client_commit(txn),
                    AppOp::Abort => {
                        self.stats.aborts += 1;
                        self.abort_txn_here(txn, AbortReason::User);
                    }
                }
            }
            (None, _) => {}
        }
    }

    fn handle_msg(&mut self, from: SiteId, msg: Message) {
        // Peel the tracing envelope first: the inner message drives the
        // fence, admission, and credit machinery; the context anchors
        // every message this hop sends in turn.
        let msg = match msg {
            Message::Traced { ctx, inner } => {
                self.trace_note_recv(from, ctx, &inner);
                *inner
            }
            m => m,
        };
        // Control-plane messages come from the supervisor, not a peer:
        // no lease is armed for their sender (it owns no data and does
        // not heartbeat).
        if self.cfg.leases_enabled && from != self.site && !msg.is_control_plane() {
            self.observe_peer(from);
        }
        // Epoch fence: a peer that must rejoin (this server restarted,
        // or declared it dead) gets `RejoinRequired` and its new-work
        // requests dropped (see engine/recovery.rs).
        if self.fence_check(from, &msg) {
            return;
        }
        // Overload protection (DESIGN.md §6): data requests from remote
        // peers pass admission control; incoming request verdicts return
        // the credit they consumed (and retire the retained in-flight
        // copy) before normal processing.
        if from != self.site {
            match &msg {
                Message::ReadObj { req, txn, .. }
                | Message::ReadPage { req, txn, .. }
                | Message::WriteObj { req, txn, .. }
                | Message::WritePage { req, txn, .. }
                | Message::LockItem { req, txn, .. }
                    if !self.admit(from, *req, *txn) =>
                {
                    return;
                }
                Message::ReadReply { req, .. }
                | Message::WriteGranted { req, .. }
                | Message::LockGranted { req }
                | Message::ReqDenied { req, .. } => {
                    self.inflight.remove(req);
                    self.credit_release(from);
                }
                // A redirect keeps the retained in-flight copy (it will
                // be re-routed), but returns the credit it consumed.
                Message::Busy { .. } | Message::WrongOwner { .. } => self.credit_release(from),
                _ => {}
            }
        }
        match msg {
            Message::Heartbeat => (),
            // Owner role.
            Message::ReadObj { req, txn, oid } => self.server_read(req, from, txn, oid),
            Message::ReadPage { req, txn, page } => self.server_read_page(req, from, txn, page),
            Message::WriteObj { req, txn, oid } => self.server_write(req, from, txn, oid),
            Message::WritePage { req, txn, page } => self.server_write_page(req, from, txn, page),
            Message::LockItem {
                req,
                txn,
                item,
                mode,
            } => self.server_explicit(req, from, txn, item, mode),
            Message::CbBlocked { cb, holders } => self.server_cb_blocked(from, cb, holders),
            Message::CbOk { cb, purged_page } => self.server_cb_ok(cb, from, purged_page),
            Message::CbTimeout { cb } => self.server_cb_timeout(cb),
            Message::DeescalateReply { de, page, ex_locks } => {
                self.server_deescalate_reply(de, page, ex_locks)
            }
            Message::Purge {
                client,
                page,
                ship_seq,
                replicate,
                log_records,
            } => self.server_purge(client, page, ship_seq, replicate, log_records),
            Message::CommitReq { req, txn, records } => {
                self.server_commit_req(req, from, txn, records)
            }
            Message::Prepare { req, txn, records } => self.server_prepare(req, from, txn, records),
            Message::Decide { txn, commit } => self.server_decide(from, txn, commit),
            Message::AbortTxn { txn } => self.server_abort_txn(txn),

            // Client role.
            Message::ReadReply { req, snapshot } => self.client_read_reply(req, snapshot),
            Message::WriteGranted { req, adaptive } => self.client_write_granted(req, adaptive),
            Message::LockGranted { req } => self.client_lock_granted(req),
            Message::ReqDenied { req, reason } => self.client_req_denied(req, reason),
            Message::Callback { cb, txn, target } => self.client_callback(from, cb, txn, target),
            Message::CbCancel { cb } => self.cancel_cb_ctx((from, cb)),
            Message::Deescalate { de, page } => self.client_deescalate(from, de, page),
            Message::Busy { req, retry_after } => self.client_busy(from, req, retry_after),
            Message::CommitOk { req } => self.client_commit_ok(req),
            Message::Voted { req, txn, yes } => self.register_vote(req, txn, yes),
            Message::Decided { txn } => self.client_decided(from, txn),
            Message::TxnAborted { txn, reason } => self.client_txn_aborted(txn, reason),

            // Restart recovery and the rejoin/epoch protocol.
            Message::RejoinRequired { epoch } => self.client_rejoin_required(from, epoch),
            Message::Rejoin { epoch } => self.server_rejoin(from, epoch),
            Message::RejoinOk { epoch } => self.client_rejoin_ok(from, epoch),
            Message::QueryTxn { txn } => self.handle_query_txn(from, txn),
            Message::TxnResolved { txn, committed } => {
                self.client_txn_resolved(from, txn, committed)
            }

            // Control plane (DESIGN.md §8).
            Message::DrainReq { req } => self.server_drain_req(from, req),
            Message::UndrainReq { req } => self.server_undrain_req(from, req),
            // Drain verdicts are addressed to the supervisor; an engine
            // receiving one (e.g. a duplicated frame) ignores it.
            Message::DrainOk { .. } | Message::UndrainOk { .. } => (),

            // Ownership migration (DESIGN.md §10).
            Message::MigratePrepare { req, lo, hi, to } => {
                self.server_migrate_prepare(from, req, lo, hi, to)
            }
            Message::MigrateTransfer { req } => self.server_migrate_transfer(from, req),
            Message::MigrateAbortReq { req } => self.server_migrate_abort(from, req),
            Message::TransferChunk {
                lo,
                hi,
                layout,
                pages,
                copies,
            } => self.server_transfer_chunk(from, lo, hi, layout, pages, copies),
            Message::TransferAck { lo, hi } => self.server_transfer_ack(from, lo, hi),
            Message::MigrateActivate { lo, hi, layout } => {
                self.server_migrate_activate(from, lo, hi, layout)
            }
            Message::MigrateActivated { lo, hi, layout } => {
                self.server_migrate_activated(from, lo, hi, layout)
            }
            Message::QueryMigration { lo, hi, layout } => {
                self.server_query_migration(from, lo, hi, layout)
            }
            Message::MigrationResolved {
                lo,
                hi,
                layout,
                committed,
            } => self.server_migration_resolved(from, lo, hi, layout, committed),
            Message::WrongOwner {
                req,
                lo,
                hi,
                layout,
                new_owner,
            } => self.client_wrong_owner(from, req, lo, hi, layout, new_owner),
            // Migration step replies are addressed to the supervisor;
            // an engine receiving one ignores it.
            Message::MigratePrepared { .. }
            | Message::MigrateDone { .. }
            | Message::MigrateAborted { .. } => (),

            // Large objects (paper §4.4).
            Message::FetchLargePage { req, page } => self.server_fetch_large(req, from, page),
            Message::LargePageReply { req, page, bytes } => {
                self.client_large_page_reply(req, page, bytes)
            }
            Message::WriteLargeReq {
                req,
                txn,
                header,
                offset,
                bytes,
            } => self.server_write_large(req, from, txn, header, offset, bytes),
            Message::WriteLargeOk { req } => self.client_write_large_ok(req),
            Message::LargeInval { inv, pages } => self.client_large_inval(from, inv, pages),
            Message::LargeInvalOk { inv } => self.server_large_inval_ok(from, inv),
            Message::CreateLargeReq {
                req,
                txn,
                header_page,
                content,
            } => self.server_create_large(req, from, txn, header_page, content),
            Message::CreateLargeOk { req, header } => self.client_create_large_ok(req, header),

            // Forwarded (size-grown) objects, §4.4.
            Message::ReadForwarded { req, txn, oid } => {
                self.server_read_forwarded(req, from, txn, oid)
            }
            Message::ObjectBytes { req, bytes } => self.client_object_bytes(req, bytes),

            // Edge tier (DESIGN.md §11).
            Message::EdgeFetch {
                req,
                page,
                watch,
                lease,
            } => self.server_edge_fetch(from, req, page, watch, lease),
            Message::EdgePage {
                req,
                page,
                version,
                epoch,
                image,
            } => self.edge_page(from, req, page, version, epoch, image),
            Message::EdgeInvalidate { pages } => self.edge_invalidate(pages),
            Message::EdgeRenew { req, lease, files } => {
                self.server_edge_renew(from, req, lease, files)
            }
            Message::EdgeRenewOk {
                req,
                epoch,
                resubscribed,
            } => self.edge_renew_ok(from, req, epoch, resubscribed),
            Message::SetTierReq { req, file, tier } => self.handle_set_tier(from, req, file, tier),
            Message::SetTierOk { .. } => (),

            // Unreachable: the envelope was peeled at the top of this
            // function (nested envelopes are never produced).
            Message::Traced { inner, .. } => {
                debug_assert!(false, "nested Traced envelope");
                self.handle_msg(from, *inner)
            }
        }
    }
}

/// The request and transaction ids of a credit-consuming data request
/// (the five message kinds subject to flow and admission control); the
/// consistency lane — callbacks, commit, 2PC, rejoin — is exempt so
/// overload can never wedge transaction termination.
pub(crate) fn credit_request(msg: &Message) -> Option<(ReqId, TxnId)> {
    match msg {
        Message::ReadObj { req, txn, .. }
        | Message::ReadPage { req, txn, .. }
        | Message::WriteObj { req, txn, .. }
        | Message::WritePage { req, txn, .. }
        | Message::LockItem { req, txn, .. } => Some((*req, *txn)),
        _ => None,
    }
}
