//! Server restart recovery and the rejoin/epoch protocol.
//!
//! **Restart** ([`PeerServer::recover`]) rebuilds a crashed owner from
//! the durable image its WAL left behind: `pscc_recovery::restart` runs
//! the ARIES-style analysis/redo/undo passes, then the engine
//! re-registers every in-doubt 2PC participant (records back in flight,
//! EX object locks re-acquired) and asks each coordinator for the
//! outcome with [`Message::QueryTxn`] — presumed abort when the
//! coordinator has forgotten the transaction.
//!
//! **Epochs** fence the recovered server from the stale world. Each
//! server carries an epoch (1 at first boot, +1 per restart) and a
//! `joined` registry of peers admitted under it. Because the copy table
//! and lock state died with the crash, a restarted server cannot honor
//! any pre-crash registration: every peer must complete the rejoin
//! handshake before new protocol work is served. The same fence covers
//! false suspicion (§4.2.4 hazard): [`PeerServer::declare_site_dead`]
//! marks the suspect with the must-rejoin sentinel, so a revived or
//! wrongly-suspected client — possibly still holding an EX copy whose
//! registration was revoked — finds its requests refused with
//! [`Message::RejoinRequired`] instead of silently violating the
//! one-exclusive-copy invariant.
//!
//! The **client half** reacts to `RejoinRequired` by treating the owner
//! as reborn: purge every cached page it owns (they are no longer
//! protected by callbacks), void adaptive/page write grants on them,
//! abort active transactions that touched the owner, resolve in-flight
//! commits against the owner's durable outcome (`QueryTxn` →
//! [`Message::TxnResolved`]), and finally send [`Message::Rejoin`].
//! Pages are re-fetched lazily afterwards — re-registration is implicit
//! in the normal fetch path.

use super::{PeerServer, ReqCont};
use crate::msg::{Message, Output, ReqId};
use crate::owner_map::OwnerMap;
use crate::txn::TxnStatus;
use pscc_common::{AbortReason, LockMode, LockableId, Oid, PageId, SiteId, SystemConfig, TxnId};
use pscc_lockmgr::Acquire;
use pscc_obs::EventKind;
use pscc_wal::{DurableState, LogPayload};

/// Messages that start new protocol work at an owner — the fenced
/// category. Everything else (replies, acks, decisions, heartbeats, the
/// rejoin handshake itself, and outcome queries) must keep flowing or
/// recovery could never converge.
fn fenced(msg: &Message) -> bool {
    matches!(
        msg,
        Message::ReadObj { .. }
            | Message::ReadPage { .. }
            | Message::WriteObj { .. }
            | Message::WritePage { .. }
            | Message::LockItem { .. }
            | Message::Purge { .. }
            | Message::CommitReq { .. }
            | Message::Prepare { .. }
            | Message::ReadForwarded { .. }
            | Message::FetchLargePage { .. }
            | Message::WriteLargeReq { .. }
            | Message::CreateLargeReq { .. }
    )
}

impl PeerServer {
    /// Reconstructs a crashed owner from `durable` (the crash image of
    /// its [`pscc_wal::ServerLog`]) under epoch `prior_epoch + 1`.
    ///
    /// Runs restart recovery, re-registers in-doubt transactions and
    /// queries their coordinators, takes a fresh checkpoint so the
    /// durable image is self-contained again, and returns the server
    /// together with the outputs (queries, timer arms) the harness must
    /// execute.
    pub fn recover(
        site: SiteId,
        cfg: SystemConfig,
        owners: OwnerMap,
        durable: &DurableState,
        prior_epoch: u64,
    ) -> (Self, Vec<Output>) {
        let started = std::time::Instant::now();
        let mut s = PeerServer::new(site, cfg, owners);
        let outcome = pscc_recovery::restart(s.volume.clone(), durable);
        s.volume = outcome.volume;
        s.log = outcome.log;

        // Rebuild the ownership directory: the boot map, then the
        // checkpoint's persisted layout, then any committed or landed
        // moves in the log tail, in LSN order (`apply_move` is monotone,
        // so stale replays are no-ops).
        if let Some(cp) = &durable.checkpoint {
            if let Some(img) = &cp.layout {
                s.owners.adopt_image(img);
            }
        }
        let (migration_records, _) = pscc_wal::decode_log(&durable.log);
        for (_, rec) in &migration_records {
            match &rec.payload {
                LogPayload::MigrateCommit { lo, hi, to, layout } => {
                    s.owners.apply_move(*lo, *hi, *to, *layout);
                }
                LogPayload::MigrateLand { lo, hi, layout, .. } => {
                    s.owners.apply_move(*lo, *hi, site, *layout);
                }
                _ => {}
            }
        }
        s.log.set_layout(s.owners.to_image());

        s.epoch = prior_epoch + 1;
        s.require_rejoin = true;
        s.stats.epoch_bumps += 1;
        s.stats.recovery_redo_records += outcome.report.redo_applied;
        s.stats.recovery_undo_records += outcome.report.undo_applied;

        // In-doubt 2PC participants: their updates were redone (repeat
        // history) and their undo records are back in flight. Re-acquire
        // the EX object locks so nothing reads or overwrites the
        // undecided state, then ask each coordinator for the outcome.
        for txn in &outcome.in_doubt {
            s.txns.spread(*txn).prepared = true;
            let oids: Vec<Oid> = s
                .log
                .in_flight_of(*txn)
                .iter()
                .filter_map(|r| match &r.payload {
                    LogPayload::Update { oid, .. }
                    | LogPayload::Create { oid, .. }
                    | LogPayload::Delete { oid, .. } => Some(*oid),
                    _ => None,
                })
                .collect();
            for oid in oids {
                let (a, _) = s.locks.acquire(*txn, LockableId::Object(oid), LockMode::Ex);
                debug_assert!(
                    matches!(a, Acquire::Granted),
                    "in-doubt relock blocked on an empty lock table"
                );
            }
            s.send(txn.site, Message::QueryTxn { txn: *txn });
        }

        // Resolve in-doubt migrations (engine/migration.rs): roll back
        // prepares that never committed, re-offer committed-but-unswept
        // ranges to their destination, and query the source about
        // half-landed inbound transfers.
        s.recover_migrations(&migration_records);

        // A fresh fuzzy checkpoint makes the durable image
        // self-contained: a second crash recovers from here, not from a
        // tail that no longer exists.
        s.log.checkpoint(s.volume.clone());
        s.stats.disk_writes += 1;

        s.obs
            .recovery_time
            .record_micros(started.elapsed().as_micros() as u64);
        s.obs.record(EventKind::Recovered {
            site,
            epoch: s.epoch,
            redo: outcome.report.redo_applied,
            undo: outcome.report.undo_applied,
            in_doubt: outcome.in_doubt.len(),
        });

        // Queries addressed to this very site (a 2PC transaction homed
        // here died with the crash) resolve synchronously — the fresh
        // home has no memory of them, so they become presumed aborts.
        while let Some(ev) = s.internal.pop_front() {
            s.dispatch(ev);
        }
        let outs = std::mem::take(&mut s.out);
        (s, outs)
    }

    // ------------------------------------------------------------------
    // The epoch fence
    // ------------------------------------------------------------------

    /// Gate run on every received message. Returns `true` when the
    /// message must be dropped: the sender has not (re)joined under the
    /// current epoch and the message would start new protocol work.
    /// Non-work traffic from an unjoined peer still passes, but also
    /// triggers a `RejoinRequired` nudge so recovery converges without
    /// waiting for the peer's next request.
    pub(crate) fn fence_check(&mut self, from: SiteId, msg: &Message) -> bool {
        if from == self.site {
            return false;
        }
        // Control-plane traffic bypasses the fence entirely: the
        // supervisor is not a peer with cached state (it never joins an
        // epoch), and a freshly restarted site must be drainable and
        // undrainable before any peer has rejoined.
        if msg.is_control_plane() {
            return false;
        }
        let current = match self.joined.get(&from) {
            Some(&e) => e == self.epoch,
            // First contact with a server that never restarted joins
            // implicitly; after a restart everyone must shake hands.
            None => !self.require_rejoin,
        };
        if current {
            self.joined.entry(from).or_insert(self.epoch);
            return false;
        }
        if matches!(
            msg,
            Message::Rejoin { .. } | Message::RejoinOk { .. } | Message::RejoinRequired { .. }
        ) {
            return false;
        }
        self.send(from, Message::RejoinRequired { epoch: self.epoch });
        fenced(msg)
    }

    // ------------------------------------------------------------------
    // The rejoin handshake
    // ------------------------------------------------------------------

    /// Server side: a peer acknowledges the fence. Its cache is (now)
    /// clean of this server's pages, so any copy-table residue from a
    /// false suspicion is dropped and the peer is admitted under the
    /// epoch. Commits left hanging while the peer was suspected dead,
    /// and prepared transactions homed at it, resolve against its
    /// durable outcome now that it is reachable again.
    pub(crate) fn server_rejoin(&mut self, from: SiteId, epoch: u64) {
        if epoch != self.epoch {
            // Raced with another restart: demand the current epoch.
            self.send(from, Message::RejoinRequired { epoch: self.epoch });
            return;
        }
        self.copy_table.drop_site_entries(from);
        self.joined.insert(from, epoch);

        let mut stuck: Vec<TxnId> = self
            .txns
            .home
            .iter()
            .filter(|(_, h)| h.status == TxnStatus::Committing && h.participants.contains(&from))
            .map(|(t, _)| *t)
            .collect();
        stuck.sort();
        for txn in stuck {
            self.send(from, Message::QueryTxn { txn });
        }
        let mut in_doubt: Vec<TxnId> = self
            .txns
            .remote
            .iter()
            .filter(|(t, r)| t.site == from && r.prepared)
            .map(|(t, _)| *t)
            .collect();
        in_doubt.sort();
        for txn in in_doubt {
            self.send(from, Message::QueryTxn { txn });
        }
        self.send(from, Message::RejoinOk { epoch });
    }

    /// Client side: an owner refuses service until we rejoin — it
    /// restarted, or declared this site dead. Either way our
    /// registrations there are gone: purge its pages, void grants backed
    /// by its lock state, abort active transactions that touched it,
    /// query the outcome of in-flight commits, then acknowledge.
    pub(crate) fn client_rejoin_required(&mut self, server: SiteId, epoch: u64) {
        if server == self.site {
            return;
        }
        self.peer_epochs.insert(server, epoch);

        // Cached pages owned by the server are no longer protected by
        // callbacks; self-invalidate (they are re-fetched lazily).
        let pages = self.cache.pages();
        for page in pages {
            if self.owners.owner_of(page) == Some(server) {
                self.cache.purge(page);
            }
        }
        let stale_large: Vec<PageId> = self
            .large_cache
            .keys()
            .copied()
            .filter(|p| self.owners.owner_of(*p) == Some(server))
            .collect();
        for p in stale_large {
            self.large_cache.remove(&p);
        }
        let owners = self.owners.clone();
        for h in self.txns.home.values_mut() {
            h.adaptive_pages
                .retain(|p| owners.owner_of(*p) != Some(server));
            h.page_write_grants
                .retain(|p| owners.owner_of(*p) != Some(server));
        }

        // Active transactions that touched the server lost their locks
        // and shipped state there: abort them. Committing ones may
        // already be durable at the server — resolve, don't guess.
        let mut doomed: Vec<TxnId> = self
            .txns
            .home
            .iter()
            .filter(|(_, h)| h.status == TxnStatus::Active && h.participants.contains(&server))
            .map(|(t, _)| *t)
            .collect();
        doomed.sort();
        for txn in doomed {
            self.home_abort(txn, AbortReason::Internal);
        }
        let mut stuck: Vec<TxnId> = self
            .txns
            .home
            .iter()
            .filter(|(_, h)| h.status == TxnStatus::Committing && h.participants.contains(&server))
            .map(|(t, _)| *t)
            .collect();
        stuck.sort();
        for txn in stuck {
            self.send(server, Message::QueryTxn { txn });
        }

        self.send(server, Message::Rejoin { epoch });
    }

    /// Client side: the handshake completed; requests flow again.
    pub(crate) fn client_rejoin_ok(&mut self, server: SiteId, epoch: u64) {
        self.peer_epochs.insert(server, epoch);
        self.obs.record(EventKind::Rejoined { server, epoch });
    }

    // ------------------------------------------------------------------
    // Outcome resolution
    // ------------------------------------------------------------------

    /// `QueryTxn` router. At the transaction's home this is a recovered
    /// participant asking for the 2PC outcome; anywhere else it is the
    /// coordinator asking whether our half durably committed (its ack
    /// was lost to a crash).
    pub(crate) fn handle_query_txn(&mut self, from: SiteId, txn: TxnId) {
        if txn.site == self.site {
            self.coordinator_query(from, txn);
        } else {
            let committed = self.log.was_committed(txn);
            self.send(from, Message::TxnResolved { txn, committed });
        }
    }

    /// Coordinator side of `QueryTxn`: a participant recovered with the
    /// transaction prepared and needs the decision.
    fn coordinator_query(&mut self, from: SiteId, txn: TxnId) {
        if !self.txns.home.contains_key(&txn) {
            // No memory of the transaction: presumed abort.
            self.send(from, Message::Decide { txn, commit: false });
            return;
        }
        let pending: Option<ReqId> = self
            .req_conts
            .iter()
            .find(|(_, c)| {
                matches!(c, ReqCont::Prepare { txn: t, site } if *t == txn && *site == from)
            })
            .map(|(r, _)| *r);
        if let Some(req) = pending {
            // A durable prepare *is* the yes-vote whose `Voted` message
            // the crash swallowed; count it (this sends the decision if
            // the vote was the last one missing).
            self.register_vote(req, txn, true);
            return;
        }
        let decided = self.txns.home.get(&txn).is_some_and(|h| {
            h.status == TxnStatus::Committing
                && !h.participants.is_empty()
                && h.votes.len() == h.participants.len()
        });
        if decided {
            // The decision went out before the crash; resend it.
            self.send(from, Message::Decide { txn, commit: true });
        }
        // Otherwise other votes are still pending; the decision will
        // reach the recovered participant when it is made.
    }

    /// Coordinator side of `TxnResolved`: the participant's durable
    /// outcome for a commit left hanging by a crash or false suspicion.
    pub(crate) fn client_txn_resolved(&mut self, from: SiteId, txn: TxnId, committed: bool) {
        if txn.site != self.site || !self.txns.home.contains_key(&txn) {
            return;
        }
        let commit_cont: Option<ReqId> = self
            .req_conts
            .iter()
            .find(|(_, c)| matches!(c, ReqCont::Commit { txn: t } if *t == txn))
            .map(|(r, _)| *r);
        match (commit_cont, committed) {
            (Some(req), true) => {
                // Single-round commit whose `CommitOk` was lost: the
                // participant's force made it durable — finish.
                self.req_conts.remove(&req);
                self.finish_home_commit(txn);
            }
            (Some(req), false) => {
                // The commit request never became durable there: the
                // transaction did not happen — roll back at home.
                self.req_conts.remove(&req);
                if let Some(h) = self.txns.home.get_mut(&txn) {
                    h.status = TxnStatus::Active;
                }
                self.home_abort(txn, AbortReason::Internal);
            }
            (None, true) => {
                // 2PC: the participant's half is durably committed;
                // treat the answer as its lost `Decided` ack.
                self.client_decided(from, txn);
            }
            (None, false) => {
                // 2PC: if this participant's prepare never became
                // durable, its vote can never arrive — global abort.
                // (A participant that is merely in doubt resolves
                // through `QueryTxn` to us instead; its prepare
                // continuation is consumed by `coordinator_query`.)
                let prep: Option<ReqId> = self
                    .req_conts
                    .iter()
                    .find(|(_, c)| {
                        matches!(c, ReqCont::Prepare { txn: t, site } if *t == txn && *site == from)
                    })
                    .map(|(r, _)| *r);
                if prep.is_some() {
                    let all: Vec<ReqId> = self
                        .req_conts
                        .iter()
                        .filter(|(_, c)| matches!(c, ReqCont::Prepare { txn: t, .. } if *t == txn))
                        .map(|(r, _)| *r)
                        .collect();
                    for r in all {
                        self.req_conts.remove(&r);
                    }
                    if let Some(h) = self.txns.home.get_mut(&txn) {
                        h.status = TxnStatus::Active;
                    }
                    self.home_abort(txn, AbortReason::Internal);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Probes (harnesses, metrics export)
    // ------------------------------------------------------------------

    /// This server's epoch (1 at first boot, +1 per restart recovery).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The owner log's durable LSN (everything at or below survives a
    /// crash).
    pub fn durable_lsn(&self) -> u64 {
        self.log.durable_lsn().0
    }

    /// Log records appended since the last checkpoint — the redo work a
    /// crash right now would cost.
    pub fn checkpoint_age(&self) -> u64 {
        self.log.checkpoint_age()
    }

    /// Whether `txn` is prepared (2PC phase one durable) at this owner.
    pub fn txn_prepared(&self, txn: TxnId) -> bool {
        self.txns.remote.get(&txn).is_some_and(|r| r.prepared)
    }

    /// Whether `txn`'s commit record is in this owner's log — the
    /// transaction survives a crash at this instant (crash-test harness
    /// probe).
    pub fn txn_committed_durably(&self, txn: TxnId) -> bool {
        self.log.was_committed(txn)
    }

    /// Whether this coordinator has collected every prepare vote for its
    /// home transaction `txn` — phase one is complete and the commit
    /// decision is on the wire (crash-test harness probe).
    pub fn txn_all_votes_in(&self, txn: TxnId) -> bool {
        self.txns
            .home
            .get(&txn)
            .is_some_and(|h| !h.participants.is_empty() && h.votes.len() == h.participants.len())
    }

    /// The durable image a crash at this instant would leave for
    /// [`PeerServer::recover`] (crash-test harness probe).
    pub fn crash_image(&self) -> DurableState {
        self.log.crash_image()
    }

    /// Takes a fuzzy checkpoint (ATT + DPT + base snapshot) of the
    /// owner log, forcing the tail first. Returns whether the force
    /// wrote anything.
    pub fn checkpoint(&mut self) -> bool {
        let wrote = self.log.checkpoint(self.volume.clone());
        if wrote {
            self.stats.disk_writes += 1;
        }
        wrote
    }
}
