//! Owner-role logic: fetch and write-permission requests, page shipping
//! with the §4.2.3 availability-marking rule, callback operations with
//! blocked-lock replication and deadlock detection (§4.2.1), adaptive
//! lock grants and deescalation (§4.1.2), hierarchical callbacks with
//! second-objective violation redo (§4.3.2), and purge handling with
//! purge-race detection (§4.2.4).

use super::{CbDone, CbOp, DeOp, DiskCont, LockCont, PeerServer, TimerKind};
use crate::msg::{CbId, CbTarget, DeId, DiskOp, Message, ReqId};
use pscc_common::{ids::DUMMY_SLOT, LockMode, LockableId, Oid, PageId, SiteId, TxnId};
use pscc_lockmgr::Acquire;
use pscc_storage::{AvailMask, PageSnapshot};
use pscc_wal::LogRecord;
use std::collections::HashSet;

impl PeerServer {
    // ------------------------------------------------------------------
    // Ownership fence (DESIGN.md §10)
    // ------------------------------------------------------------------

    /// Gate at the top of every owner-role data path: is this site still
    /// the authoritative owner of `page`?
    ///
    /// * **Unmapped** page → typed refusal ([`Message::ReqDenied`]): no
    ///   retry can ever succeed, so the requesting transaction aborts.
    /// * **Owned elsewhere** (the range migrated away) → a remote
    ///   requester gets [`Message::WrongOwner`] carrying the newer
    ///   layout and re-routes; this site's own client role raced its
    ///   (already updated) directory, so the request is just forwarded.
    /// * **Mid-migration** (owned here, inside a frozen range) → local
    ///   work parks behind the migration; remote work is shed with
    ///   [`Message::Busy`], and the backed-off retry usually arrives
    ///   after commit and redirects.
    ///
    /// Returns `true` when the request may proceed here.
    pub(crate) fn server_owner_fence(
        &mut self,
        from: SiteId,
        req: ReqId,
        page: PageId,
        msg: Message,
    ) -> bool {
        match self.owners.try_owner(page) {
            Err(_) => {
                self.obs
                    .record(pscc_obs::EventKind::OwnershipRefused { page });
                self.send(
                    from,
                    Message::ReqDenied {
                        req,
                        reason: pscc_common::AbortReason::Internal,
                    },
                );
                false
            }
            Ok(owner) if owner != self.site => {
                if from == self.site {
                    // The new owner joins the transaction's participant
                    // set so commit releases the locks taken there.
                    self.stats.wrong_owner_redirects += 1;
                    if let Some(txn) = msg.txn_id() {
                        if let Some(h) = self.txns.home.get_mut(&txn) {
                            h.participants.insert(owner);
                        }
                    }
                    self.send(owner, msg);
                } else {
                    let (lo, hi, new_owner) =
                        self.owners.locate(page).expect("owned page has a range");
                    self.send(
                        from,
                        Message::WrongOwner {
                            req,
                            lo,
                            hi,
                            layout: self.owners.version(),
                            new_owner,
                        },
                    );
                }
                false
            }
            Ok(_) => {
                if from == self.site {
                    !self.queue_if_migrating(page, crate::msg::Input::Msg { from, msg })
                } else if self
                    .migrating
                    .as_ref()
                    .is_some_and(|m| (m.lo..m.hi).contains(&page.page))
                {
                    // The freeze must drain; `Busy` (not a queue) keeps
                    // the source's admission table empty-able. The slot
                    // taken at admission is handed back here.
                    self.admitted.remove(&(from, req));
                    self.stats.requests_shed += 1;
                    self.obs
                        .record(pscc_obs::EventKind::RequestShed { peer: from });
                    self.send(
                        from,
                        Message::Busy {
                            req,
                            retry_after: self.cfg.busy_retry_hint,
                        },
                    );
                    false
                } else {
                    true
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reads (paper §4.1.1)
    // ------------------------------------------------------------------

    pub(crate) fn server_read(&mut self, req: ReqId, from: SiteId, txn: TxnId, oid: Oid) {
        if !self.server_owner_fence(from, req, oid.page, Message::ReadObj { req, txn, oid }) {
            return;
        }
        self.txns.spread(txn);
        let work = crate::msg::Input::Msg {
            from,
            msg: Message::ReadObj { req, txn, oid },
        };
        if self.queue_if_deescalating(oid.page, work.clone()) {
            return;
        }
        if self.start_deescalation_if_needed(oid.page, txn, work) {
            return;
        }
        let (a, _) = self
            .locks
            .acquire(txn, LockableId::Object(oid), LockMode::Sh);
        match a {
            Acquire::Granted => self.server_read_locked(req, from, txn, oid),
            Acquire::Wait(t) => {
                self.lock_conts.insert(
                    t,
                    LockCont::ServerRead {
                        req,
                        from,
                        txn,
                        oid,
                    },
                );
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    pub(crate) fn server_read_locked(&mut self, req: ReqId, from: SiteId, txn: TxnId, oid: Oid) {
        self.ship_or_read(req, from, txn, oid.page, Some(oid));
    }

    pub(crate) fn server_read_page(&mut self, req: ReqId, from: SiteId, txn: TxnId, page: PageId) {
        if !self.server_owner_fence(from, req, page, Message::ReadPage { req, txn, page }) {
            return;
        }
        self.txns.spread(txn);
        let (a, _) = self
            .locks
            .acquire(txn, LockableId::Page(page), LockMode::Sh);
        match a {
            Acquire::Granted => self.server_read_page_locked(req, from, txn, page),
            Acquire::Wait(t) => {
                self.lock_conts.insert(
                    t,
                    LockCont::ServerReadPage {
                        req,
                        from,
                        txn,
                        page,
                    },
                );
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    pub(crate) fn server_read_page_locked(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
    ) {
        self.ship_or_read(req, from, txn, page, None);
    }

    /// Ships the page, going to disk first if it is not buffer-resident.
    fn ship_or_read(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
        requested: Option<Oid>,
    ) {
        if self.touch_resident(page, false) {
            self.server_ship(req, from, txn, page, requested);
        } else {
            self.disk(
                DiskOp::ReadPage(page),
                DiskCont::Ship {
                    req,
                    from,
                    txn,
                    page,
                    requested,
                },
            );
        }
    }

    /// Builds the snapshot under the §4.2.3 marking rule and ships it.
    pub(crate) fn server_ship(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
        requested: Option<Oid>,
    ) {
        if !self.txns.is_active(txn) {
            return; // aborted while waiting for the disk (slot released)
        }
        let Some(image) = self.volume.page(page).cloned() else {
            // No such page: the request dies silently (the requester's
            // lock timeout handles it), but its admission slot must not.
            self.admitted.remove(&(from, req));
            self.obs.record(pscc_obs::EventKind::StaleDrop {
                what: "ship of a missing page",
            });
            return;
        };
        let n_slots = image.slot_count();
        let mut avail = AvailMask::all_available(n_slots);
        let requester_home = txn.site;
        for slot in image.live_slots() {
            let o = Oid::new(page, slot);
            if requested == Some(o) {
                continue; // condition 1: the requested object ships available
            }
            // Condition 2: EX-locked by a transaction from another client.
            let ex_other = self
                .locks
                .holders(LockableId::Object(o))
                .into_iter()
                .any(|(t, m)| m == LockMode::Ex && t.site != requester_home);
            // Condition 3: pending callback by a transaction from another
            // client.
            let cb_other = self
                .cb_by_object
                .get(&o)
                .and_then(|cb| self.cb_ops.get(cb))
                .is_some_and(|op| op.txn.site != requester_home);
            if ex_other || cb_other {
                avail.set_unavailable(slot);
            }
        }
        // The dummy object (paper §4.3.2).
        let dummy = Oid::dummy(page);
        let dummy_cb = self
            .cb_by_object
            .get(&dummy)
            .and_then(|cb| self.cb_ops.get(cb))
            .is_some_and(|op| op.txn.site != requester_home);
        let dummy_ex = self
            .locks
            .holders(LockableId::Object(dummy))
            .into_iter()
            .any(|(t, m)| m == LockMode::Ex && t.site != requester_home);
        if (dummy_cb || dummy_ex) && requested != Some(dummy) {
            avail.set_unavailable(DUMMY_SLOT);
        }
        // Second-objective violation (§4.3.2): shipping the *requested*
        // object to a third client while a callback on it is pending
        // means the callback must be redone once its upgrade completes.
        if let Some(o) = requested {
            if let Some(op) = self
                .cb_by_object
                .get(&o)
                .and_then(|cb| self.cb_ops.get_mut(cb))
            {
                if op.txn.site != requester_home {
                    op.violated = true;
                }
            }
        }
        let ship_seq = self.copy_table.record_ship(page, from);
        self.stats.pages_shipped += 1;
        self.send(
            from,
            Message::ReadReply {
                req,
                snapshot: PageSnapshot {
                    page,
                    image,
                    avail,
                    ship_seq,
                },
            },
        );
    }

    // ------------------------------------------------------------------
    // Writes and callbacks (paper §4.1.1–4.1.2, Fig. 3)
    // ------------------------------------------------------------------

    pub(crate) fn server_write(&mut self, req: ReqId, from: SiteId, txn: TxnId, oid: Oid) {
        if !self.server_owner_fence(from, req, oid.page, Message::WriteObj { req, txn, oid }) {
            return;
        }
        self.txns.spread(txn);
        let work = crate::msg::Input::Msg {
            from,
            msg: Message::WriteObj { req, txn, oid },
        };
        if self.queue_if_deescalating(oid.page, work.clone()) {
            return;
        }
        if self.start_deescalation_if_needed(oid.page, txn, work) {
            return;
        }
        let (a, _) = self
            .locks
            .acquire(txn, LockableId::Object(oid), LockMode::Ex);
        match a {
            Acquire::Granted => self.server_write_locked(req, from, txn, oid),
            Acquire::Wait(t) => {
                self.lock_conts.insert(
                    t,
                    LockCont::ServerWrite {
                        req,
                        from,
                        txn,
                        oid,
                    },
                );
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    pub(crate) fn server_write_locked(&mut self, req: ReqId, from: SiteId, txn: TxnId, oid: Oid) {
        if !self.txns.is_active(txn) {
            return;
        }
        self.start_callbacks(
            txn,
            CbTarget::Object(oid),
            oid.page,
            CbDone::Write { req, to: from, oid },
        );
    }

    pub(crate) fn server_write_page(&mut self, req: ReqId, from: SiteId, txn: TxnId, page: PageId) {
        if !self.server_owner_fence(from, req, page, Message::WritePage { req, txn, page }) {
            return;
        }
        self.txns.spread(txn);
        let (a, _) = self
            .locks
            .acquire(txn, LockableId::Page(page), LockMode::Ex);
        match a {
            Acquire::Granted => self.server_write_page_locked(req, from, txn, page),
            Acquire::Wait(t) => {
                self.lock_conts.insert(
                    t,
                    LockCont::ServerWritePage {
                        req,
                        from,
                        txn,
                        page,
                    },
                );
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    pub(crate) fn server_write_page_locked(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        page: PageId,
    ) {
        if !self.txns.is_active(txn) {
            return;
        }
        self.start_callbacks(
            txn,
            CbTarget::PageAll(page),
            page,
            CbDone::WritePage { req, to: from },
        );
    }

    /// Fans out callbacks to every caching client except the requester's
    /// home; completes immediately when there are none.
    pub(crate) fn start_callbacks(
        &mut self,
        txn: TxnId,
        target: CbTarget,
        page_or_anchor: PageId,
        done: CbDone,
    ) {
        let targets: Vec<SiteId> = match target {
            CbTarget::Object(_) | CbTarget::PageAll(_) => {
                self.copy_table.clients_except(page_or_anchor, txn.site)
            }
            CbTarget::File(f) => self
                .copy_table
                .file_clients(f)
                .into_iter()
                .filter(|s| *s != txn.site)
                .collect(),
            CbTarget::Volume(v) => self
                .copy_table
                .volume_clients(v)
                .into_iter()
                .filter(|s| *s != txn.site)
                .collect(),
        };
        let cb = self.fresh_cb();
        let (remote, local): (Vec<SiteId>, Vec<SiteId>) =
            targets.into_iter().partition(|s| *s != self.site);
        let op = CbOp {
            txn,
            target,
            pending: remote.iter().copied().collect::<HashSet<_>>(),
            all_purged: true,
            violated: false,
            upgrade: None,
            done,
        };
        self.cb_ops.insert(cb, op);
        if let CbTarget::Object(o) = target {
            self.cb_by_object.insert(o, cb);
        }
        // This site's own cached copy (the owner in its client role) is
        // invalidated synchronously: the requester's EX lock in this very
        // table already excludes any conflicting local holder, so there
        // is nothing to wait for.
        if !local.is_empty() {
            let purged = self.self_callback(txn, target);
            if let Some(op) = self.cb_ops.get_mut(&cb) {
                op.all_purged &= purged;
            }
            if purged {
                match target {
                    CbTarget::Object(o) => self.copy_table.drop_entry(o.page, self.site),
                    CbTarget::PageAll(p) => self.copy_table.drop_entry(p, self.site),
                    CbTarget::File(f) => self.copy_table.drop_file_entries(f, self.site),
                    CbTarget::Volume(v) => {
                        for f in self.volume.files() {
                            if f.vol == v {
                                self.copy_table.drop_file_entries(f, self.site);
                            }
                        }
                    }
                }
            }
        }
        if remote.is_empty() {
            self.try_finish_cb_op(cb);
            return;
        }
        self.stats.callbacks_sent += remote.len() as u64;
        self.obs.cb_sent(cb, txn, self.now);
        if self.cfg.leases_enabled || self.cfg.slow_peer_bypass {
            // Bound the fan-out's response time: clients still pending
            // when this fires are declared crashed (they may heartbeat
            // yet be wedged mid-callback). With `slow_peer_bypass` this
            // also caps how long one stalled client can hold up the
            // whole copy-table pass, even without leases (DESIGN.md §6).
            let timer = self.fresh_timer();
            self.timers.insert(timer, TimerKind::CbResponse { cb });
            self.out.push(crate::msg::Output::ArmTimer {
                timer,
                delay: self.cfg.callback_response_timeout,
            });
        }
        for site in remote {
            self.obs.record(pscc_obs::EventKind::CallbackSent {
                to: site,
                txn,
                item: target.lockable(),
            });
            self.send(site, Message::Callback { cb, txn, target });
        }
    }

    /// Invalidates this site's own cached copy on behalf of `txn`'s
    /// callback. Returns whether the whole granule was purged.
    fn self_callback(&mut self, txn: TxnId, target: CbTarget) -> bool {
        match target {
            CbTarget::Object(oid) => {
                let in_use = self
                    .locks
                    .holders(LockableId::Page(oid.page))
                    .iter()
                    .map(|(t, _)| *t)
                    .chain(
                        self.locks
                            .object_holders_on_page(oid.page)
                            .iter()
                            .map(|(t, _, _)| *t),
                    )
                    .any(|t| t.site == self.site && t != txn);
                // A read reply already in flight to ourselves could
                // resurrect the object: register the callback race.
                let pending: Vec<crate::msg::ReqId> = self
                    .pending_fetches
                    .get(&oid.page)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                self.races
                    .register_callback_race(oid.page, oid.slot, pending);
                if in_use {
                    self.cache.mark_unavailable(oid);
                    self.stats.callbacks_object_only += 1;
                    false
                } else {
                    if self.cache.purge(oid.page).is_some() {
                        self.stats.pages_purged += 1;
                    }
                    for h in self.txns.home.values_mut() {
                        h.adaptive_pages.remove(&oid.page);
                        h.page_write_grants.remove(&oid.page);
                    }
                    self.stats.callbacks_purged_page += 1;
                    true
                }
            }
            CbTarget::PageAll(p) => {
                if self.cache.purge(p).is_some() {
                    self.stats.pages_purged += 1;
                }
                for h in self.txns.home.values_mut() {
                    h.adaptive_pages.remove(&p);
                    h.page_write_grants.remove(&p);
                }
                true
            }
            CbTarget::File(f) => {
                for p in self.cache.pages_of_file(f) {
                    self.cache.purge(p);
                    self.stats.pages_purged += 1;
                }
                true
            }
            CbTarget::Volume(v) => {
                for p in self.cache.pages_of_volume(v) {
                    self.cache.purge(p);
                    self.stats.pages_purged += 1;
                }
                true
            }
        }
    }

    /// A callback acknowledgment (paper Fig. 3): update the copy table
    /// when the whole page (or file) was purged, and try to complete.
    pub(crate) fn server_cb_ok(&mut self, cb: CbId, from: SiteId, purged_page: bool) {
        let Some(op) = self.cb_ops.get_mut(&cb) else {
            return; // cancelled (calling-back transaction aborted)
        };
        if !op.pending.remove(&from) {
            return;
        }
        op.all_purged &= purged_page;
        let (cb_txn, cb_item) = (op.txn, op.target.lockable());
        self.obs.cb_acked(cb, self.now);
        self.obs.record(pscc_obs::EventKind::CallbackPurged {
            from,
            txn: cb_txn,
            item: cb_item,
            purged_page,
        });
        let Some(op) = self.cb_ops.get_mut(&cb) else {
            // The operation vanished mid-ack (e.g. cancelled by an abort
            // the tracing above interleaved with); drop, don't panic.
            self.obs.record(pscc_obs::EventKind::StaleDrop {
                what: "cb_ok without operation",
            });
            return;
        };
        if purged_page {
            match op.target {
                CbTarget::Object(o) => self.copy_table.drop_entry(o.page, from),
                CbTarget::PageAll(p) => self.copy_table.drop_entry(p, from),
                CbTarget::File(f) => self.copy_table.drop_file_entries(f, from),
                CbTarget::Volume(v) => {
                    for f in self.volume.files() {
                        if f.vol == v {
                            self.copy_table.drop_file_entries(f, from);
                        }
                    }
                }
            }
            self.stats.callbacks_purged_page += 1;
        }
        self.try_finish_cb_op(cb);
    }

    /// A callback blocked at a client: replicate the conflict at the
    /// server via the downgrade dance and invoke the deadlock detector
    /// (paper §4.2.1, §4.3.1, §4.3.2).
    pub(crate) fn server_cb_blocked(
        &mut self,
        from: SiteId,
        cb: CbId,
        holders: Vec<(TxnId, LockableId, LockMode)>,
    ) {
        let Some(op) = self.cb_ops.get(&cb) else {
            return;
        };
        let cbtxn = op.txn;
        let target = op.target;
        self.obs.record(pscc_obs::EventKind::CallbackBlocked {
            from,
            txn: cbtxn,
            item: target.lockable(),
        });
        if op.upgrade.is_some() {
            // Already mid-dance from another client's blocked report; the
            // new holders are replicated below, the existing upgrade
            // covers re-acquisition.
        }
        match target {
            CbTarget::Object(oid) => {
                let obj = LockableId::Object(oid);
                let page = LockableId::Page(oid.page);
                let page_level = holders
                    .iter()
                    .any(|(_, item, _)| matches!(item, LockableId::Page(_)));
                if page_level {
                    // §4.3.2: page-level conflict. Downgrade page and
                    // object, replicate the SH page locks, upgrade at the
                    // page level only.
                    if self.locks.held_mode(cbtxn, page) == Some(LockMode::Ix) {
                        self.locks.downgrade(cbtxn, page, LockMode::Is);
                        self.obs.record(pscc_obs::EventKind::LockDowngrade {
                            txn: cbtxn,
                            item: page,
                        });
                    }
                    if self.locks.held_mode(cbtxn, obj) == Some(LockMode::Ex) {
                        self.locks.downgrade(cbtxn, obj, LockMode::Sh);
                        self.obs.record(pscc_obs::EventKind::LockDowngrade {
                            txn: cbtxn,
                            item: obj,
                        });
                    }
                    for (t, item, m) in &holders {
                        if self.replicable(*t) {
                            let m = if m.is_read() || *m == LockMode::Ex {
                                LockMode::Sh
                            } else {
                                LockMode::Is
                            };
                            self.locks.force_grant(*t, *item, m);
                        }
                    }
                    if self.cb_ops.get(&cb).is_some_and(|o| o.upgrade.is_none()) {
                        let (a, _) = self.locks.acquire_single(cbtxn, page, LockMode::Ix);
                        match a {
                            Acquire::Granted => {
                                // Demote the re-entrant count bump.
                                let _ = self.locks.release_one(cbtxn, page);
                                self.server_cb_upgrade_done(cb);
                            }
                            Acquire::Wait(t) => {
                                self.lock_conts.insert(t, LockCont::CbUpgrade { cb });
                                if let Some(o) = self.cb_ops.get_mut(&cb) {
                                    o.upgrade = Some(t);
                                }
                                self.arm_lock_timer(t, cbtxn);
                            }
                        }
                    }
                    // The object queue may now admit a sneaker (§4.3.2).
                    let grants = self.locks.rescan(obj);
                    self.process_grants(grants);
                } else {
                    // Object-level conflict (Fig. 4): EX→SH, replicate,
                    // upgrade — atomically, so nobody slips past. The
                    // replicated mode is capped at SH: it only needs to
                    // carry the waits-for edge; a holder whose local lock
                    // is stronger has (or will have) its own request at
                    // the server (Fig. 4 grants "a SH lock on X on behalf
                    // of thread C1,S").
                    if self.locks.held_mode(cbtxn, obj) == Some(LockMode::Ex) {
                        self.locks.downgrade(cbtxn, obj, LockMode::Sh);
                        self.obs.record(pscc_obs::EventKind::LockDowngrade {
                            txn: cbtxn,
                            item: obj,
                        });
                    }
                    for (t, item, m) in &holders {
                        if self.replicable(*t) {
                            let m = if m.is_read() || *m == LockMode::Ex {
                                LockMode::Sh
                            } else {
                                LockMode::Is
                            };
                            self.locks.force_grant(*t, *item, m);
                        }
                    }
                    self.issue_upgrade(cb, cbtxn, obj, LockMode::Ex);
                }
            }
            CbTarget::PageAll(p) => {
                let page = LockableId::Page(p);
                if self.locks.held_mode(cbtxn, page) == Some(LockMode::Ex) {
                    self.locks.downgrade(cbtxn, page, LockMode::Sh);
                    self.obs.record(pscc_obs::EventKind::LockDowngrade {
                        txn: cbtxn,
                        item: page,
                    });
                }
                for (t, item, m) in &holders {
                    if self.replicable(*t) {
                        let m = if m.is_read() || *m == LockMode::Ex {
                            LockMode::Sh
                        } else {
                            LockMode::Is
                        };
                        self.locks.force_grant(*t, *item, m);
                    }
                }
                self.issue_upgrade(cb, cbtxn, page, LockMode::Ex);
            }
            CbTarget::File(_) | CbTarget::Volume(_) => {
                // §4.3.1: EX file → SIX, replicate IS locks, upgrade back.
                let item = target.lockable();
                if self.locks.held_mode(cbtxn, item) == Some(LockMode::Ex) {
                    self.locks.downgrade(cbtxn, item, LockMode::Six);
                    self.obs
                        .record(pscc_obs::EventKind::LockDowngrade { txn: cbtxn, item });
                }
                for (t, it, m) in &holders {
                    if self.replicable(*t) {
                        // Local-only file locks are intentions (IS) from
                        // cached reads; stronger modes arrive as reported.
                        let m = if *m == LockMode::Ex || *m == LockMode::Six {
                            *m
                        } else if m.is_read() {
                            LockMode::Sh
                        } else {
                            LockMode::Is
                        };
                        let m = if LockMode::Six.compatible(m) {
                            m
                        } else {
                            LockMode::Is
                        };
                        self.locks.force_grant(*t, *it, m);
                    }
                }
                self.issue_upgrade(cb, cbtxn, item, LockMode::Ex);
            }
        }
        self.check_deadlocks();
    }

    /// Whether a holder reported by a client can be replicated here (it
    /// must still be an active transaction we know or can spread).
    fn replicable(&mut self, t: TxnId) -> bool {
        if t.site == self.site {
            return self.txn_is_running(t);
        }
        self.txns.spread(t);
        true
    }

    fn issue_upgrade(&mut self, cb: CbId, txn: TxnId, item: LockableId, mode: LockMode) {
        if self.cb_ops.get(&cb).is_some_and(|o| o.upgrade.is_some()) {
            return;
        }
        let (a, _) = self.locks.acquire_single(txn, item, mode);
        match a {
            Acquire::Granted => {
                let _ = self.locks.release_one(txn, item); // undo count bump
                self.server_cb_upgrade_done(cb);
            }
            Acquire::Wait(t) => {
                self.lock_conts.insert(t, LockCont::CbUpgrade { cb });
                if let Some(o) = self.cb_ops.get_mut(&cb) {
                    o.upgrade = Some(t);
                }
                self.arm_lock_timer(t, txn);
            }
        }
    }

    /// A server-side re-upgrade finished. For the hierarchical page-level
    /// dance, the object lock must be re-upgraded next (§4.3.2).
    pub(crate) fn server_cb_upgrade_done(&mut self, cb: CbId) {
        let Some(op) = self.cb_ops.get_mut(&cb) else {
            return;
        };
        op.upgrade = None;
        let cbtxn = op.txn;
        let target = op.target;
        if let CbTarget::Object(oid) = target {
            let obj = LockableId::Object(oid);
            if self.locks.held_mode(cbtxn, obj) != Some(LockMode::Ex) {
                self.issue_upgrade(cb, cbtxn, obj, LockMode::Ex);
                if self.cb_ops.get(&cb).is_some_and(|o| o.upgrade.is_some()) {
                    return;
                }
            }
        }
        self.try_finish_cb_op(cb);
    }

    /// Completes a callback operation once all acks are in and any
    /// re-upgrade is done; redoes it on a second-objective violation.
    pub(crate) fn try_finish_cb_op(&mut self, cb: CbId) {
        let (ready, violated) = match self.cb_ops.get(&cb) {
            Some(op) => (op.pending.is_empty() && op.upgrade.is_none(), op.violated),
            None => return,
        };
        if !ready {
            return;
        }
        if violated {
            // Redo the whole callback operation (paper §4.3.2).
            self.stats.callback_redos += 1;
            self.obs.cb_closed(cb);
            if let Some(op) = self.cb_ops.get(&cb) {
                self.obs.record(pscc_obs::EventKind::Race {
                    item: op.target.lockable(),
                    kind: pscc_obs::event::RaceKind::CallbackRedo,
                });
            }
            let (txn, target, done) = {
                let Some(op) = self.cb_ops.get_mut(&cb) else {
                    self.obs.record(pscc_obs::EventKind::StaleDrop {
                        what: "callback redo without operation",
                    });
                    return;
                };
                op.violated = false;
                (op.txn, op.target, op.done.clone())
            };
            if let CbTarget::Object(o) = target {
                self.cb_by_object.remove(&o);
            }
            self.cb_ops.remove(&cb);
            let anchor = match target {
                CbTarget::Object(o) => o.page,
                CbTarget::PageAll(p) => p,
                _ => PageId::default(),
            };
            self.start_callbacks(txn, target, anchor, done);
            return;
        }
        let Some(op) = self.cb_ops.remove(&cb) else {
            self.obs.record(pscc_obs::EventKind::StaleDrop {
                what: "callback completion without operation",
            });
            return;
        };
        self.obs.cb_closed(cb);
        if let CbTarget::Object(o) = op.target {
            self.cb_by_object.remove(&o);
        }
        match op.done {
            CbDone::Write { req, to, oid } => {
                let adaptive = self.cfg.protocol.adaptive_locking()
                    && op.all_purged
                    && self.can_grant_adaptive(oid.page, op.txn);
                if adaptive {
                    self.locks.set_adaptive(op.txn, oid.page);
                    self.stats.adaptive_grants += 1;
                    self.obs.record(pscc_obs::EventKind::AdaptiveGrant {
                        txn: op.txn,
                        item: LockableId::Page(oid.page),
                    });
                }
                // Audited (crates/obs/src/audit.rs): a source must never
                // ack a write for a page it has committed away.
                self.obs
                    .record(pscc_obs::EventKind::WriteAck { page: oid.page, to });
                self.send(to, Message::WriteGranted { req, adaptive });
            }
            CbDone::WritePage { req, to } => {
                if let CbTarget::PageAll(p) = op.target {
                    self.obs
                        .record(pscc_obs::EventKind::WriteAck { page: p, to });
                }
                self.send(
                    to,
                    Message::WriteGranted {
                        req,
                        adaptive: false,
                    },
                );
            }
            CbDone::Lock { req, to } => {
                self.send(to, Message::LockGranted { req });
            }
        }
    }

    /// Adaptive grant precondition (§4.1.2): no other client caches the
    /// page, and no transaction from another client holds locks on the
    /// page or its objects.
    fn can_grant_adaptive(&self, page: PageId, txn: TxnId) -> bool {
        if self.copy_table.cached_elsewhere(page, txn.site) {
            return false;
        }
        let other_site = |t: &TxnId| t.site != txn.site;
        if self
            .locks
            .holders(LockableId::Page(page))
            .iter()
            .any(|(t, m)| other_site(t) && !m.is_intention())
        {
            return false;
        }
        if self
            .locks
            .object_holders_on_page(page)
            .iter()
            .any(|(t, _, _)| other_site(t))
        {
            return false;
        }
        // A request from another client already *waiting* on the page or
        // one of its objects would, once granted, bypass the deescalation
        // check — so it also forbids the adaptive grant.
        if self.locks.waiters_on_page(page).iter().any(other_site) {
            return false;
        }
        // No pending callbacks on the page's objects by others.
        !self.cb_by_object.iter().any(|(o, cbid)| {
            o.page == page
                && self
                    .cb_ops
                    .get(cbid)
                    .is_some_and(|op| op.txn.site != txn.site)
        })
    }

    /// A callback wait timed out at a client: abort the calling-back
    /// transaction (SHORE's timeout resolution, §5.5).
    pub(crate) fn server_cb_timeout(&mut self, cb: CbId) {
        let Some(op) = self.cb_ops.get(&cb) else {
            return;
        };
        let txn = op.txn;
        self.abort_txn_here(txn, pscc_common::AbortReason::LockTimeout);
    }

    // ------------------------------------------------------------------
    // Deescalation, owner side (paper §4.1.2)
    // ------------------------------------------------------------------

    /// Queues the work item if a deescalation for its page is in flight.
    pub(crate) fn queue_if_deescalating(&mut self, page: PageId, work: crate::msg::Input) -> bool {
        if let Some(de) = self.de_by_page.get(&page) {
            if let Some(op) = self.de_ops.get_mut(de) {
                op.queued.push(work);
                return true;
            }
        }
        false
    }

    /// Starts deescalation when a transaction from another client holds
    /// adaptive locks on the page. Returns `true` if the work was
    /// deferred.
    pub(crate) fn start_deescalation_if_needed(
        &mut self,
        page: PageId,
        txn: TxnId,
        work: crate::msg::Input,
    ) -> bool {
        let holder_site = self
            .locks
            .adaptive_holders(page)
            .into_iter()
            .map(|t| t.site)
            .find(|s| *s != txn.site);
        let Some(client) = holder_site else {
            return false;
        };
        let de = self.fresh_de();
        self.stats.deescalations += 1;
        self.obs.record(pscc_obs::EventKind::Deescalated {
            peer: client,
            item: LockableId::Page(page),
        });
        self.de_ops.insert(
            de,
            DeOp {
                page,
                client,
                queued: vec![work],
            },
        );
        self.de_by_page.insert(page, de);
        if client == self.site {
            // The adaptive holder is this very site (its own local
            // transactions): deescalate synchronously — the EX object
            // locks are already in this table.
            for h in self.txns.home.values_mut() {
                h.adaptive_pages.remove(&page);
            }
            for t in self.locks.adaptive_holders(page) {
                self.locks.clear_adaptive(t, page);
            }
            self.finish_deescalation(de);
        } else {
            self.send(client, Message::Deescalate { de, page });
        }
        true
    }

    /// The deescalation reply: replicate the reported EX object locks and
    /// resume the queued requests.
    pub(crate) fn server_deescalate_reply(
        &mut self,
        de: DeId,
        page: PageId,
        ex_locks: Vec<(TxnId, Oid)>,
    ) {
        if !self.de_ops.contains_key(&de) {
            return;
        }
        for (t, o) in ex_locks {
            if self.replicable(t) {
                self.locks
                    .force_grant(t, LockableId::Object(o), LockMode::Ex);
                self.locks
                    .force_grant(t, LockableId::Page(o.page), LockMode::Ix);
            }
        }
        for t in self.locks.adaptive_holders(page) {
            self.locks.clear_adaptive(t, page);
        }
        self.finish_deescalation(de);
    }

    fn finish_deescalation(&mut self, de: DeId) {
        let Some(op) = self.de_ops.remove(&de) else {
            return;
        };
        self.de_by_page.remove(&op.page);
        for work in op.queued {
            self.internal.push_back(work);
        }
    }

    // ------------------------------------------------------------------
    // Explicit hierarchical locks, owner side (paper §4.3)
    // ------------------------------------------------------------------

    pub(crate) fn server_explicit(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    ) {
        // Page- and object-granularity locks are routed by page and so
        // pass the ownership fence; file/volume locks go to every owner
        // by design and need no routing check.
        let fence_page = match item {
            LockableId::Page(p) => Some(p),
            LockableId::Object(o) => Some(o.page),
            LockableId::File(_) | LockableId::Volume(_) => None,
        };
        if let Some(p) = fence_page {
            let msg = Message::LockItem {
                req,
                txn,
                item,
                mode,
            };
            if !self.server_owner_fence(from, req, p, msg) {
                return;
            }
        }
        self.txns.spread(txn);
        let (a, _) = self.locks.acquire(txn, item, mode);
        match a {
            Acquire::Granted => self.server_explicit_locked(req, from, txn, item, mode),
            Acquire::Wait(t) => {
                self.lock_conts.insert(
                    t,
                    LockCont::ServerExplicit {
                        req,
                        from,
                        txn,
                        item,
                        mode,
                    },
                );
                self.arm_lock_timer(t, txn);
                self.check_deadlocks();
            }
        }
    }

    pub(crate) fn server_explicit_locked(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        item: LockableId,
        mode: LockMode,
    ) {
        if !self.txns.is_active(txn) {
            return;
        }
        let done = CbDone::Lock { req, to: from };
        match (item, mode) {
            // EX object (e.g. a large-object header, §4.4): ordinary
            // object callbacks.
            (LockableId::Object(o), LockMode::Ex) => {
                self.start_callbacks(txn, CbTarget::Object(o), o.page, done)
            }
            // EX page: purge everywhere (like a PS write).
            (LockableId::Page(p), LockMode::Ex) => {
                self.start_callbacks(txn, CbTarget::PageAll(p), p, done)
            }
            // IX/SIX page: dummy-object callbacks invalidate local-only
            // SH page coverage at the clients (paper §4.3.2).
            (LockableId::Page(p), LockMode::Ix | LockMode::Six) => {
                self.start_callbacks(txn, CbTarget::Object(Oid::dummy(p)), p, done)
            }
            // EX file/volume: purge the whole file everywhere (§4.3.1).
            (LockableId::File(f), LockMode::Ex) => {
                self.start_callbacks(txn, CbTarget::File(f), PageId::default(), done)
            }
            (LockableId::Volume(v), LockMode::Ex) => {
                self.start_callbacks(txn, CbTarget::Volume(v), PageId::default(), done)
            }
            // Shared/intention modes: the server lock suffices.
            _ => self.send(from, Message::LockGranted { req }),
        }
    }

    /// Point-read of a forwarded object (§4.4): resolve the tombstone
    /// and return the current bytes. Protection comes from the lock the
    /// requester already holds on the (original) object.
    pub(crate) fn server_read_forwarded(&mut self, req: ReqId, from: SiteId, txn: TxnId, oid: Oid) {
        // No in-flight retained copy exists for forwarded point reads
        // (they ride outside credit flow control), so a misroute cannot
        // redirect: refuse outright and let the transaction retry.
        if self.owners.owner_of(oid.page) != Some(self.site) {
            self.obs
                .record(pscc_obs::EventKind::OwnershipRefused { page: oid.page });
            self.send(
                from,
                Message::ReqDenied {
                    req,
                    reason: pscc_common::AbortReason::Internal,
                },
            );
            return;
        }
        self.txns.spread(txn);
        self.touch_resident(oid.page, false);
        let target = self.volume.resolve_forward(oid);
        if target.page != oid.page {
            self.touch_resident(target.page, false);
        }
        let bytes = self.volume.read_object(oid).map(<[u8]>::to_vec);
        self.send(from, Message::ObjectBytes { req, bytes });
    }

    // ------------------------------------------------------------------
    // Purges (paper §4.1.1, §4.2.4)
    // ------------------------------------------------------------------

    pub(crate) fn server_purge(
        &mut self,
        from: SiteId,
        page: PageId,
        ship_seq: u64,
        replicate: Vec<(TxnId, LockableId, LockMode)>,
        log_records: Vec<LogRecord>,
    ) {
        // A purge notice that chased a migrated range is forwarded to
        // the current owner, which holds the page's copy-table entry
        // (shipped with the transfer chunk) and its authoritative image.
        // `from` is the purging client carried in the message, so the
        // forward preserves it.
        match self.owners.owner_of(page) {
            Some(o) if o != self.site => {
                self.send(
                    o,
                    Message::Purge {
                        client: from,
                        page,
                        ship_seq,
                        replicate,
                        log_records,
                    },
                );
                return;
            }
            None => {
                self.obs
                    .record(pscc_obs::EventKind::OwnershipRefused { page });
                return;
            }
            Some(_) => {}
        }
        if !self.copy_table.purge(page, from, ship_seq) {
            self.stats.purge_races += 1;
            self.obs.record(pscc_obs::EventKind::Race {
                item: LockableId::Page(page),
                kind: pscc_obs::event::RaceKind::PurgeInFlight,
            });
        }
        for (t, item, m) in replicate {
            if self.replicable(t) && self.locks.held_mode(t, item).is_none_or(|h| h.sup(m) != h) {
                // Only strengthen; never weaken an existing server lock.
                if self
                    .locks
                    .holders(item)
                    .iter()
                    .filter(|(ht, _)| *ht != t)
                    .all(|(_, hm)| hm.compatible(m))
                {
                    self.locks.force_grant(t, item, m);
                }
            }
        }
        // Adaptive locks held by that client's transactions die with the
        // cached copy.
        for t in self.locks.adaptive_holders(page) {
            if t.site == from {
                self.locks.clear_adaptive(t, page);
            }
        }
        // Early-shipped updates: install them (redo-at-server). Records
        // of transactions that have since ended here (e.g. aborted as a
        // victim while the purge was in flight) must NOT be applied —
        // there would be nobody left to undo them.
        let log_records: Vec<LogRecord> = log_records
            .into_iter()
            .filter(|r| self.txns.is_active(r.txn))
            .collect();
        if !log_records.is_empty() {
            let txn = log_records[0].txn;
            self.apply_records_async(
                txn,
                log_records,
                super::commit::CommitReplyKind::None,
                false,
                false,
            );
        }
    }
}
