//! Crash detection and orphan cleanup.
//!
//! The paper's protocols assume clients never vanish: SHORE only times
//! out lock waits (§5.5), so a crashed client would strand its locks,
//! callbacks, and copy-table entries forever. This module adds the
//! failure handling the reproduction needs to run under fault
//! injection, in the spirit of lease-based self-invalidation:
//!
//! * **Leases** — when `SystemConfig::leases_enabled`, a server notes
//!   the virtual time of every message received from a remote peer and
//!   keeps a lease timer armed; if a full `lease_duration` passes in
//!   silence, the peer is declared crashed.
//! * **Heartbeats** — each site periodically sends
//!   [`Message::Heartbeat`] to every peer it has contacted, so healthy
//!   but idle clients keep their leases alive.
//! * **Callback-response bound** — a callback fan-out arms one extra
//!   timer; if responses are still pending when it fires, the stragglers
//!   are declared crashed even if their heartbeats still flow (they are
//!   wedged mid-callback).
//! * **Orphan cleanup** — [`PeerServer::declare_site_dead`] aborts the
//!   dead client's in-flight transactions through the WAL undo path,
//!   releases their (replicated) locks, revokes the client's copy-table
//!   entries, re-drives callbacks blocked on its acknowledgment, and
//!   completes deescalations addressed to it. Transactions the dead
//!   site *prepared* here are kept in doubt (2PC safety) and resolved
//!   by `QueryTxn` when their home rejoins.
//! * **Rejoin fencing** — declaring a site dead also marks it with the
//!   must-rejoin sentinel in the epoch registry, so a revived or
//!   falsely-suspected client cannot act on stale registrations: its
//!   next request is refused with [`Message::RejoinRequired`] and it
//!   re-synchronizes through the handshake in `engine/recovery.rs`.
//!   Symmetrically, the declaring site self-invalidates its own cached
//!   pages owned by the suspect — callbacks from a dead (or
//!   partitioned-away) owner would never arrive to keep them
//!   consistent.
//!
//! All timers follow the engine's stale-fire idiom: a fire whose state
//! has moved on is a no-op. With leases disabled (the default) none of
//! this arms, so failure-free runs are unchanged.

use super::{CbKey, PeerServer, ReqCont, TimerKind};
use crate::msg::{CbId, DeId, Message, Output, ReqId};
use crate::txn::TxnStatus;
use pscc_common::{AbortReason, SiteId, TxnId};

impl PeerServer {
    /// Records a message received from `from`, renewing its lease and
    /// arming the lease timer on first contact. A message from a peer
    /// previously declared dead means it restarted: forget the
    /// declaration and lease it afresh.
    pub(crate) fn observe_peer(&mut self, from: SiteId) {
        self.dead_sites.remove(&from);
        if self.lease_heard.insert(from, self.now).is_none() {
            self.arm_lease_timer(from, self.cfg.lease_duration);
        }
    }

    /// Records that this site sent a message to `to`; arms the periodic
    /// heartbeat tick on first remote contact.
    pub(crate) fn note_contact(&mut self, to: SiteId) {
        self.hb_peers.insert(to);
        if !self.hb_armed {
            self.hb_armed = true;
            let timer = self.fresh_timer();
            self.timers.insert(timer, TimerKind::Heartbeat);
            self.out.push(Output::ArmTimer {
                timer,
                delay: self.cfg.heartbeat_interval,
            });
        }
    }

    fn arm_lease_timer(&mut self, site: SiteId, delay: pscc_common::SimDuration) {
        let timer = self.fresh_timer();
        self.timers.insert(timer, TimerKind::Lease { site });
        self.out.push(Output::ArmTimer { timer, delay });
    }

    /// A lease timer fired: declare the peer crashed if it has been
    /// silent for a full lease, else re-arm for the remaining time.
    pub(crate) fn lease_fired(&mut self, site: SiteId) {
        let Some(&heard) = self.lease_heard.get(&site) else {
            return; // lease retired (peer already declared dead)
        };
        let elapsed = self.now.since(heard);
        if elapsed >= self.cfg.lease_duration {
            self.declare_site_dead(site);
        } else {
            self.arm_lease_timer(site, self.cfg.lease_duration.saturating_sub(elapsed));
        }
    }

    /// The heartbeat tick fired: ping every contacted peer and re-arm.
    pub(crate) fn heartbeat_fired(&mut self) {
        let peers: Vec<SiteId> = self.hb_peers.iter().copied().collect();
        for p in peers {
            self.send(p, Message::Heartbeat);
        }
        let timer = self.fresh_timer();
        self.timers.insert(timer, TimerKind::Heartbeat);
        self.out.push(Output::ArmTimer {
            timer,
            delay: self.cfg.heartbeat_interval,
        });
    }

    /// The bounded callback-response timer fired: any client still
    /// pending on the operation is wedged — declare it crashed (which
    /// removes it from the pending set and re-drives the operation).
    pub(crate) fn cb_response_fired(&mut self, cb: CbId) {
        let Some(op) = self.cb_ops.get(&cb) else {
            return; // operation completed in time
        };
        let mut stragglers: Vec<SiteId> = op
            .pending
            .iter()
            .copied()
            .filter(|s| *s != self.site)
            .collect();
        stragglers.sort();
        for s in stragglers {
            self.declare_site_dead(s);
        }
    }

    /// Declares `dead` crashed and cleans up everything it stranded
    /// here. Idempotent until the site is heard from again (restart).
    /// Harnesses may call this directly; the lease and
    /// callback-response timers call it on expiry.
    pub fn declare_site_dead(&mut self, dead: SiteId) {
        if dead == self.site || !self.dead_sites.insert(dead) {
            return;
        }
        self.lease_heard.remove(&dead);
        self.hb_peers.remove(&dead);
        self.stats.crashes_detected += 1;
        self.obs
            .record(pscc_obs::EventKind::CrashDetected { site: dead });

        // Fence the (possibly falsely-suspected) site: its registrations
        // here are about to be revoked, so it must complete the rejoin
        // handshake before any new work is served (engine/recovery.rs).
        self.joined.insert(dead, 0);

        // Client role: pages cached from the dead owner are no longer
        // protected by callbacks — self-invalidate them, and void any
        // grants backed by its (gone) lock state.
        let cached = self.cache.pages();
        for page in cached {
            if self.owners.owner_of(page) == Some(dead) {
                self.cache.purge(page);
            }
        }
        let owners = self.owners.clone();
        for h in self.txns.home.values_mut() {
            h.adaptive_pages
                .retain(|p| owners.owner_of(*p) != Some(dead));
            h.page_write_grants
                .retain(|p| owners.owner_of(*p) != Some(dead));
        }

        // Abort every in-flight transaction whose home is the dead site:
        // WAL undo, replicated-lock release, callback cancellation and
        // grant re-processing all happen in `server_abort_core`. The
        // exception is transactions the dead site durably *prepared*
        // here: presumed abort would race a decision its home may
        // already have sent, so they stay in doubt until the home
        // rejoins and answers `QueryTxn`.
        let mut orphans: Vec<TxnId> = self
            .txns
            .remote
            .iter()
            .filter(|(t, r)| t.site == dead && !r.prepared)
            .map(|(t, _)| *t)
            .collect();
        orphans.sort();
        for txn in orphans {
            self.stats.orphans_aborted += 1;
            self.obs
                .record(pscc_obs::EventKind::OrphanAborted { txn, dead });
            self.server_abort_core(txn);
        }

        // Its cache no longer exists: revoke its copy-table entries so
        // future callbacks and adaptive-grant checks skip it.
        self.copy_table.drop_site_entries(dead);

        // Edge tier (DESIGN.md §11): drop its watch subscription here
        // (owner role), and purge everything *it* owned from the local
        // edge cache (edge role).
        self.edge_site_dead(dead);

        // Overload protection: admission slots its requests held are
        // void, and this site's credit state toward it resets — queued
        // requests for the dead owner will never be answered (their
        // transactions are aborted below), and a fresh credit pool is
        // lazily seeded if it rejoins.
        self.admitted.retain(|(s, _), _| *s != dead);
        self.credits.remove(&dead);
        self.credit_waiters.remove(&dead);
        self.inflight.retain(|_, (s, _, _)| *s != dead);

        // Re-drive callback operations blocked on its acknowledgment
        // (the purge is moot — the cache is gone).
        let mut blocked: Vec<CbId> = self
            .cb_ops
            .iter()
            .filter(|(_, op)| op.pending.contains(&dead))
            .map(|(id, _)| *id)
            .collect();
        blocked.sort();
        for cb in blocked {
            if let Some(op) = self.cb_ops.get_mut(&cb) {
                op.pending.remove(&dead);
            }
            self.try_finish_cb_op(cb);
        }

        // Deescalations addressed to the dead client complete with no
        // reported locks (its transactions were aborted above).
        let mut des: Vec<DeId> = self
            .de_ops
            .iter()
            .filter(|(_, op)| op.client == dead)
            .map(|(id, _)| *id)
            .collect();
        des.sort();
        for de in des {
            let page = self.de_ops[&de].page;
            self.server_deescalate_reply(de, page, Vec::new());
        }

        // Client role: drop callback threads running on behalf of the
        // dead owner — it will never collect the acknowledgment.
        let mut keys: Vec<CbKey> = self
            .cb_ctxs
            .keys()
            .copied()
            .filter(|(owner, _)| *owner == dead)
            .collect();
        keys.sort();
        for k in keys {
            self.cancel_cb_ctx(k);
        }

        // Home transactions that enlisted the dead site as a participant
        // cannot commit; abort the still-active ones now instead of
        // letting 2PC hang. Ones already committing need triage: if the
        // decision has not been made (a prepare is still outstanding),
        // presumed abort is safe; but a single-round `CommitReq` or a
        // sent `Decide` may already be durable at the dead site — those
        // are left to resolve via `QueryTxn` when it restarts.
        let mut doomed: Vec<TxnId> = self
            .txns
            .home
            .iter()
            .filter(|(_, h)| h.participants.contains(&dead))
            .map(|(t, _)| *t)
            .collect();
        doomed.sort();
        for txn in doomed {
            let committing = self
                .txns
                .home
                .get(&txn)
                .is_some_and(|h| h.status == TxnStatus::Committing);
            if !committing {
                self.abort_txn_here(txn, AbortReason::Internal);
                continue;
            }
            let commit_pending = self
                .req_conts
                .values()
                .any(|c| matches!(c, ReqCont::Commit { txn: t } if *t == txn));
            let prepare_pending: Vec<ReqId> = self
                .req_conts
                .iter()
                .filter(|(_, c)| matches!(c, ReqCont::Prepare { txn: t, .. } if *t == txn))
                .map(|(r, _)| *r)
                .collect();
            if commit_pending || prepare_pending.is_empty() {
                continue; // outcome possibly durable at the dead site
            }
            for r in prepare_pending {
                self.req_conts.remove(&r);
            }
            if let Some(h) = self.txns.home.get_mut(&txn) {
                h.status = TxnStatus::Active;
            }
            self.home_abort(txn, AbortReason::Internal);
        }
    }
}
