//! Transaction termination: redo-at-server commit (paper §3.3),
//! two-phase commit for multi-owner transactions, and the abort
//! procedure (client purge + server undo + callback cancellation).

use super::{CbKey, DiskCont, PeerServer, ReqCont};
use crate::msg::{AppReply, CbTarget, DiskOp, Message, ReqId};
use crate::txn::TxnStatus;
use pscc_common::{AbortReason, SiteId, TxnId};
use pscc_wal::{LogPayload, LogRecord};
use std::collections::{HashMap, VecDeque};

/// How a record-application pass finishes.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CommitReplyKind {
    /// Nothing to send (early-shipped records from a purge).
    None,
    /// Single-round commit: ack with `CommitOk`.
    CommitOk { req: ReqId, to: SiteId },
    /// 2PC prepare: answer with a vote.
    Voted { req: ReqId, to: SiteId },
    /// 2PC decision applied: ack with `Decided`.
    Decided { to: SiteId },
}

/// The state machine applying shipped log records at an owner —
/// "redo-at-server": each record's page must be resident (disk reads are
/// charged for misses, §3.3), then the log is forced.
#[derive(Debug, Clone)]
pub(crate) struct CommitApply {
    pub txn: TxnId,
    pub records: VecDeque<LogRecord>,
    pub reply: CommitReplyKind,
    /// Release the transaction's locks and end it here afterwards.
    pub release: bool,
    /// Mark the remote transaction prepared (2PC phase one).
    pub prepare_mark: bool,
}

impl PeerServer {
    // ------------------------------------------------------------------
    // Home-side commit
    // ------------------------------------------------------------------

    /// The application asked to commit `txn`.
    pub(crate) fn client_commit(&mut self, txn: TxnId) {
        let records = self.log_cache.drain_txn(txn);
        let mut by_owner: HashMap<SiteId, Vec<LogRecord>> = HashMap::new();
        for rec in records {
            let owner = rec
                .payload
                .page()
                .and_then(|p| self.owners.owner_of(p))
                .unwrap_or(self.site);
            by_owner.entry(owner).or_default().push(rec);
        }
        let participants: Vec<SiteId> = {
            let Some(h) = self.txns.home.get_mut(&txn) else {
                return;
            };
            h.status = TxnStatus::Committing;
            for o in by_owner.keys() {
                h.participants.insert(*o);
            }
            let mut p: Vec<SiteId> = h.participants.iter().copied().collect();
            p.sort();
            p
        };
        self.obs.commit_begin(txn, self.now);
        self.obs.record(pscc_obs::EventKind::Commit {
            txn,
            stage: pscc_obs::event::CommitStage::Request,
        });
        if participants.is_empty() {
            // Purely local, read-only: nothing to ship or force.
            self.finish_home_commit(txn);
            return;
        }
        if participants.len() == 1 {
            let site = participants[0];
            let req = self.fresh_req();
            self.req_conts.insert(req, ReqCont::Commit { txn });
            let records = by_owner.remove(&site).unwrap_or_default();
            self.send(site, Message::CommitReq { req, txn, records });
            return;
        }
        // Two-phase commit (paper §3.3).
        self.obs.prepare_begin(txn, self.now);
        self.obs.record(pscc_obs::EventKind::Commit {
            txn,
            stage: pscc_obs::event::CommitStage::Prepare,
        });
        for site in participants {
            let req = self.fresh_req();
            self.req_conts.insert(req, ReqCont::Prepare { txn, site });
            let records = by_owner.remove(&site).unwrap_or_default();
            self.send(site, Message::Prepare { req, txn, records });
        }
    }

    /// `CommitOk` from the single participant.
    pub(crate) fn client_commit_ok(&mut self, req: ReqId) {
        let Some(ReqCont::Commit { txn }) = self.req_conts.remove(&req) else {
            return;
        };
        self.finish_home_commit(txn);
    }

    /// A 2PC vote arrived — from the wire, or synthesized by recovery
    /// when a restarted participant's durable prepare stands in for a
    /// `Voted` message the crash swallowed.
    pub(crate) fn register_vote(&mut self, req: ReqId, txn: TxnId, yes: bool) {
        let Some(ReqCont::Prepare { txn: t, site }) = self.req_conts.remove(&req) else {
            return;
        };
        debug_assert_eq!(t, txn);
        let decide: Option<Vec<SiteId>> = {
            let Some(h) = self.txns.home.get_mut(&txn) else {
                return;
            };
            if !yes {
                None // a refused vote aborts (not reachable in practice)
            } else {
                h.votes.insert(site);
                if h.votes.len() == h.participants.len() {
                    let mut p: Vec<SiteId> = h.participants.iter().copied().collect();
                    p.sort();
                    Some(p)
                } else {
                    return;
                }
            }
        };
        match decide {
            Some(participants) => {
                self.obs.prepare_done(txn, self.now);
                self.obs.decide_begin(txn, self.now);
                self.obs.record(pscc_obs::EventKind::Commit {
                    txn,
                    stage: pscc_obs::event::CommitStage::Voted,
                });
                for site in participants {
                    self.send(site, Message::Decide { txn, commit: true });
                }
                self.obs.record(pscc_obs::EventKind::Commit {
                    txn,
                    stage: pscc_obs::event::CommitStage::Decided,
                });
            }
            None => {
                // Global abort: participants roll back on AbortTxn.
                self.home_abort(txn, AbortReason::Internal);
            }
        }
    }

    /// A 2PC decision acknowledgment arrived.
    pub(crate) fn client_decided(&mut self, from: SiteId, txn: TxnId) {
        let done = {
            let Some(h) = self.txns.home.get_mut(&txn) else {
                return;
            };
            h.decided_acks.insert(from);
            h.decided_acks.len() == h.participants.len()
        };
        if done {
            self.finish_home_commit(txn);
        }
    }

    /// All participants are done: release local locks, mark cached
    /// objects clean, answer the application.
    pub(crate) fn finish_home_commit(&mut self, txn: TxnId) {
        let Some(h) = self.txns.home.remove(&txn) else {
            return;
        };
        self.cache.clean_txn(txn);
        let out = self.locks.release_all(txn);
        self.obs.record(pscc_obs::EventKind::LocksReleased { txn });
        for t in &out.cancelled {
            self.lock_conts.remove(t);
            self.finish_wait(*t, false);
        }
        self.stats.commits += 1;
        self.obs.decide_done(txn, self.now);
        self.obs.commit_done(txn, self.now);
        self.trace_txn_done(txn);
        self.obs.record(pscc_obs::EventKind::Commit {
            txn,
            stage: pscc_obs::event::CommitStage::Done,
        });
        self.reply_app(AppReply::Committed { app: h.app, txn });
        self.process_grants(out.grants);
    }

    // ------------------------------------------------------------------
    // Owner-side commit
    // ------------------------------------------------------------------

    pub(crate) fn server_commit_req(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        records: Vec<LogRecord>,
    ) {
        self.txns.spread(txn);
        self.apply_records_async(
            txn,
            records,
            CommitReplyKind::CommitOk { req, to: from },
            true,
            false,
        );
    }

    pub(crate) fn server_prepare(
        &mut self,
        req: ReqId,
        from: SiteId,
        txn: TxnId,
        records: Vec<LogRecord>,
    ) {
        self.txns.spread(txn);
        self.apply_records_async(
            txn,
            records,
            CommitReplyKind::Voted { req, to: from },
            false,
            true,
        );
    }

    pub(crate) fn server_decide(&mut self, from: SiteId, txn: TxnId, commit: bool) {
        // Decisions must be idempotent: recovery retries the outcome
        // query (once from restart, once per rejoin handshake), so the
        // same decision can arrive more than once — and a retry that
        // reaches the coordinator after it has forgotten the transaction
        // comes back as a stale presumed abort. Once our commit record
        // is logged the authoritative decision was commit; anything
        // later only needs the ack re-sent.
        if self.log.was_committed(txn) {
            self.send(from, Message::Decided { txn });
            return;
        }
        if commit {
            self.apply_records_async(
                txn,
                Vec::new(),
                CommitReplyKind::Decided { to: from },
                true,
                false,
            );
        } else {
            self.server_abort_core(txn);
            self.send(from, Message::Decided { txn });
        }
    }

    /// Starts (or continues) applying records; suspension points are disk
    /// reads for non-resident pages and the final log force.
    pub(crate) fn apply_records_async(
        &mut self,
        txn: TxnId,
        records: Vec<LogRecord>,
        reply: CommitReplyKind,
        release: bool,
        prepare_mark: bool,
    ) {
        let state = CommitApply {
            txn,
            records: records.into(),
            reply,
            release,
            prepare_mark,
        };
        self.commit_apply_step(state);
    }

    /// Applies records until one needs a disk read, then suspends.
    pub(crate) fn commit_apply_step(&mut self, mut state: CommitApply) {
        loop {
            let Some(page) = state.records.front().and_then(|r| r.payload.page()) else {
                // Either no records left, or a control record (none are
                // shipped); move to finalization when empty.
                if state.records.pop_front().is_none() {
                    break;
                }
                continue;
            };
            if !self.touch_resident(page, true) {
                self.disk(DiskOp::ReadPage(page), DiskCont::CommitApply(state));
                return;
            }
            let rec = state.records.pop_front().expect("peeked above");
            let lsn = self.log.append(rec.clone());
            match pscc_wal::apply_redo(&mut self.volume, &rec) {
                Ok(()) => {}
                Err(pscc_common::PsccError::PageFull(_)) => {
                    // Size-growing update overflowing the home page:
                    // forward the object to an overflow page (paper §4.4,
                    // the System-R-style technique).
                    if let pscc_wal::LogPayload::Update { oid, after, .. } = &rec.payload {
                        let overflow = self.overflow_page_for(after.len());
                        let fwd = self.volume.write_object_forwarding(*oid, after, overflow);
                        debug_assert!(fwd.is_ok(), "forwarding failed: {fwd:?}");
                        self.touch_resident(overflow, true);
                        pscc_wal::stamp_page_lsn(&mut self.volume, overflow, lsn);
                    }
                }
                Err(e) => debug_assert!(false, "redo failed: {e:?}"),
            }
            // Stamp the page LSN so restart redo can skip records whose
            // effects are already in the checkpoint base (ARIES
            // idempotence).
            pscc_wal::stamp_page_lsn(&mut self.volume, page, lsn);
        }
        // Finalize: write the control record and force the log, unless
        // this was a pure early-ship (purge) application.
        match state.reply {
            CommitReplyKind::None => self.commit_forced(state),
            _ => {
                let payload = if state.prepare_mark {
                    LogPayload::Prepare
                } else {
                    LogPayload::Commit
                };
                self.log.append(LogRecord {
                    txn: state.txn,
                    payload,
                });
                if self.log.force() {
                    self.obs.force_begin(state.txn, self.now);
                    self.disk(DiskOp::WriteLog, DiskCont::CommitForced(state));
                } else {
                    self.commit_forced(state);
                }
            }
        }
    }

    /// The log force completed: release (if commit), answer.
    pub(crate) fn commit_forced(&mut self, state: CommitApply) {
        self.obs.force_done(state.txn, self.now);
        if state.prepare_mark {
            if let Some(r) = self.txns.remote.get_mut(&state.txn) {
                r.prepared = true;
            }
        }
        if state.release {
            // Edge tier (DESIGN.md §11): the pages this commit touched,
            // captured before `end_txn` drops the in-flight records.
            // Publishing streams invalidations to subscribed edge sites
            // and records per-page versions; a no-op when no tiers are
            // configured.
            if !self.cfg.edge_tiers.is_empty() {
                let pages: Vec<pscc_common::PageId> = self
                    .log
                    .in_flight_of(state.txn)
                    .iter()
                    .filter_map(|r| r.payload.page())
                    .collect();
                self.edge_publish_commit(pages);
            }
            self.log.end_txn(state.txn, false);
            let out = self.locks.release_all(state.txn);
            self.obs
                .record(pscc_obs::EventKind::LocksReleased { txn: state.txn });
            for t in &out.cancelled {
                self.lock_conts.remove(t);
                self.finish_wait(*t, false);
            }
            self.txns.remote.remove(&state.txn);
            self.trace_txn_done(state.txn);
            self.process_grants(out.grants);
        }
        match state.reply {
            CommitReplyKind::None => {}
            CommitReplyKind::CommitOk { req, to } => self.send(to, Message::CommitOk { req }),
            CommitReplyKind::Voted { req, to } => self.send(
                to,
                Message::Voted {
                    req,
                    txn: state.txn,
                    yes: true,
                },
            ),
            CommitReplyKind::Decided { to } => self.send(to, Message::Decided { txn: state.txn }),
        }
    }

    // ------------------------------------------------------------------
    // Aborts
    // ------------------------------------------------------------------

    /// Aborts `txn` from wherever the decision was made: at its home,
    /// run the full abort procedure; at an owner, clean up locally and
    /// notify the home.
    pub(crate) fn abort_txn_here(&mut self, txn: TxnId, reason: AbortReason) {
        if txn.site == self.site {
            self.home_abort(txn, reason);
        } else {
            self.server_abort_core(txn);
            self.send(txn.site, Message::TxnAborted { txn, reason });
        }
    }

    /// The home-side abort procedure (paper §3.3): purge updated objects
    /// from the cache, discard the log cache, release locks, notify
    /// participants, answer the application.
    pub(crate) fn home_abort(&mut self, txn: TxnId, reason: AbortReason) {
        let (app, participants, reqs, updated) = {
            let Some(h) = self.txns.home.get_mut(&txn) else {
                return;
            };
            if h.status != TxnStatus::Active {
                return; // already committing or aborted: first wins
            }
            h.status = TxnStatus::Aborted;
            (
                h.app,
                h.participants.iter().copied().collect::<Vec<_>>(),
                h.outstanding_reqs.drain().collect::<Vec<_>>(),
                h.updated.iter().copied().collect::<Vec<_>>(),
            )
        };
        // Overload protection: requests of this transaction still queued
        // for a credit die with it; in-flight ones return their credit
        // now (a late reply re-releases, but the pool is capped).
        for q in self.credit_waiters.values_mut() {
            q.retain(|m| super::credit_request(m).map(|(_, t)| t) != Some(txn));
        }
        self.credit_waiters.retain(|_, q| !q.is_empty());
        for r in &reqs {
            if let Some((site, _, _)) = self.inflight.remove(r) {
                self.credit_release(site);
            }
        }
        for r in reqs {
            self.req_conts.remove(&r);
            self.races.forget_request(r);
            self.obs.fetch_drop(r);
            self.obs.queue_drop(r);
            // A request the server will never answer (it was cancelled
            // there) must not leave a pending-fetch mark behind.
            self.pending_fetches.retain(|_, set| {
                set.remove(&r);
                !set.is_empty()
            });
        }
        self.stats.aborts += 1;
        self.obs.commit_drop(txn);
        self.obs.record(pscc_obs::EventKind::Abort { txn, reason });
        self.cache.abort_txn(txn);
        // Objects updated earlier whose dirty marks were lost to an
        // eviction + re-fetch still hold uncommitted bytes: purge them.
        for oid in updated {
            self.cache.mark_unavailable(oid);
        }
        self.log_cache.discard_txn(txn);
        self.server_abort_core(txn);
        for p in participants {
            if p != self.site {
                self.send(p, Message::AbortTxn { txn });
            }
        }
        self.txns.home.remove(&txn);
        self.trace_txn_done(txn);
        self.reply_app(AppReply::Aborted { app, txn, reason });
    }

    /// Owner-side cleanup on abort (also run at the home for its own
    /// volume): cancel the transaction's callbacks, undo its shipped
    /// updates, release its locks.
    pub(crate) fn server_abort_core(&mut self, txn: TxnId) {
        // A remote transaction aborted here stays refusable: its late
        // requests (reordered onto a slower lane than the abort) must
        // not re-acquire state this cleanup just released.
        self.tombstone_txn(txn);
        // Cancel callback operations it initiated.
        let cbs: Vec<crate::msg::CbId> = self
            .cb_ops
            .iter()
            .filter(|(_, op)| op.txn == txn)
            .map(|(id, _)| *id)
            .collect();
        for cb in cbs {
            let op = self.cb_ops.remove(&cb).expect("listed above");
            self.obs.cb_closed(cb);
            if let CbTarget::Object(o) = op.target {
                self.cb_by_object.remove(&o);
            }
            if let Some(t) = op.upgrade {
                self.lock_conts.remove(&t);
                self.finish_wait(t, false);
            }
            for site in op.pending {
                if site == self.site {
                    self.cancel_cb_ctx((self.site, cb));
                } else {
                    self.send(site, Message::CbCancel { cb });
                }
            }
        }
        // Drop deescalation-queued work from the aborted transaction.
        for op in self.de_ops.values_mut() {
            op.queued.retain(|w| input_txn(w) != Some(txn));
        }
        // A durable Abort record lets restart analysis tell a
        // rolled-back transaction from an in-doubt one (it is not
        // forced — if it is lost, the transaction is a loser anyway).
        let was_prepared = self.txns.remote.get(&txn).is_some_and(|r| r.prepared);
        if was_prepared || !self.log.in_flight_of(txn).is_empty() {
            self.log.append(LogRecord {
                txn,
                payload: LogPayload::Abort,
            });
        }
        // Undo already-applied updates (before-images, §3.3). Disk reads
        // for non-resident pages are charged without blocking the abort.
        let undo = self.log.end_txn(txn, true);
        for rec in undo {
            if let Some(p) = rec.payload.page() {
                if !self.touch_resident(p, true) {
                    self.disk(DiskOp::ReadPage(p), DiskCont::Accounted);
                }
            }
            let _ = pscc_wal::apply_undo(&mut self.volume, &rec);
        }
        // Cancel any callback threads running here on the transaction's
        // behalf (client role).
        let keys: Vec<CbKey> = self
            .cb_ctxs
            .iter()
            .filter(|(_, c)| c.txn == txn)
            .map(|(k, _)| *k)
            .collect();
        for k in keys {
            self.cancel_cb_ctx(k);
        }
        // Admission slots held by the transaction's requests are void —
        // no verdict will ever depart for them.
        self.admitted.retain(|_, t| *t != txn);
        // Release all locks and cancel all waits.
        let out = self.locks.release_all(txn);
        self.obs.record(pscc_obs::EventKind::LocksReleased { txn });
        for t in &out.cancelled {
            self.lock_conts.remove(t);
            self.finish_wait(*t, false);
        }
        self.txns.remote.remove(&txn);
        self.trace_txn_done(txn);
        self.process_grants(out.grants);
    }

    /// `AbortTxn` from the home.
    pub(crate) fn server_abort_txn(&mut self, txn: TxnId) {
        self.server_abort_core(txn);
    }

    /// An overflow page with at least `len` bytes free, allocating a new
    /// one when needed (targets of §4.4 forwarding).
    pub(crate) fn overflow_page_for(&mut self, len: usize) -> pscc_common::PageId {
        if let Some(p) = self.overflow_page {
            if self.volume.page_fits(p, len) {
                return p;
            }
        }
        let file = self.volume.files()[0];
        let p = self.volume.allocate_page(file);
        self.overflow_page = Some(p);
        p
    }
}

/// The transaction a queued work item belongs to (for abort-time pruning
/// of deescalation queues).
fn input_txn(w: &crate::msg::Input) -> Option<TxnId> {
    match w {
        crate::msg::Input::App(req) => req.txn,
        crate::msg::Input::Msg {
            msg:
                Message::ReadObj { txn, .. }
                | Message::ReadPage { txn, .. }
                | Message::WriteObj { txn, .. }
                | Message::WritePage { txn, .. }
                | Message::LockItem { txn, .. }
                | Message::CommitReq { txn, .. }
                | Message::Prepare { txn, .. },
            ..
        } => Some(*txn),
        _ => None,
    }
}
