//! Per-site observability state carried by the engine: an optional
//! protocol trace handle, always-on latency histograms, and the
//! in-flight stamps used to turn request/reply pairs into round-trip
//! latencies. Recording is O(1) and allocation-free on the hot path;
//! the trace is off unless [`crate::PeerServer::enable_trace`] is
//! called.
//!
//! Stage attribution (DESIGN.md §9): every measured interval is also
//! recorded into a per-[`Stage`] histogram and — when tracing is on —
//! emitted as a `StageSample` event stamped with the transaction it
//! served, which is what the critical-path analyzer in `pscc-obs`
//! sweeps into per-transaction commit-latency breakdowns.

use crate::msg::{CbId, ReqId};
use pscc_common::{SimDuration, SimTime, SiteId, Stage, TxnId};
use pscc_obs::event::{EventKind, TraceHandle};
use pscc_obs::Histogram;
use std::collections::HashMap;

/// Observability state of one [`crate::PeerServer`].
#[derive(Debug, Default)]
pub struct SiteObs {
    trace: Option<TraceHandle>,
    /// Blocked lock acquisitions: queueing to grant.
    pub lock_wait: Histogram,
    /// Callback round trips: issue at the owner to each acknowledgment.
    pub callback_rtt: Histogram,
    /// Fetch round trips: request sent to page installed.
    pub fetch_rtt: Histogram,
    /// Commit latency: application commit to committed.
    pub commit_latency: Histogram,
    /// Whole-transaction latency: begin to committed. Unlike
    /// `commit_latency` (whose commit phase is dominated by
    /// protocol-independent WAL/2PC costs) this includes the
    /// execution-phase lock, fetch, and callback waits where the
    /// consistency protocols actually differ.
    pub txn_latency: Histogram,
    /// Restart recovery duration (analysis + redo + undo wall clock,
    /// one sample per completed recovery).
    pub recovery_time: Histogram,
    /// Ownership-migration pause: range freeze (`MigratePrepare`
    /// accepted) to the source's commit record going durable — the
    /// window in which traffic on the moving range is held off.
    pub migration_pause: Histogram,
    /// Staleness of lock-free edge reads at serve time: now minus the
    /// copy's validation instant (fetch send time, or last acked watch
    /// renew). Always below the tier's bound when the protocol is
    /// honest — the auditor's check 6 cross-checks it from the trace.
    pub edge_staleness: Histogram,
    /// Per-stage latency histograms (indexed by [`Stage::index`]).
    stage_hists: [Histogram; Stage::COUNT],
    fetch_started: HashMap<ReqId, (TxnId, SimTime)>,
    cb_started: HashMap<CbId, (TxnId, SimTime)>,
    commit_started: HashMap<TxnId, SimTime>,
    txn_started: HashMap<TxnId, SimTime>,
    force_started: HashMap<TxnId, SimTime>,
    prepare_started: HashMap<TxnId, SimTime>,
    decide_started: HashMap<TxnId, SimTime>,
    queue_started: HashMap<ReqId, (TxnId, SimTime)>,
}

impl SiteObs {
    /// Turns event tracing on with a ring of `cap` events, returning a
    /// handle the harness keeps for snapshots/merging.
    pub fn enable_trace(&mut self, site: SiteId, cap: usize) -> TraceHandle {
        let h = TraceHandle::new(site, cap);
        self.trace = Some(h.clone());
        h
    }

    /// The trace handle, if tracing is enabled.
    pub fn trace_handle(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// Records a protocol event (no-op when tracing is off).
    pub fn record(&self, kind: EventKind) {
        if let Some(t) = &self.trace {
            t.record(kind);
        }
    }

    /// Advances the shared virtual clock used to stamp events.
    pub fn set_now(&self, now: SimTime) {
        if let Some(t) = &self.trace {
            t.set_now(now);
        }
    }

    /// The per-stage latency histogram for `stage`.
    pub fn stage_hist(&self, stage: Stage) -> &Histogram {
        &self.stage_hists[stage.index()]
    }

    /// Records one measured `stage` interval ending now on behalf of
    /// `txn`: always into the per-stage histogram, and into the event
    /// ring when tracing is on (the analyzer's raw material).
    pub(crate) fn stage_sample(&mut self, txn: TxnId, stage: Stage, d: SimDuration) {
        self.stage_hists[stage.index()].record(d);
        self.record(EventKind::StageSample {
            txn,
            stage,
            micros: d.as_micros(),
        });
    }

    pub(crate) fn fetch_sent(&mut self, req: ReqId, txn: TxnId, now: SimTime) {
        self.fetch_started.insert(req, (txn, now));
    }

    pub(crate) fn fetch_done(&mut self, req: ReqId, now: SimTime) {
        if let Some((txn, t0)) = self.fetch_started.remove(&req) {
            let d = now.since(t0);
            self.fetch_rtt.record(d);
            self.stage_sample(txn, Stage::FetchRtt, d);
        }
    }

    /// Forgets a fetch stamp without recording (request cancelled).
    pub(crate) fn fetch_drop(&mut self, req: ReqId) {
        self.fetch_started.remove(&req);
    }

    pub(crate) fn cb_sent(&mut self, cb: CbId, txn: TxnId, now: SimTime) {
        self.cb_started.insert(cb, (txn, now));
    }

    /// One acknowledgment arrived; the stamp stays until the operation
    /// closes so later acks of the same fan-out are measured too.
    pub(crate) fn cb_acked(&mut self, cb: CbId, now: SimTime) {
        if let Some((txn, t0)) = self.cb_started.get(&cb).copied() {
            let d = now.since(t0);
            self.callback_rtt.record(d);
            self.stage_sample(txn, Stage::CallbackRtt, d);
        }
    }

    pub(crate) fn cb_closed(&mut self, cb: CbId) {
        self.cb_started.remove(&cb);
    }

    /// A home transaction began (application `Begin`).
    pub(crate) fn txn_begin(&mut self, txn: TxnId, now: SimTime) {
        self.txn_started.insert(txn, now);
    }

    pub(crate) fn commit_begin(&mut self, txn: TxnId, now: SimTime) {
        self.commit_started.insert(txn, now);
    }

    pub(crate) fn commit_done(&mut self, txn: TxnId, now: SimTime) {
        if let Some(t0) = self.commit_started.remove(&txn) {
            self.commit_latency.record(now.since(t0));
        }
        if let Some(t0) = self.txn_started.remove(&txn) {
            self.txn_latency.record(now.since(t0));
        }
    }

    pub(crate) fn commit_drop(&mut self, txn: TxnId) {
        self.commit_started.remove(&txn);
        self.txn_started.remove(&txn);
        self.force_started.remove(&txn);
        self.prepare_started.remove(&txn);
        self.decide_started.remove(&txn);
    }

    /// A commit-path WAL force was issued for `txn` at this owner.
    pub(crate) fn force_begin(&mut self, txn: TxnId, now: SimTime) {
        self.force_started.insert(txn, now);
    }

    /// The commit-path WAL force for `txn` became durable.
    pub(crate) fn force_done(&mut self, txn: TxnId, now: SimTime) {
        if let Some(t0) = self.force_started.remove(&txn) {
            self.stage_sample(txn, Stage::WalForce, now.since(t0));
        }
    }

    /// 2PC phase one began at the home (prepare fan-out).
    pub(crate) fn prepare_begin(&mut self, txn: TxnId, now: SimTime) {
        self.prepare_started.insert(txn, now);
    }

    /// All votes arrived at the home.
    pub(crate) fn prepare_done(&mut self, txn: TxnId, now: SimTime) {
        if let Some(t0) = self.prepare_started.remove(&txn) {
            self.stage_sample(txn, Stage::TwopcPrepare, now.since(t0));
        }
    }

    /// 2PC phase two began at the home (decide fan-out).
    pub(crate) fn decide_begin(&mut self, txn: TxnId, now: SimTime) {
        self.decide_started.insert(txn, now);
    }

    /// All decision acks arrived at the home.
    pub(crate) fn decide_done(&mut self, txn: TxnId, now: SimTime) {
        if let Some(t0) = self.decide_started.remove(&txn) {
            self.stage_sample(txn, Stage::TwopcDecide, now.since(t0));
        }
    }

    /// A data request began waiting in an overload queue (credit stall
    /// or busy backoff). First stall wins: a request that bounces
    /// through several backoffs accumulates one interval from the
    /// first stall to the final departure.
    pub(crate) fn queue_begin(&mut self, req: ReqId, txn: TxnId, now: SimTime) {
        self.queue_started.entry(req).or_insert((txn, now));
    }

    /// The stalled request finally departed (or was re-admitted).
    pub(crate) fn queue_end(&mut self, req: ReqId, now: SimTime) {
        if let Some((txn, t0)) = self.queue_started.remove(&req) {
            self.stage_sample(txn, Stage::QueueWait, now.since(t0));
        }
    }

    /// Forgets a queue stamp without recording (request died with its
    /// transaction).
    pub(crate) fn queue_drop(&mut self, req: ReqId) {
        self.queue_started.remove(&req);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::SimDuration;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(SiteId(0), seq)
    }

    #[test]
    fn rtt_pairs_measure_durations() {
        let mut o = SiteObs::default();
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(250);
        o.fetch_sent(ReqId(1), txn(1), t0);
        o.fetch_done(ReqId(1), t1);
        o.fetch_done(ReqId(2), t1); // unmatched: ignored
        assert_eq!(o.fetch_rtt.count(), 1);
        assert_eq!(o.fetch_rtt.sum_micros(), 250);
        assert_eq!(o.stage_hist(Stage::FetchRtt).count(), 1);
        assert_eq!(o.stage_hist(Stage::FetchRtt).sum_micros(), 250);

        o.commit_begin(txn(1), t0);
        o.commit_drop(txn(1));
        o.commit_done(txn(1), t1); // dropped: ignored
        assert_eq!(o.commit_latency.count(), 0);
    }

    #[test]
    fn callback_stamp_survives_until_closed() {
        let mut o = SiteObs::default();
        let t0 = SimTime::ZERO;
        o.cb_sent(CbId(7), txn(3), t0);
        o.cb_acked(CbId(7), t0 + SimDuration::from_micros(10));
        o.cb_acked(CbId(7), t0 + SimDuration::from_micros(30));
        o.cb_closed(CbId(7));
        o.cb_acked(CbId(7), t0 + SimDuration::from_micros(50));
        assert_eq!(o.callback_rtt.count(), 2);
        assert_eq!(o.callback_rtt.sum_micros(), 40);
        assert_eq!(o.stage_hist(Stage::CallbackRtt).sum_micros(), 40);
    }

    #[test]
    fn stage_pairs_and_queue_first_stall_wins() {
        let mut o = SiteObs::default();
        let t0 = SimTime::ZERO;
        o.force_begin(txn(1), t0);
        o.force_done(txn(1), t0 + SimDuration::from_micros(90));
        assert_eq!(o.stage_hist(Stage::WalForce).sum_micros(), 90);
        o.prepare_begin(txn(1), t0);
        o.prepare_done(txn(1), t0 + SimDuration::from_micros(500));
        o.decide_begin(txn(1), t0 + SimDuration::from_micros(500));
        o.decide_done(txn(1), t0 + SimDuration::from_micros(700));
        assert_eq!(o.stage_hist(Stage::TwopcPrepare).sum_micros(), 500);
        assert_eq!(o.stage_hist(Stage::TwopcDecide).sum_micros(), 200);
        // Repeated busy backoffs accumulate from the first stall.
        o.queue_begin(ReqId(9), txn(2), t0);
        o.queue_begin(ReqId(9), txn(2), t0 + SimDuration::from_micros(40));
        o.queue_end(ReqId(9), t0 + SimDuration::from_micros(100));
        assert_eq!(o.stage_hist(Stage::QueueWait).sum_micros(), 100);
        // Dropped stamps never record.
        o.queue_begin(ReqId(10), txn(2), t0);
        o.queue_drop(ReqId(10));
        o.queue_end(ReqId(10), t0 + SimDuration::from_micros(9));
        assert_eq!(o.stage_hist(Stage::QueueWait).count(), 1);
    }

    #[test]
    fn stage_samples_emit_events_when_traced() {
        let mut o = SiteObs::default();
        let h = o.enable_trace(SiteId(0), 64);
        o.set_now(SimTime::from_micros(5));
        o.stage_sample(txn(1), Stage::LockWait, SimDuration::from_micros(42));
        let events = h.snapshot();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0].kind,
            EventKind::StageSample {
                stage: Stage::LockWait,
                micros: 42,
                ..
            }
        ));
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut o = SiteObs::default();
        o.record(EventKind::Commit {
            txn: txn(1),
            stage: pscc_obs::event::CommitStage::Request,
        });
        let h = o.enable_trace(SiteId(0), 64);
        o.set_now(SimTime::from_micros(5));
        o.record(EventKind::Commit {
            txn: txn(1),
            stage: pscc_obs::event::CommitStage::Done,
        });
        let events = h.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, SimTime::from_micros(5));
    }
}
