//! Per-site observability state carried by the engine: an optional
//! protocol trace handle, always-on latency histograms, and the
//! in-flight stamps used to turn request/reply pairs into round-trip
//! latencies. Recording is O(1) and allocation-free on the hot path;
//! the trace is off unless [`crate::PeerServer::enable_trace`] is
//! called.

use crate::msg::{CbId, ReqId};
use pscc_common::{SimTime, SiteId, TxnId};
use pscc_obs::event::{EventKind, TraceHandle};
use pscc_obs::Histogram;
use std::collections::HashMap;

/// Observability state of one [`crate::PeerServer`].
#[derive(Debug, Default)]
pub struct SiteObs {
    trace: Option<TraceHandle>,
    /// Blocked lock acquisitions: queueing to grant.
    pub lock_wait: Histogram,
    /// Callback round trips: issue at the owner to each acknowledgment.
    pub callback_rtt: Histogram,
    /// Fetch round trips: request sent to page installed.
    pub fetch_rtt: Histogram,
    /// Commit latency: application commit to committed.
    pub commit_latency: Histogram,
    /// Restart recovery duration (analysis + redo + undo wall clock,
    /// one sample per completed recovery).
    pub recovery_time: Histogram,
    fetch_started: HashMap<ReqId, SimTime>,
    cb_started: HashMap<CbId, SimTime>,
    commit_started: HashMap<TxnId, SimTime>,
}

impl SiteObs {
    /// Turns event tracing on with a ring of `cap` events, returning a
    /// handle the harness keeps for snapshots/merging.
    pub fn enable_trace(&mut self, site: SiteId, cap: usize) -> TraceHandle {
        let h = TraceHandle::new(site, cap);
        self.trace = Some(h.clone());
        h
    }

    /// The trace handle, if tracing is enabled.
    pub fn trace_handle(&self) -> Option<&TraceHandle> {
        self.trace.as_ref()
    }

    /// Records a protocol event (no-op when tracing is off).
    pub fn record(&self, kind: EventKind) {
        if let Some(t) = &self.trace {
            t.record(kind);
        }
    }

    /// Advances the shared virtual clock used to stamp events.
    pub fn set_now(&self, now: SimTime) {
        if let Some(t) = &self.trace {
            t.set_now(now);
        }
    }

    pub(crate) fn fetch_sent(&mut self, req: ReqId, now: SimTime) {
        self.fetch_started.insert(req, now);
    }

    pub(crate) fn fetch_done(&mut self, req: ReqId, now: SimTime) {
        if let Some(t0) = self.fetch_started.remove(&req) {
            self.fetch_rtt.record(now.since(t0));
        }
    }

    /// Forgets a fetch stamp without recording (request cancelled).
    pub(crate) fn fetch_drop(&mut self, req: ReqId) {
        self.fetch_started.remove(&req);
    }

    pub(crate) fn cb_sent(&mut self, cb: CbId, now: SimTime) {
        self.cb_started.insert(cb, now);
    }

    /// One acknowledgment arrived; the stamp stays until the operation
    /// closes so later acks of the same fan-out are measured too.
    pub(crate) fn cb_acked(&mut self, cb: CbId, now: SimTime) {
        if let Some(t0) = self.cb_started.get(&cb) {
            self.callback_rtt.record(now.since(*t0));
        }
    }

    pub(crate) fn cb_closed(&mut self, cb: CbId) {
        self.cb_started.remove(&cb);
    }

    pub(crate) fn commit_begin(&mut self, txn: TxnId, now: SimTime) {
        self.commit_started.insert(txn, now);
    }

    pub(crate) fn commit_done(&mut self, txn: TxnId, now: SimTime) {
        if let Some(t0) = self.commit_started.remove(&txn) {
            self.commit_latency.record(now.since(t0));
        }
    }

    pub(crate) fn commit_drop(&mut self, txn: TxnId) {
        self.commit_started.remove(&txn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_common::SimDuration;

    #[test]
    fn rtt_pairs_measure_durations() {
        let mut o = SiteObs::default();
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(250);
        o.fetch_sent(ReqId(1), t0);
        o.fetch_done(ReqId(1), t1);
        o.fetch_done(ReqId(2), t1); // unmatched: ignored
        assert_eq!(o.fetch_rtt.count(), 1);
        assert_eq!(o.fetch_rtt.sum_micros(), 250);

        o.commit_begin(TxnId::new(SiteId(0), 1), t0);
        o.commit_drop(TxnId::new(SiteId(0), 1));
        o.commit_done(TxnId::new(SiteId(0), 1), t1); // dropped: ignored
        assert_eq!(o.commit_latency.count(), 0);
    }

    #[test]
    fn callback_stamp_survives_until_closed() {
        let mut o = SiteObs::default();
        let t0 = SimTime::ZERO;
        o.cb_sent(CbId(7), t0);
        o.cb_acked(CbId(7), t0 + SimDuration::from_micros(10));
        o.cb_acked(CbId(7), t0 + SimDuration::from_micros(30));
        o.cb_closed(CbId(7));
        o.cb_acked(CbId(7), t0 + SimDuration::from_micros(50));
        assert_eq!(o.callback_rtt.count(), 2);
        assert_eq!(o.callback_rtt.sum_micros(), 40);
    }

    #[test]
    fn trace_records_only_when_enabled() {
        let mut o = SiteObs::default();
        o.record(EventKind::Commit {
            txn: TxnId::new(SiteId(0), 1),
            stage: pscc_obs::event::CommitStage::Request,
        });
        let h = o.enable_trace(SiteId(0), 64);
        o.set_now(SimTime::from_micros(5));
        o.record(EventKind::Commit {
            txn: TxnId::new(SiteId(0), 1),
            stage: pscc_obs::event::CommitStage::Done,
        });
        let events = h.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at, SimTime::from_micros(5));
    }
}
