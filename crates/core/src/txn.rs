//! Per-transaction state, at the home site (master-thread side) and at
//! remote owners (remote-thread side). The paper's threads map onto
//! these records plus the engine's continuation tables.

use crate::msg::{AppOp, ReqId};
use pscc_common::{AppId, Oid, PageId, SiteId, TxnId};
use std::collections::{HashMap, HashSet};

/// Lifecycle of a home-site transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// Running operations.
    Active,
    /// Commit in progress (single-round or 2PC).
    Committing,
    /// Abort in progress (waiting for nothing — aborts complete
    /// immediately at the home; remote cleanup is fire-and-forget).
    Aborted,
}

/// Home-site state of a transaction (the master thread's view).
#[derive(Debug)]
pub struct HomeTxn {
    /// The transaction.
    pub id: TxnId,
    /// The owning application.
    pub app: AppId,
    /// Lifecycle.
    pub status: TxnStatus,
    /// The operation currently being executed, if any (one at a time).
    pub current_op: Option<AppOp>,
    /// Remote owners this transaction has spread to (excluding the home
    /// site, whose data is handled locally).
    pub participants: HashSet<SiteId>,
    /// Pages on which this transaction holds a client-side adaptive
    /// write grant (PS-AA, §4.1.2).
    pub adaptive_pages: HashSet<PageId>,
    /// Pages on which this transaction holds a server-granted page-level
    /// EX (the PS protocol's write grants; also explicit EX page locks).
    pub page_write_grants: HashSet<PageId>,
    /// Outstanding requests this transaction has in flight, so an abort
    /// can retire them.
    pub outstanding_reqs: HashSet<ReqId>,
    /// Every object this transaction has updated, tracked independently
    /// of the cache: a dirty page may be evicted and re-fetched (losing
    /// its dirty marks), yet an abort must still invalidate the object's
    /// uncommitted bytes in the cache (paper §3.3).
    pub updated: HashSet<Oid>,
    /// 2PC bookkeeping: participants that have voted yes / acked.
    pub votes: HashSet<SiteId>,
    /// 2PC bookkeeping: acks to the decision.
    pub decided_acks: HashSet<SiteId>,
    /// Whether the local (home-owned) portion of the commit is done.
    pub local_commit_done: bool,
}

impl HomeTxn {
    /// Creates home state for a new transaction.
    pub fn new(id: TxnId, app: AppId) -> Self {
        HomeTxn {
            id,
            app,
            status: TxnStatus::Active,
            current_op: None,
            participants: HashSet::new(),
            adaptive_pages: HashSet::new(),
            page_write_grants: HashSet::new(),
            outstanding_reqs: HashSet::new(),
            updated: HashSet::new(),
            votes: HashSet::new(),
            decided_acks: HashSet::new(),
            local_commit_done: false,
        }
    }
}

/// Owner-site state of a spread transaction (the remote thread's view).
/// Lock state lives in the site's lock table; applied-but-uncommitted
/// log records live in the server log.
#[derive(Debug)]
pub struct RemoteTxn {
    /// The transaction.
    pub id: TxnId,
    /// Whether a 2PC prepare has been logged.
    pub prepared: bool,
}

impl RemoteTxn {
    /// Creates owner-side state on first contact ("transaction
    /// spreading", §3.2).
    pub fn new(id: TxnId) -> Self {
        RemoteTxn {
            id,
            prepared: false,
        }
    }
}

/// Registry of transactions known at a site, in both roles.
#[derive(Debug, Default)]
pub struct TxnRegistry {
    /// Transactions homed here.
    pub home: HashMap<TxnId, HomeTxn>,
    /// Transactions spread here from other sites.
    pub remote: HashMap<TxnId, RemoteTxn>,
    next_seq: u64,
}

impl TxnRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates the next transaction id for `site`.
    pub fn next_txn_id(&mut self, site: SiteId) -> TxnId {
        self.next_seq += 1;
        TxnId::new(site, self.next_seq)
    }

    /// Ensures owner-side state exists for `txn` (spreading).
    pub fn spread(&mut self, txn: TxnId) -> &mut RemoteTxn {
        self.remote
            .entry(txn)
            .or_insert_with(|| RemoteTxn::new(txn))
    }

    /// Whether `txn` is known (either role) and not aborted.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.home
            .get(&txn)
            .map(|h| h.status != TxnStatus::Aborted)
            .unwrap_or_else(|| self.remote.contains_key(&txn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_increasing() {
        let mut r = TxnRegistry::new();
        let a = r.next_txn_id(SiteId(1));
        let b = r.next_txn_id(SiteId(1));
        assert!(b.seq > a.seq);
    }

    #[test]
    fn spread_is_idempotent() {
        let mut r = TxnRegistry::new();
        let t = TxnId::new(SiteId(9), 1);
        r.spread(t);
        r.spread(t);
        assert_eq!(r.remote.len(), 1);
        assert!(r.is_active(t));
    }

    #[test]
    fn home_status_controls_activity() {
        let mut r = TxnRegistry::new();
        let t = r.next_txn_id(SiteId(1));
        r.home.insert(t, HomeTxn::new(t, AppId(0)));
        assert!(r.is_active(t));
        r.home.get_mut(&t).unwrap().status = TxnStatus::Aborted;
        assert!(!r.is_active(t));
    }
}
