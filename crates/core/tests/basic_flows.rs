//! Engine integration tests: the fundamental flows of paper §4.1 in a
//! client-server configuration (site 0 owns everything; sites 1..n are
//! clients).

mod common;

use common::{version_of, Cluster};
use pscc_common::{AppId, FileId, Oid, PageId, Protocol, SiteId, SystemConfig, VolId};
use pscc_core::{AppOp, AppReply, OwnerMap};

const SERVER: SiteId = SiteId(0);
const A: SiteId = SiteId(1);
const B: SiteId = SiteId(2);
const APP: AppId = AppId(0);

fn cfg(p: Protocol) -> SystemConfig {
    SystemConfig {
        protocol: p,
        ..SystemConfig::small()
    }
}

fn cluster(p: Protocol) -> Cluster {
    Cluster::new(3, cfg(p), OwnerMap::Single(SERVER), 42)
}

fn oid(page: u32, slot: u16) -> Oid {
    // Owner volumes are created with VolId == owning site id.
    Oid::new(PageId::new(FileId::new(VolId(SERVER.0), 0), page), slot)
}

#[test]
fn local_read_write_commit_on_owner() {
    let mut c = cluster(Protocol::PsAa);
    let t = c.begin(SERVER, APP);
    let x = oid(0, 0);
    let v0 = c.read(SERVER, APP, t, x);
    assert_eq!(version_of(&v0), 0);
    c.write(SERVER, APP, t, x);
    c.commit(SERVER, APP, t);
    // Committed value visible in the owner's volume.
    let bytes = c.sites[0].volume().read_object(x).unwrap();
    assert_eq!(version_of(bytes), 1);
    // Owner-local operations send no network messages.
    assert_eq!(c.total_stats().msgs_sent, 0);
}

#[test]
fn remote_read_caches_and_hits() {
    let mut c = cluster(Protocol::PsAa);
    let t = c.begin(A, APP);
    let x = oid(3, 2);
    let v = c.read(A, APP, t, x);
    assert_eq!(version_of(&v), 0);
    let after_first = c.total_stats();
    assert_eq!(after_first.read_requests, 1);
    assert_eq!(after_first.pages_shipped, 1);

    // Second read of the same object — and of a *different* object on
    // the same page — are pure cache hits.
    c.read(A, APP, t, x);
    c.read(A, APP, t, oid(3, 7));
    let after = c.total_stats();
    assert_eq!(after.read_requests, 1, "no further fetches");
    assert_eq!(after.cache_hits, 2);
    c.commit(A, APP, t);
}

#[test]
fn intertransaction_caching_survives_commit() {
    let mut c = cluster(Protocol::PsAa);
    let x = oid(5, 1);
    let t1 = c.begin(A, APP);
    c.read(A, APP, t1, x);
    c.commit(A, APP, t1);
    // A new transaction reads the same object without any server
    // interaction (inter-transaction caching, paper §1).
    let msgs_before = c.total_stats().msgs_sent;
    let t2 = c.begin(A, APP);
    c.read(A, APP, t2, x);
    assert_eq!(c.total_stats().msgs_sent, msgs_before);
    c.commit(A, APP, t2);
}

#[test]
fn write_invalidates_other_clients_copy() {
    let mut c = cluster(Protocol::PsAa);
    let x = oid(7, 4);

    // B caches the page.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x);
    c.commit(B, APP, tb);

    // A updates X: a callback reaches B; since B is idle on the page,
    // the whole page is purged there (adaptive callbacks, §4.1.1).
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x);
    c.write(A, APP, ta, x);
    c.commit(A, APP, ta);
    let stats = c.total_stats();
    assert!(stats.callbacks_sent >= 1);
    assert!(stats.callbacks_purged_page >= 1);

    // B re-reads and sees the committed update.
    let tb2 = c.begin(B, APP);
    let v = c.read(B, APP, tb2, x);
    assert_eq!(version_of(&v), 1);
    c.commit(B, APP, tb2);
}

#[test]
fn ps_aa_grants_adaptive_lock_and_saves_messages() {
    let mut c = cluster(Protocol::PsAa);
    let t = c.begin(A, APP);
    let p = 9;
    c.read(A, APP, t, oid(p, 0));
    c.write(A, APP, t, oid(p, 0));
    let s1 = c.total_stats();
    assert_eq!(s1.adaptive_grants, 1, "nobody else caches the page");

    // Further updates to other objects of the page are free.
    let msgs = c.total_stats().msgs_sent;
    c.write(A, APP, t, oid(p, 1));
    c.write(A, APP, t, oid(p, 2));
    let s2 = c.total_stats();
    assert_eq!(s2.msgs_sent, msgs, "adaptive writes send nothing");
    assert_eq!(s2.adaptive_hits, 2);
    c.commit(A, APP, t);
    // Committed values durable at the owner.
    assert_eq!(
        version_of(c.sites[0].volume().read_object(oid(p, 2)).unwrap()),
        1
    );
}

#[test]
fn ps_oa_never_grants_adaptive() {
    let mut c = cluster(Protocol::PsOa);
    let t = c.begin(A, APP);
    let p = 9;
    c.read(A, APP, t, oid(p, 0));
    c.write(A, APP, t, oid(p, 0));
    c.write(A, APP, t, oid(p, 1));
    let s = c.total_stats();
    assert_eq!(s.adaptive_grants, 0);
    assert_eq!(s.adaptive_hits, 0);
    assert_eq!(s.write_requests, 2, "every object write goes to the server");
    c.commit(A, APP, t);
}

#[test]
fn deescalation_on_cross_client_access() {
    let mut c = cluster(Protocol::PsAa);
    let p = 11;

    // A acquires an adaptive lock on page p.
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, oid(p, 0));
    c.write(A, APP, ta, oid(p, 0));
    assert_eq!(c.total_stats().adaptive_grants, 1);

    // B reads a *different* object of p: the server must deescalate A's
    // adaptive lock first (paper §4.1.2), then B proceeds.
    let tb = c.begin(B, APP);
    let v = c.read(B, APP, tb, oid(p, 5));
    assert_eq!(version_of(&v), 0);
    assert_eq!(c.total_stats().deescalations, 1);

    // A's next write on the page must go to the server again (the
    // adaptive grant is gone)...
    let w_before = c.total_stats().write_requests;
    c.write(A, APP, ta, oid(p, 1));
    assert_eq!(c.total_stats().write_requests, w_before + 1);

    // ...and A's uncommitted update on slot 0 stays invisible to B: the
    // shipped copy marked it unavailable, so B's read of slot 0 blocks
    // until A finishes. Run it asynchronously:
    c.submit(B, APP, Some(tb), AppOp::Read(oid(p, 0)));
    c.pump();
    assert!(c.find_reply(B, tb).is_none(), "B must wait for A's EX lock");
    c.commit(A, APP, ta);
    c.pump();
    match c.find_reply(B, tb) {
        Some(AppReply::Done { data: Some(d), .. }) => {
            assert_eq!(version_of(&d), 1, "B sees A's committed update")
        }
        other => panic!("unexpected {other:?}"),
    }
    c.commit(B, APP, tb);
}

#[test]
fn reescalation_after_contention_dissipates() {
    let mut c = cluster(Protocol::PsAa);
    let p = 13;
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, oid(p, 0));
    c.write(A, APP, ta, oid(p, 0));
    assert_eq!(c.total_stats().adaptive_grants, 1);

    // B touches the page (deescalation), then goes away.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, oid(p, 5));
    c.commit(B, APP, tb);
    assert_eq!(c.total_stats().deescalations, 1);

    // A commits; a later A transaction re-escalates: its write callback
    // purges B's copy entirely, so the adaptive lock is granted again
    // (paper §4.1.2 "reescalate if the contention has dissipated").
    c.commit(A, APP, ta);
    let ta2 = c.begin(A, APP);
    c.read(A, APP, ta2, oid(p, 1));
    c.write(A, APP, ta2, oid(p, 1));
    assert_eq!(c.total_stats().adaptive_grants, 2);
    c.commit(A, APP, ta2);
}

#[test]
fn ps_protocol_page_level_locking() {
    let mut c = cluster(Protocol::Ps);
    let p = 15;
    let x = oid(p, 0);

    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x);
    c.commit(B, APP, tb);

    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x);
    c.write(A, APP, ta, x);
    // Page-level write permission: later writes on the same page are
    // server-free under the EX page lock.
    let msgs = c.total_stats().msgs_sent;
    c.write(A, APP, ta, oid(p, 1));
    assert_eq!(c.total_stats().msgs_sent, msgs);
    c.commit(A, APP, ta);

    // B's copy was purged by the page callback; re-read sees v1.
    let tb2 = c.begin(B, APP);
    let v = c.read(B, APP, tb2, oid(p, 1));
    assert_eq!(version_of(&v), 1);
    c.commit(B, APP, tb2);
    // And no object-level machinery ran.
    let s = c.total_stats();
    assert_eq!(s.adaptive_grants, 0);
    assert_eq!(s.deescalations, 0);
}

#[test]
fn ps_false_sharing_blocks_where_psaa_proceeds() {
    // A updates object 0 of a page; B then reads object 9 of the same
    // page. Under PS-AA the read proceeds concurrently (the page ships
    // with object 0 marked unavailable); under PS it blocks on the page
    // lock until A commits — false sharing, the paper's central
    // trade-off.
    for (proto, expect_concurrent) in [(Protocol::PsAa, true), (Protocol::Ps, false)] {
        let mut c = cluster(proto);
        let p = 17;
        let ta = c.begin(A, APP);
        let tb = c.begin(B, APP);
        c.read(A, APP, ta, oid(p, 0));
        c.write(A, APP, ta, oid(p, 0));
        c.submit(B, APP, Some(tb), AppOp::Read(oid(p, 9)));
        c.pump();
        let b_done = c.find_reply(B, tb).is_some();
        assert_eq!(
            b_done, expect_concurrent,
            "{proto}: concurrent-reader completion"
        );
        c.commit(A, APP, ta);
        c.pump();
        if !b_done {
            assert!(c.find_reply(B, tb).is_some(), "{proto}: B resumes after A");
        }
        c.commit(B, APP, tb);
    }
}

#[test]
fn uncommitted_object_is_unavailable_to_other_client() {
    let mut c = cluster(Protocol::PsAa);
    let p = 19;
    let x = oid(p, 3);
    let y = oid(p, 4);

    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x);
    c.write(A, APP, ta, x);

    // B fetches the page for a different object: X must arrive marked
    // unavailable (paper §4.2.3), so B's read of Y succeeds but a read
    // of X goes back to the server and blocks.
    let tb = c.begin(B, APP);
    let v = c.read(B, APP, tb, y);
    assert_eq!(version_of(&v), 0);
    c.submit(B, APP, Some(tb), AppOp::Read(x));
    c.pump();
    assert!(c.find_reply(B, tb).is_none(), "X is write-locked by A");
    c.commit(A, APP, ta);
    c.pump();
    match c.find_reply(B, tb) {
        Some(AppReply::Done { data: Some(d), .. }) => assert_eq!(version_of(&d), 1),
        other => panic!("unexpected {other:?}"),
    }
    c.commit(B, APP, tb);
}

#[test]
fn abort_undoes_everywhere() {
    let mut c = cluster(Protocol::PsAa);
    let x = oid(21, 0);
    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x);
    c.write(A, APP, ta, x);
    match c.run_op(A, APP, ta, AppOp::Abort) {
        AppReply::Aborted { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    // B reads the original value.
    let tb = c.begin(B, APP);
    let v = c.read(B, APP, tb, x);
    assert_eq!(version_of(&v), 0);
    c.commit(B, APP, tb);
    // And A itself re-reads the original value (its dirty copy was
    // marked unavailable and re-fetched).
    let ta2 = c.begin(A, APP);
    let v = c.read(A, APP, ta2, x);
    assert_eq!(version_of(&v), 0);
    c.commit(A, APP, ta2);
}

#[test]
fn deadlock_detected_and_victim_aborted() {
    let mut c = cluster(Protocol::PsAa);
    let x = oid(23, 0);
    let y = oid(23, 1); // same page, object-level conflict
    let ta = c.begin(A, APP);
    let tb = c.begin(B, APP);

    c.read(A, APP, ta, x);
    c.write(A, APP, ta, x);
    c.read(B, APP, tb, y);
    c.write(B, APP, tb, y);

    // Cross writes: A→y, B→x.
    c.submit(
        A,
        APP,
        Some(ta),
        AppOp::Write {
            oid: y,
            bytes: None,
        },
    );
    c.pump();
    c.submit(
        B,
        APP,
        Some(tb),
        AppOp::Write {
            oid: x,
            bytes: None,
        },
    );
    c.pump();

    let ra = c.find_reply(A, ta);
    let rb = c.find_reply(B, tb);
    let aborted = [&ra, &rb]
        .iter()
        .filter(|r| matches!(r, Some(AppReply::Aborted { .. })))
        .count();
    assert_eq!(aborted, 1, "exactly one victim: {ra:?} / {rb:?}");
    assert!(c.total_stats().deadlock_aborts >= 1);

    // The survivor finishes (its blocked write completes once the
    // victim's locks are released).
    if matches!(ra, Some(AppReply::Aborted { .. })) {
        c.pump();
        if !matches!(rb, Some(AppReply::Done { .. })) {
            assert!(c.find_reply(B, tb).is_some(), "survivor's write completes");
        }
        c.commit(B, APP, tb);
    } else {
        c.pump();
        if !matches!(ra, Some(AppReply::Done { .. })) {
            assert!(c.find_reply(A, ta).is_some(), "survivor's write completes");
        }
        c.commit(A, APP, ta);
    }
}

#[test]
fn serializability_smoke_counter_increments() {
    // Ten transactions from two clients increment the same object; the
    // final committed value must be exactly 10 (no lost updates).
    let mut c = cluster(Protocol::PsAa);
    let x = oid(25, 0);
    for i in 0..10 {
        let site = if i % 2 == 0 { A } else { B };
        let t = c.begin(site, APP);
        c.read(site, APP, t, x);
        c.write(site, APP, t, x);
        c.commit(site, APP, t);
    }
    assert_eq!(version_of(c.sites[0].volume().read_object(x).unwrap()), 10);
}

#[test]
fn explicit_file_lock_purges_and_blocks() {
    let mut c = cluster(Protocol::PsAa);
    let file = FileId::new(VolId(SERVER.0), 0);
    let x = oid(27, 0);

    // B caches a page of the file.
    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x);
    c.commit(B, APP, tb);

    // A takes an explicit EX file lock: B's cached pages of the file are
    // purged (paper §4.3.1).
    let ta = c.begin(A, APP);
    match c.run_op(
        A,
        APP,
        ta,
        AppOp::Lock {
            item: file.into(),
            mode: pscc_common::LockMode::Ex,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    assert!(!c.sites[B.0 as usize].volume().contains_page(x.page)); // B owns nothing anyway
                                                                    // B's new read blocks behind the file lock.
    let tb2 = c.begin(B, APP);
    c.submit(B, APP, Some(tb2), AppOp::Read(x));
    c.pump();
    assert!(c.find_reply(B, tb2).is_none(), "file EX blocks readers");
    c.commit(A, APP, ta);
    c.pump();
    assert!(c.find_reply(B, tb2).is_some());
    c.commit(B, APP, tb2);
}

#[test]
fn fully_cached_page_sh_lock_is_local_only() {
    let mut c = cluster(Protocol::PsAa);
    let x = oid(29, 0);
    let t = c.begin(A, APP);
    c.read(A, APP, t, x); // page now fully cached
    let msgs = c.total_stats().msgs_sent;
    match c.run_op(
        A,
        APP,
        t,
        AppOp::Lock {
            item: pscc_common::LockableId::Page(x.page),
            mode: pscc_common::LockMode::Sh,
        },
    ) {
        AppReply::Done { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(c.total_stats().msgs_sent, msgs, "SH page lock stayed local");
    c.commit(A, APP, t);
}

#[test]
fn blocked_callback_resolves_after_holder_commits() {
    // The Fig. 3 client-D case: B holds a read lock on X; A's write
    // callback blocks at B until B's transaction finishes.
    let mut c = cluster(Protocol::PsAa);
    let x = oid(31, 0);

    // Warm B's cache so the next read is local-only (no server lock) —
    // the preconditions of Fig. 3's client D.
    let tb0 = c.begin(B, APP);
    c.read(B, APP, tb0, x);
    c.commit(B, APP, tb0);

    let tb = c.begin(B, APP);
    c.read(B, APP, tb, x); // B holds a local-only SH lock on X

    let ta = c.begin(A, APP);
    c.read(A, APP, ta, x);
    c.submit(
        A,
        APP,
        Some(ta),
        AppOp::Write {
            oid: x,
            bytes: None,
        },
    );
    c.pump();
    assert!(c.find_reply(A, ta).is_none(), "callback blocked at B");
    assert!(c.total_stats().callbacks_blocked >= 1);

    c.commit(B, APP, tb);
    c.pump();
    assert!(c.find_reply(A, ta).is_some(), "write proceeds after B ends");
    c.commit(A, APP, ta);

    // B re-reads: sees the new committed version.
    let tb2 = c.begin(B, APP);
    let v = c.read(B, APP, tb2, x);
    assert_eq!(version_of(&v), 1);
    c.commit(B, APP, tb2);
}
