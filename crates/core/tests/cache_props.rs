//! Property tests for the client cache's §4.2.3 merge rules: random
//! sequences of installs, callbacks, local updates, and aborts must
//! preserve the availability invariants.

use proptest::prelude::*;
use pscc_common::{FileId, Oid, PageId, SiteId, TxnId, VolId};
use pscc_core::cache::ClientCache;
use pscc_storage::{AvailMask, SlottedPage};
use std::collections::{HashMap, HashSet};

const N_SLOTS: u16 = 6;

fn pid(n: u8) -> PageId {
    PageId::new(FileId::new(VolId(0), 0), n as u32 % 3)
}

fn page_image() -> SlottedPage {
    let mut p = SlottedPage::new(512);
    for _ in 0..N_SLOTS {
        p.insert(&[0u8; 16]).unwrap();
    }
    p
}

#[derive(Debug, Clone)]
enum Op {
    /// Install a copy with the given availability bits and race list.
    Install {
        page: u8,
        unavail: Vec<u8>,
        raced: Vec<u8>,
        seq: u64,
    },
    /// An object callback.
    MarkUnavailable { page: u8, slot: u8 },
    /// A page callback / eviction.
    Purge { page: u8 },
    /// A local update by txn t.
    Update { page: u8, slot: u8, txn: u8 },
    /// Txn t aborts.
    Abort { txn: u8 },
    /// Txn t commits.
    Commit { txn: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0u8..3,
            proptest::collection::vec(0u8..N_SLOTS as u8, 0..4),
            proptest::collection::vec(0u8..N_SLOTS as u8, 0..3),
            1u64..100
        )
            .prop_map(|(page, unavail, raced, seq)| Op::Install {
                page,
                unavail,
                raced,
                seq
            }),
        (0u8..3, 0u8..N_SLOTS as u8).prop_map(|(page, slot)| Op::MarkUnavailable { page, slot }),
        (0u8..3).prop_map(|page| Op::Purge { page }),
        (0u8..3, 0u8..N_SLOTS as u8, 0u8..3).prop_map(|(page, slot, txn)| Op::Update {
            page,
            slot,
            txn
        }),
        (0u8..3).prop_map(|txn| Op::Abort { txn }),
        (0u8..3).prop_map(|txn| Op::Commit { txn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn cache_merge_invariants(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut cache = ClientCache::new(8);
        // Model: per (page, slot): available?, dirty-by.
        let mut avail: HashMap<(u8, u8), bool> = HashMap::new();
        let mut dirty: HashMap<(u8, u8), u8> = HashMap::new();
        let mut cached: HashSet<u8> = HashSet::new();

        for op in ops {
            match op {
                Op::Install { page, unavail, raced, seq } => {
                    let mut proposed = AvailMask::all_available(N_SLOTS);
                    for s in &unavail {
                        proposed.set_unavailable(*s as u16);
                    }
                    let raced_slots: Vec<u16> = raced.iter().map(|s| *s as u16).collect();
                    cache.install(pid(page), page_image(), proposed, seq, &raced_slots);
                    // Model §4.2.3: already-available slots stay; others
                    // take proposed minus raced.
                    for s in 0..N_SLOTS as u8 {
                        let was = cached.contains(&page)
                            && *avail.get(&(page, s)).unwrap_or(&false);
                        let prop_avail = !unavail.contains(&s) && !raced.contains(&s);
                        avail.insert((page, s), was || prop_avail);
                    }
                    cached.insert(page);
                }
                Op::MarkUnavailable { page, slot } => {
                    cache.mark_unavailable(Oid::new(pid(page), slot as u16));
                    if cached.contains(&page) {
                        avail.insert((page, slot), false);
                        dirty.remove(&(page, slot));
                    }
                }
                Op::Purge { page } => {
                    cache.purge(pid(page));
                    cached.remove(&page);
                    avail.retain(|(p, _), _| *p != page);
                    dirty.retain(|(p, _), _| *p != page);
                }
                Op::Update { page, slot, txn } => {
                    let oid = Oid::new(pid(page), slot as u16);
                    if cache.object_cached(oid) {
                        let t = TxnId::new(SiteId(1), txn as u64);
                        let r = cache.apply_update(oid, &[txn + 1; 16], t);
                        prop_assert!(r.is_some(), "in-range same-size update fits");
                        dirty.insert((page, slot), txn);
                    }
                }
                Op::Abort { txn } => {
                    let t = TxnId::new(SiteId(1), txn as u64);
                    cache.abort_txn(t);
                    let mine: Vec<(u8, u8)> = dirty
                        .iter()
                        .filter(|(_, owner)| **owner == txn)
                        .map(|(k, _)| *k)
                        .collect();
                    for k in mine {
                        dirty.remove(&k);
                        avail.insert(k, false);
                    }
                }
                Op::Commit { txn } => {
                    let t = TxnId::new(SiteId(1), txn as u64);
                    cache.clean_txn(t);
                    dirty.retain(|_, owner| *owner != txn);
                }
            }

            // Invariants after every op.
            for page in 0u8..3 {
                for slot in 0..N_SLOTS {
                    let oid = Oid::new(pid(page), slot);
                    let model = cached.contains(&page)
                        && *avail.get(&(page, slot as u8)).unwrap_or(&false);
                    prop_assert_eq!(
                        cache.object_cached(oid),
                        model,
                        "availability mismatch at page {} slot {}",
                        page,
                        slot
                    );
                    // Dirty objects carry their updater's bytes.
                    if let Some(owner) = dirty.get(&(page, slot as u8)) {
                        let bytes = cache.read_object(oid).expect("dirty implies available");
                        prop_assert_eq!(bytes[0], owner + 1, "dirty bytes preserved");
                    }
                }
            }
        }
    }
}
