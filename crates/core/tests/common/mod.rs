//! A deterministic in-process cluster for engine integration tests:
//! seeded message delivery over `pscc_net::SeededNet` with the paper's
//! per-path FIFO semantics, a fixed-latency disk, and a virtual clock.
//!
//! Path discipline (mirrors the production harness):
//! * path 0 — every client→owner message (requests, purge notices,
//!   callback replies, commit traffic): FIFO end-to-end, which is what
//!   SHORE's piggybacking guarantees;
//! * path 1 — owner→client replies;
//! * path 2 — owner→client callbacks, cancels and deescalations.
//!
//! Replies and callbacks ride different paths, so the callback and
//! deescalation races of paper §4.2.4 genuinely occur under adversarial
//! seeds.

use pscc_common::{AppId, SimDuration, SimTime, SiteId, SystemConfig, TxnId};
use pscc_core::{AppOp, AppReply, AppRequest, Input, Message, Output, OwnerMap, PeerServer};
use pscc_net::{PathId, SeededNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which path a message travels on (see module docs).
pub fn path_for(msg: &Message) -> PathId {
    match msg {
        Message::Traced { inner, .. } => path_for(inner),
        Message::ReadReply { .. }
        | Message::WriteGranted { .. }
        | Message::LockGranted { .. }
        | Message::ReqDenied { .. }
        | Message::CommitOk { .. }
        | Message::Voted { .. }
        | Message::Decided { .. }
        | Message::TxnAborted { .. } => PathId(1),
        Message::Callback { .. } | Message::CbCancel { .. } | Message::Deescalate { .. } => {
            PathId(2)
        }
        _ => PathId(0),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Sched {
    Disk(u32, pscc_core::DiskReqId),
    Timer(u32, pscc_core::TimerId),
}

/// The deterministic cluster.
pub struct Cluster {
    pub sites: Vec<PeerServer>,
    pub net: SeededNet<Message>,
    pub rng: StdRng,
    now: SimTime,
    sched: BinaryHeap<(Reverse<SimTime>, Sched)>,
    pub replies: Vec<(SiteId, AppReply)>,
    disk_latency: SimDuration,
}

#[allow(dead_code)]
impl Cluster {
    /// Builds `n` sites with the given config and ownership map.
    pub fn new(n: u32, cfg: SystemConfig, owners: OwnerMap, seed: u64) -> Self {
        let sites = (0..n)
            .map(|i| PeerServer::new(SiteId(i), cfg.clone(), owners.clone()))
            .collect();
        Cluster {
            sites,
            net: SeededNet::new(),
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            sched: BinaryHeap::new(),
            replies: Vec::new(),
            disk_latency: SimDuration::from_millis(1),
        }
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    fn run_outputs(&mut self, site: SiteId, outs: Vec<Output>) {
        for o in outs {
            match o {
                Output::Send { to, msg } => {
                    let path = path_for(&msg);
                    self.net.send(site, to, path, msg);
                }
                Output::Disk { req, .. } => {
                    self.sched.push((
                        Reverse(self.now + self.disk_latency),
                        Sched::Disk(site.0, req),
                    ));
                }
                Output::ArmTimer { timer, delay } => {
                    self.sched
                        .push((Reverse(self.now + delay), Sched::Timer(site.0, timer)));
                }
                Output::App(reply) => self.replies.push((site, reply)),
            }
        }
    }

    /// Submits an application request.
    pub fn submit(&mut self, site: SiteId, app: AppId, txn: Option<TxnId>, op: AppOp) {
        let now = self.now;
        let outs = self.sites[site.0 as usize].handle(now, Input::App(AppRequest { app, txn, op }));
        self.run_outputs(site, outs);
    }

    /// Delivers one pending message (seeded choice) or, if none, the
    /// earliest scheduled disk/timer event. Returns `false` if idle.
    pub fn step(&mut self) -> bool {
        if let Some(env) = self.net.deliver_next(&mut self.rng) {
            let now = self.now;
            let outs = self.sites[env.to.0 as usize].handle(
                now,
                Input::Msg {
                    from: env.from,
                    msg: env.msg,
                },
            );
            self.run_outputs(env.to, outs);
            return true;
        }
        if let Some((Reverse(t), ev)) = self.sched.pop() {
            self.now = self.now.max(t);
            let now = self.now;
            match ev {
                Sched::Disk(s, req) => {
                    let outs = self.sites[s as usize].handle(now, Input::DiskDone { req });
                    self.run_outputs(SiteId(s), outs);
                }
                Sched::Timer(s, timer) => {
                    let outs = self.sites[s as usize].handle(now, Input::TimerFired { timer });
                    self.run_outputs(SiteId(s), outs);
                }
            }
            return true;
        }
        false
    }

    /// Runs until fully idle (bounded; panics on livelock). Timers that
    /// have not fired yet do not count as pending work unless nothing
    /// else remains and `drain_timers` is set.
    pub fn pump(&mut self) {
        for _ in 0..200_000 {
            // Stop early if only (harmless, unfired) timers remain.
            if self.net.is_empty() {
                let only_timers = self
                    .sched
                    .iter()
                    .all(|(_, e)| matches!(e, Sched::Timer(..)));
                if only_timers {
                    // Deliver disks first; timers would abort transactions.
                    return;
                }
            }
            if !self.step() {
                return;
            }
        }
        panic!("cluster did not quiesce");
    }

    /// Runs until idle, firing timers too (used by timeout tests).
    pub fn pump_with_timers(&mut self) {
        for _ in 0..200_000 {
            if !self.step() {
                return;
            }
        }
        panic!("cluster did not quiesce");
    }

    /// Takes all replies collected so far.
    pub fn take_replies(&mut self) -> Vec<(SiteId, AppReply)> {
        std::mem::take(&mut self.replies)
    }

    /// Begins a transaction at `site` and returns its id (pumps).
    pub fn begin(&mut self, site: SiteId, app: AppId) -> TxnId {
        self.submit(site, app, None, AppOp::Begin);
        self.pump();
        let pos = self
            .replies
            .iter()
            .position(|(s, r)| {
                *s == site && matches!(r, AppReply::Started { app: a, .. } if *a == app)
            })
            .expect("Begin must answer");
        match self.replies.remove(pos).1 {
            AppReply::Started { txn, .. } => txn,
            _ => unreachable!(),
        }
    }

    /// Runs `op` for `txn` to completion; returns its terminal reply.
    ///
    /// # Panics
    ///
    /// Panics if the cluster quiesces without answering.
    pub fn run_op(&mut self, site: SiteId, app: AppId, txn: TxnId, op: AppOp) -> AppReply {
        self.submit(site, app, Some(txn), op);
        self.pump();
        self.find_reply(site, txn)
            .unwrap_or_else(|| panic!("no reply for {txn} at {site}"))
    }

    /// Pops the first reply addressed to `txn` at `site`, if any.
    pub fn find_reply(&mut self, site: SiteId, txn: TxnId) -> Option<AppReply> {
        let pos = self.replies.iter().position(|(s, r)| {
            *s == site
                && match r {
                    AppReply::Done { txn: t, .. }
                    | AppReply::Committed { txn: t, .. }
                    | AppReply::Aborted { txn: t, .. } => *t == txn,
                    AppReply::Started { .. } => false,
                }
        })?;
        Some(self.replies.remove(pos).1)
    }

    /// Convenience: read an object, expecting success; returns its bytes.
    pub fn read(&mut self, site: SiteId, app: AppId, txn: TxnId, oid: pscc_common::Oid) -> Vec<u8> {
        match self.run_op(site, app, txn, AppOp::Read(oid)) {
            AppReply::Done { data: Some(d), .. } => d,
            other => panic!("read failed: {other:?}"),
        }
    }

    /// Convenience: synthesized write, expecting success.
    pub fn write(&mut self, site: SiteId, app: AppId, txn: TxnId, oid: pscc_common::Oid) {
        match self.run_op(site, app, txn, AppOp::Write { oid, bytes: None }) {
            AppReply::Done { .. } => {}
            other => panic!("write failed: {other:?}"),
        }
    }

    /// Convenience: commit, expecting success.
    pub fn commit(&mut self, site: SiteId, app: AppId, txn: TxnId) {
        match self.run_op(site, app, txn, AppOp::Commit) {
            AppReply::Committed { .. } => {}
            other => panic!("commit failed: {other:?}"),
        }
    }

    /// Sum of all sites' counters.
    pub fn total_stats(&self) -> pscc_common::Counters {
        pscc_common::Counters::total(self.sites.iter().map(|s| s.stats))
    }
}

/// The version counter a synthesized write bumps (first 8 bytes).
#[allow(dead_code)] // not every test binary sharing this module uses it
pub fn version_of(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[0..8].try_into().expect("8 bytes"))
}

/// Runs one site's outputs, routing sends back into the net, replies into
/// the reply log, and completing disk requests immediately (used by
/// staged-delivery tests where timing is irrelevant).
#[allow(dead_code)]
pub fn route(c: &mut Cluster, site: SiteId, outs: Vec<pscc_core::Output>) {
    for o in outs {
        match o {
            pscc_core::Output::Send { to, msg } => {
                let p = path_for(&msg);
                c.net.send(site, to, p, msg);
            }
            pscc_core::Output::App(r) => c.replies.push((site, r)),
            pscc_core::Output::Disk { req, .. } => {
                let now = c.now();
                let outs2 =
                    c.sites[site.0 as usize].handle(now, pscc_core::Input::DiskDone { req });
                route(c, site, outs2);
            }
            pscc_core::Output::ArmTimer { .. } => {}
        }
    }
}

/// Drains one direction+path completely (per-path FIFO preserved) —
/// the staged-delivery instrument for reconstructing races.
#[allow(dead_code)]
pub fn drain(c: &mut Cluster, from: SiteId, to: SiteId, path: pscc_net::PathId) {
    while let Some(env) = c.net.deliver_from(from, to, path) {
        let now = c.now();
        let outs = c.sites[env.to.0 as usize].handle(
            now,
            pscc_core::Input::Msg {
                from: env.from,
                msg: env.msg,
            },
        );
        route(c, env.to, outs);
    }
}
